//! Differential testing: a brute-force reference implementation of the
//! paper's algorithm semantics, with **no** RWave index, **no** candidate
//! generation shortcuts and **no** subtree prunings — just the definition:
//!
//! * a chain extension is any condition whose (signed) step from the chain
//!   tail exceeds the member's `γ_i` **and** from which a chain of `MinC`
//!   conditions is still reachable (the per-gene MinC filter the paper's
//!   step 5 applies via pruning (2); it is part of the semantics because it
//!   runs *before* the sliding window and can change window boundaries);
//! * from chain length 2 on, members are sorted by the H-score of the new
//!   step and partitioned into maximal ε-windows of ≥ MinG genes (windows
//!   found here by naive quadratic search, independent of the library's
//!   implementation);
//! * a node outputs when the chain has ≥ MinC conditions, ≥ MinG member
//!   genes and is representative (`|pX| > |nX|`, ties by chain-head id);
//!   outputs are deduplicated by (chain, gene set).
//!
//! The reference explores redundant subtrees instead of pruning them
//! (prunings (1), (3a), (3b) only skip work that cannot produce new
//! output), so equality of output *sets* checks both the miner's soundness
//! and its completeness, including every pruning rule.

use proptest::prelude::*;

use regcluster::core::{mine, MiningParams, RegCluster};
use regcluster::datagen::running_example;
use regcluster::matrix::ExpressionMatrix;

#[derive(Clone, Copy, PartialEq)]
enum Dir {
    Fwd,
    Bwd,
}

#[derive(Clone, Copy)]
struct Member {
    gene: usize,
    dir: Dir,
    denom: f64,
}

struct Reference<'a> {
    matrix: &'a ExpressionMatrix,
    params: &'a MiningParams,
    gammas: Vec<f64>,
    out: std::collections::BTreeSet<(Vec<usize>, Vec<usize>, Vec<usize>)>,
}

impl<'a> Reference<'a> {
    fn new(matrix: &'a ExpressionMatrix, params: &'a MiningParams) -> Self {
        let gammas = (0..matrix.n_genes())
            .map(|g| params.gamma.resolve(matrix.row(g)))
            .collect();
        Self {
            matrix,
            params,
            gammas,
            out: Default::default(),
        }
    }

    /// Longest regulated chain starting at condition `c` for gene `g` in
    /// direction `dir`, by exhaustive DP over conditions.
    fn max_chain(&self, g: usize, c: usize, dir: Dir) -> usize {
        let row = self.matrix.row(g);
        let gamma = self.gammas[g];
        let sign = if matches!(dir, Dir::Fwd) { 1.0 } else { -1.0 };
        // Memoless recursion is fine at these sizes.
        fn rec(row: &[f64], gamma: f64, sign: f64, c: usize) -> usize {
            let mut best = 1;
            for next in 0..row.len() {
                if (row[next] - row[c]) * sign > gamma {
                    best = best.max(1 + rec(row, gamma, sign, next));
                }
            }
            best
        }
        rec(row, gamma, sign, c)
    }

    fn run(&mut self) {
        for root in 0..self.matrix.n_conditions() {
            let mut members = Vec::new();
            for g in 0..self.matrix.n_genes() {
                if self.max_chain(g, root, Dir::Fwd) >= self.params.min_conds {
                    members.push(Member {
                        gene: g,
                        dir: Dir::Fwd,
                        denom: 0.0,
                    });
                }
                if self.max_chain(g, root, Dir::Bwd) >= self.params.min_conds {
                    members.push(Member {
                        gene: g,
                        dir: Dir::Bwd,
                        denom: 0.0,
                    });
                }
            }
            let mut chain = vec![root];
            self.recurse(&mut chain, &members);
        }
    }

    fn recurse(&mut self, chain: &mut Vec<usize>, members: &[Member]) {
        // Output check (no pruning: also recurse on hopeless nodes).
        let n_fwd = members.iter().filter(|m| matches!(m.dir, Dir::Fwd)).count();
        let n_bwd = members.len() - n_fwd;
        let distinct = {
            let mut genes: Vec<usize> = members.iter().map(|m| m.gene).collect();
            genes.sort_unstable();
            genes.dedup();
            genes.len()
        };
        if chain.len() >= self.params.min_conds
            && distinct >= self.params.min_genes
            && (n_fwd > n_bwd || (n_fwd == n_bwd && chain[0] < chain[1]))
        {
            let mut p: Vec<usize> = members
                .iter()
                .filter(|m| matches!(m.dir, Dir::Fwd))
                .map(|m| m.gene)
                .collect();
            let mut n: Vec<usize> = members
                .iter()
                .filter(|m| matches!(m.dir, Dir::Bwd))
                .map(|m| m.gene)
                .collect();
            p.sort_unstable();
            n.sort_unstable();
            self.out.insert((chain.clone(), p, n));
        }

        let last = *chain.last().expect("chain non-empty");
        let need = self.params.min_conds.saturating_sub(chain.len());
        for c_i in 0..self.matrix.n_conditions() {
            if chain.contains(&c_i) {
                continue;
            }
            // Member filter: regulated step + MinC reachability.
            let mut xs: Vec<Member> = Vec::new();
            for m in members {
                let row = self.matrix.row(m.gene);
                let gamma = self.gammas[m.gene];
                let sign = if matches!(m.dir, Dir::Fwd) { 1.0 } else { -1.0 };
                let step = row[c_i] - row[last];
                if step * sign <= gamma {
                    continue;
                }
                if self.max_chain(m.gene, c_i, m.dir) < need {
                    continue;
                }
                let mut next = *m;
                if chain.len() == 1 {
                    next.denom = step;
                }
                xs.push(next);
            }
            if xs.is_empty() {
                continue;
            }
            if chain.len() == 1 {
                chain.push(c_i);
                self.recurse(chain, &xs);
                chain.pop();
                continue;
            }
            // H-score windows, naive maximality search.
            let mut scored: Vec<(f64, Member)> = xs
                .iter()
                .map(|m| {
                    let row = self.matrix.row(m.gene);
                    ((row[c_i] - row[last]) / m.denom, *m)
                })
                .collect();
            scored.sort_by(|a, b| a.0.total_cmp(&b.0));
            let hs: Vec<f64> = scored.iter().map(|s| s.0).collect();
            let eps = self.params.epsilon;
            let n = hs.len();
            for s in 0..n {
                for e in s + 1..=n {
                    let ok = hs[e - 1] - hs[s] <= eps;
                    let left_max = s == 0 || hs[e - 1] - hs[s - 1] > eps;
                    let right_max = e == n || hs[e] - hs[s] > eps;
                    if ok && left_max && right_max && e - s >= self.params.min_genes {
                        let child: Vec<Member> = scored[s..e].iter().map(|x| x.1).collect();
                        chain.push(c_i);
                        self.recurse(chain, &child);
                        chain.pop();
                    }
                }
            }
        }
    }
}

fn reference_mine(matrix: &ExpressionMatrix, params: &MiningParams) -> Vec<RegCluster> {
    let mut r = Reference::new(matrix, params);
    r.run();
    r.out
        .into_iter()
        .map(|(chain, p_members, n_members)| RegCluster {
            chain,
            p_members,
            n_members,
        })
        .collect()
}

fn canonical(mut clusters: Vec<RegCluster>) -> Vec<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    clusters.sort_by(|a, b| a.chain.cmp(&b.chain));
    clusters
        .into_iter()
        .map(|c| (c.chain, c.p_members, c.n_members))
        .collect()
}

#[test]
fn reference_agrees_on_running_example() {
    let m = running_example();
    for (min_g, min_c, gamma, eps) in [
        (3, 5, 0.15, 0.1),
        (2, 4, 0.1, 0.2),
        (2, 3, 0.05, 0.5),
        (3, 3, 0.0, 0.05),
        (2, 2, 0.2, 1.0),
    ] {
        let params = MiningParams::new(min_g, min_c, gamma, eps).unwrap();
        let fast = canonical(mine(&m, &params).unwrap());
        let slow = canonical(reference_mine(&m, &params));
        assert_eq!(fast, slow, "divergence at {params:?}");
    }
}

#[test]
#[ignore = "extended differential fuzz; run with --ignored in release mode"]
fn reference_agrees_on_larger_random_matrices() {
    // A deterministic sweep over bigger shapes than the quick proptest
    // covers (the reference is exponential, so this stays out of the
    // default suite).
    let mut failures = Vec::new();
    for seed in 0u64..40 {
        let n_genes = 3 + (seed as usize % 5); // 3..=7
        let n_conds = 4 + (seed as usize % 3); // 4..=6
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 2_000) as f64 / 100.0 - 10.0
        };
        let values: Vec<f64> = (0..n_genes * n_conds).map(|_| next()).collect();
        let m = ExpressionMatrix::from_flat_unlabeled(n_genes, n_conds, values).unwrap();
        let gamma = (seed % 5) as f64 * 0.08;
        let eps = (seed % 7) as f64 * 0.1;
        let params = MiningParams::new(2, 3, gamma, eps).unwrap();
        let fast = canonical(mine(&m, &params).unwrap());
        let slow = canonical(reference_mine(&m, &params));
        if fast != slow {
            failures.push(seed);
        }
    }
    assert!(failures.is_empty(), "divergent seeds: {failures:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn reference_agrees_on_random_matrices(
        n_genes in 2usize..6,
        n_conds in 3usize..6,
        values in prop::collection::vec(-10.0f64..10.0, 36),
        gamma in 0.0f64..0.4,
        eps in 0.0f64..0.6,
        min_g in 1usize..4,
        min_c in 2usize..4,
    ) {
        let vals: Vec<f64> = values[..n_genes * n_conds].to_vec();
        let m = ExpressionMatrix::from_flat_unlabeled(n_genes, n_conds, vals).unwrap();
        let params = MiningParams::new(min_g, min_c, gamma, eps).unwrap();
        let fast = canonical(mine(&m, &params).unwrap());
        let slow = canonical(reference_mine(&m, &params));
        prop_assert_eq!(fast, slow);
    }
}
