//! The full §5.2 effectiveness pipeline end to end on a scaled-down
//! simulated yeast dataset: mine at the paper's parameters, select
//! non-overlapping showcase clusters, score their GO enrichment, and check
//! the statistical-significance machinery against a permutation null.

use regcluster::core::postprocess::merge_overlapping_validated;
use regcluster::core::{mine, MiningParams};
use regcluster::datagen::yeast_like::{yeast_like, YeastConfig};
use regcluster::eval::{enrich, overlap, permutation_significance, top_terms_by_category};

fn small_yeast() -> YeastConfig {
    YeastConfig {
        n_genes: 600,
        n_modules: 6,
        genes_per_module: (20, 30),
        ..YeastConfig::default()
    }
}

#[test]
fn pipeline_mines_modules_and_enriches_go_terms() {
    let data = yeast_like(&small_yeast()).expect("feasible");
    // The paper's §5.2 parameters.
    let params = MiningParams::new(20, 6, 0.05, 1.0).unwrap();
    let clusters = mine(&data.matrix, &params).unwrap();
    assert!(
        clusters.len() >= data.modules.len(),
        "every planted module should produce at least one cluster: {} < {}",
        clusters.len(),
        data.modules.len()
    );
    for c in &clusters {
        c.validate(&data.matrix, &params).unwrap();
    }

    // Each planted module must be recovered by some cluster (genes ⊆).
    for (i, module) in data.modules.iter().enumerate() {
        let hit = clusters.iter().any(|c| {
            let genes = c.genes();
            module.genes.iter().all(|g| genes.binary_search(g).is_ok())
        });
        assert!(hit, "module {i} not recovered");
    }

    // Showcase selection + GO enrichment: every selected cluster must be
    // strongly enriched for a signature term in all three GO categories.
    let showcase = overlap::select_disjoint(&clusters, 3);
    assert!(!showcase.is_empty());
    for c in &showcase {
        let enr = enrich(&data.go, &c.genes());
        let tops = top_terms_by_category(&enr);
        assert_eq!(tops.len(), 3, "one top term per GO category");
        for t in tops {
            assert!(
                t.p_value < 1e-6,
                "showcase cluster should be enriched; got p = {} for {}",
                t.p_value,
                t.term_name
            );
        }
    }

    // Mixed orientations: at least one cluster carries n-members (the
    // generator plants ~25% negative responders).
    assert!(
        clusters.iter().any(|c| !c.n_members.is_empty()),
        "negative co-regulation must appear in the output"
    );
}

#[test]
fn mined_clusters_beat_the_permutation_null() {
    let data = yeast_like(&small_yeast()).expect("feasible");
    let params = MiningParams::new(20, 6, 0.05, 1.0).unwrap();
    let clusters = mine(&data.matrix, &params).unwrap();
    assert!(!clusters.is_empty());
    let report = permutation_significance(&data.matrix, &params, &clusters, 12, 77);
    // The biggest real cluster must outrank every permuted round.
    let best_cells = clusters.iter().map(|c| c.n_cells()).max().unwrap();
    assert!(
        report.null_max_cells.iter().all(|&n| n < best_cells),
        "null {:?} should never reach the real structure's {best_cells} cells",
        report.null_max_cells
    );
    let best_idx = clusters
        .iter()
        .position(|c| c.n_cells() == best_cells)
        .unwrap();
    assert!(report.cluster_p[best_idx] <= 1.0 / 13.0 + 1e-12);
}

#[test]
fn postprocessing_merges_subchain_redundancy() {
    // The wide planted module produces several heavily-overlapping
    // subchain clusters; validated merging collapses them without ever
    // violating Definition 3.2.
    let data = yeast_like(&small_yeast()).expect("feasible");
    let params = MiningParams::new(20, 6, 0.05, 1.0).unwrap();
    let clusters = mine(&data.matrix, &params).unwrap();
    let merged = merge_overlapping_validated(&clusters, 0.5, &data.matrix, &params);
    assert!(
        merged.len() <= clusters.len(),
        "merging can only reduce the cluster count"
    );
    for c in &merged {
        c.validate(&data.matrix, &params).unwrap();
    }
    // Every planted module must still be recovered after merging.
    for module in &data.modules {
        let hit = merged.iter().any(|c| {
            let genes = c.genes();
            module.genes.iter().all(|g| genes.binary_search(g).is_ok())
        });
        assert!(hit, "module lost during merging");
    }
}
