//! Offline stub of `criterion`.
//!
//! Supports the harness surface this workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::{bench_function,
//! benchmark_group}`, `BenchmarkGroup::{sample_size, bench_function,
//! bench_with_input, finish}`, `BenchmarkId`, `Bencher::iter`, and
//! [`black_box`] — and reports the mean wall-clock time per iteration for
//! each benchmark on stdout. No statistics, plots, or saved baselines.

use std::fmt;
use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times closures over a fixed number of iterations.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then timed iterations.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += self.samples as u64;
    }
}

fn report(name: &str, bencher: &Bencher) {
    if bencher.iters == 0 {
        println!("{name:<50} (no iterations)");
        return;
    }
    let per_iter = bencher.total / bencher.iters as u32;
    println!(
        "{name:<50} {per_iter:>12.2?}/iter ({} iters)",
        bencher.iters
    );
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        report(name, &bencher);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size.unwrap_or(self.criterion.sample_size),
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, id.into_benchmark_id()),
            &bencher,
        );
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting happens per-benchmark; this is a no-op
    /// kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier, optionally carrying a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id for `name` at parameter value `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of the various `bench_function` id forms to a display string.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
