//! Registry-backed mining telemetry.
//!
//! [`MetricsObserver`] is the production observer: it turns enumeration
//! events into pre-registered [`regcluster_obs`] instruments — per-rule
//! subtree-kill counters, a node-depth histogram, and a time-to-emission
//! histogram. Every event handler is a handful of relaxed atomic writes:
//! no locks, no registry lookups, and no heap allocation, so the observer
//! can ride inside the allocation-free enumeration core (the workspace's
//! `tests/alloc.rs` pins this at exactly zero steady-state allocations).

use regcluster_matrix::CondId;
use regcluster_obs::{Clock, Counter, Histogram, MetricsRegistry, MonotonicClock};

use crate::cluster::RegCluster;
use crate::observer::{MineObserver, PruneRule, SyncMineObserver};

/// Name of the nodes-entered counter.
pub const MINE_NODES_METRIC: &str = "regcluster_mine_nodes_total";
/// Name of the clusters-emitted counter.
pub const MINE_EMITTED_METRIC: &str = "regcluster_mine_clusters_emitted_total";
/// Name of the per-rule pruned-subtree counter (labelled by `rule`).
pub const MINE_PRUNED_METRIC: &str = "regcluster_mine_pruned_subtrees_total";
/// Name of the node-depth histogram.
pub const MINE_NODE_DEPTH_METRIC: &str = "regcluster_mine_node_depth";
/// Name of the time-to-emission histogram.
pub const MINE_EMISSION_LATENCY_METRIC: &str = "regcluster_mine_emission_latency_seconds";

/// Chain-length bucket bounds for [`MINE_NODE_DEPTH_METRIC`]. Depth 1 is
/// a root; MinC-sized chains land mid-range on realistic parameters.
const DEPTH_BOUNDS: [f64; 10] = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0];

/// Seconds-from-run-start bucket bounds for
/// [`MINE_EMISSION_LATENCY_METRIC`].
const LATENCY_BOUNDS: [f64; 10] = [0.0001, 0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0];

/// An observer recording enumeration events into registry instruments.
///
/// Works with both dispatch paths: it implements [`MineObserver`] for the
/// sequential miner and [`SyncMineObserver`] for the work-stealing engine
/// (all instrument cells are atomics, so concurrent workers reporting
/// through one instance lose nothing).
///
/// Handles are resolved once, at [`register`](MetricsObserver::register)
/// time. The clock is generic so tests can drive time by hand
/// ([`ManualClock`](regcluster_obs::ManualClock)); production uses the
/// default [`MonotonicClock`].
pub struct MetricsObserver<C: Clock + Sync = MonotonicClock> {
    clock: C,
    /// Microsecond timestamp (on `clock`) when this observer was created;
    /// emission latency is measured from here.
    epoch_micros: u64,
    nodes: Counter,
    emitted: Counter,
    pruned: [Counter; PruneRule::ALL.len()],
    depth: Histogram,
    emission_latency: Histogram,
}

impl MetricsObserver<MonotonicClock> {
    /// Registers the mining instruments in `registry` and returns an
    /// observer timing emissions against a fresh monotonic clock.
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self::with_clock(registry, MonotonicClock::new())
    }
}

impl<C: Clock + Sync> MetricsObserver<C> {
    /// As [`register`](MetricsObserver::register), but measuring time on
    /// the given clock.
    pub fn with_clock(registry: &MetricsRegistry, clock: C) -> Self {
        let nodes = registry.counter(
            MINE_NODES_METRIC,
            "Enumeration-tree nodes entered (partial representative chains expanded).",
            &[],
        );
        let emitted = registry.counter(
            MINE_EMITTED_METRIC,
            "Validated reg-clusters emitted by the enumeration.",
            &[],
        );
        let pruned = PruneRule::ALL.map(|rule| {
            registry.counter(
                MINE_PRUNED_METRIC,
                "Subtrees cut by each pruning strategy of the paper's section 4.",
                &[("rule", rule.as_label())],
            )
        });
        let depth = registry.histogram(
            MINE_NODE_DEPTH_METRIC,
            "Chain length (condition count) of each enumeration-tree node entered.",
            &[],
            &DEPTH_BOUNDS,
        );
        let emission_latency = registry.histogram(
            MINE_EMISSION_LATENCY_METRIC,
            "Seconds from the start of the mining run to each cluster emission.",
            &[],
            &LATENCY_BOUNDS,
        );
        let epoch_micros = clock.now_micros();
        Self {
            clock,
            epoch_micros,
            nodes,
            emitted,
            pruned,
            depth,
            emission_latency,
        }
    }

    fn record_node(&self, chain: &[CondId]) {
        self.nodes.inc();
        self.depth.observe(chain.len() as f64);
    }

    fn record_pruned(&self, rule: PruneRule) {
        self.pruned[rule.index()].inc();
    }

    fn record_emitted(&self) {
        self.emitted.inc();
        let elapsed = self.clock.now_micros().saturating_sub(self.epoch_micros);
        self.emission_latency.observe(elapsed as f64 / 1e6);
    }
}

impl<C: Clock + Sync> SyncMineObserver for MetricsObserver<C> {
    fn node_entered(&self, chain: &[CondId], _n_p: usize, _n_n: usize) {
        self.record_node(chain);
    }
    fn pruned(&self, _chain: &[CondId], rule: PruneRule) {
        self.record_pruned(rule);
    }
    fn cluster_emitted(&self, _cluster: &RegCluster) {
        self.record_emitted();
    }
}

impl<C: Clock + Sync> MineObserver for MetricsObserver<C> {
    fn node_entered(&mut self, chain: &[CondId], _n_p: usize, _n_n: usize) {
        self.record_node(chain);
    }
    fn pruned(&mut self, _chain: &[CondId], rule: PruneRule) {
        self.record_pruned(rule);
    }
    fn cluster_emitted(&mut self, _cluster: &RegCluster) {
        self.record_emitted();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcluster_obs::ManualClock;

    fn counter(registry: &MetricsRegistry, name: &str, help: &str, rule: Option<&str>) -> u64 {
        let labels: Vec<(&str, &str)> = rule.map(|r| ("rule", r)).into_iter().collect();
        registry.counter(name, help, &labels).get()
    }

    #[test]
    fn events_land_in_the_right_instruments() {
        let registry = MetricsRegistry::new();
        let observer = MetricsObserver::with_clock(&registry, ManualClock::new());
        SyncMineObserver::node_entered(&observer, &[3], 5, 2);
        SyncMineObserver::node_entered(&observer, &[3, 7, 1], 4, 1);
        SyncMineObserver::pruned(&observer, &[3, 7], PruneRule::Coherence);
        SyncMineObserver::pruned(&observer, &[4], PruneRule::MinGenes);
        SyncMineObserver::pruned(&observer, &[5], PruneRule::Coherence);
        let cluster = RegCluster {
            chain: vec![3, 7, 1],
            p_members: vec![0],
            n_members: vec![],
        };
        SyncMineObserver::cluster_emitted(&observer, &cluster);

        let node_help = "Enumeration-tree nodes entered (partial representative chains expanded).";
        assert_eq!(counter(&registry, MINE_NODES_METRIC, node_help, None), 2);
        let pruned_help = "Subtrees cut by each pruning strategy of the paper's section 4.";
        assert_eq!(
            counter(
                &registry,
                MINE_PRUNED_METRIC,
                pruned_help,
                Some("coherence")
            ),
            2
        );
        assert_eq!(
            counter(
                &registry,
                MINE_PRUNED_METRIC,
                pruned_help,
                Some("min_genes")
            ),
            1
        );
        assert_eq!(
            counter(
                &registry,
                MINE_PRUNED_METRIC,
                pruned_help,
                Some("duplicate")
            ),
            0
        );
        let text = registry.encode_prometheus();
        assert!(text.contains("regcluster_mine_clusters_emitted_total 1"));
        assert!(text.contains("regcluster_mine_node_depth_count 2"));
        assert!(text.contains("regcluster_mine_node_depth_sum 4"), "{text}");
    }

    #[test]
    fn emission_latency_measured_from_construction() {
        let registry = MetricsRegistry::new();
        let clock = ManualClock::new();
        clock.advance(10_000_000); // epoch ≠ 0
        let observer = MetricsObserver::with_clock(&registry, clock);
        observer.clock.advance(2_000_000); // 2 s into the run
        let cluster = RegCluster {
            chain: vec![0, 1],
            p_members: vec![0],
            n_members: vec![],
        };
        SyncMineObserver::cluster_emitted(&observer, &cluster);
        let h = registry.histogram(
            MINE_EMISSION_LATENCY_METRIC,
            "Seconds from the start of the mining run to each cluster emission.",
            &[],
            &LATENCY_BOUNDS,
        );
        assert_eq!(h.count(), 1);
        assert!((h.sum() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mut_and_sync_paths_share_cells() {
        let registry = MetricsRegistry::new();
        let mut observer = MetricsObserver::with_clock(&registry, ManualClock::new());
        MineObserver::node_entered(&mut observer, &[1], 1, 0);
        SyncMineObserver::node_entered(&observer, &[1, 2], 1, 0);
        assert_eq!(
            counter(
                &registry,
                MINE_NODES_METRIC,
                "Enumeration-tree nodes entered (partial representative chains expanded).",
                None
            ),
            2
        );
    }
}
