#![deny(missing_docs)]

//! Named-site fault injection for crash-safety testing.
//!
//! Production code marks the places where a crash would be interesting —
//! a section flush in the store writer, a worker loop iteration in the
//! mining engine — with a **failpoint site**: a call to [`io`] or
//! [`trigger`] naming an entry of the static [`SITES`] catalogue. A test
//! (or an operator running a chaos drill) then arms sites with an
//! *action*:
//!
//! ```text
//! FAILPOINTS='store::section_flush=io_err@2;engine::worker=panic@40'
//! ```
//!
//! arms the second flush of the section writer to fail with an injected
//! [`std::io::Error`] and the 40th engine worker loop iteration to panic.
//! The grammar is `site=action[@n]` entries separated by `;`, where
//! `action` is `io_err`, `panic`, `drop`, `garble`, or `delay@ms` and the
//! optional trailing `@n` (1-based) fires the action only on the n-th
//! evaluation of that site instead of every evaluation. `delay` carries
//! its millisecond argument first, so `delay@250@3` sleeps 250 ms on the
//! third evaluation only.
//!
//! # Network fault actions
//!
//! The `drop`, `garble` and `delay@ms` actions model *network* failure at
//! sites evaluated through [`net`] (the cluster HTTP layer on both ends):
//! `delay` simulates a slow link, `drop` an accept-then-close peer or a
//! partition, and `garble` a torn response (truncated + corrupted bytes).
//! At an [`io`] site, `delay` sleeps then succeeds while `drop`/`garble`
//! degrade to the injected I/O error; at a [`net`] site, `io_err`
//! degrades to `Drop`. `panic` panics everywhere.
//!
//! # Cost when disabled
//!
//! When no site is armed — the production steady state — every failpoint
//! evaluation is **one relaxed atomic load and a predictable branch**:
//! no lock, no lookup, no allocation. The workspace-root `tests/alloc.rs`
//! counts allocations through an instrumented global allocator with this
//! crate linked in and asserts the zero-allocation mining paths stay at
//! exactly zero.
//!
//! # Observability
//!
//! Every fired fault increments a per-site counter. Call
//! [`register_metrics`] to mirror those counters into a
//! [`MetricsRegistry`] as `regcluster_failpoints_fired_total{site=…}`,
//! so a chaos drill shows up on the same `/metrics` endpoint operators
//! already scrape (`docs/OBSERVABILITY.md`).
//!
//! # Scope
//!
//! The armed configuration is process-global (that is the point — the
//! code under test must not know it is being sabotaged), so tests that
//! call [`configure`] must serialize themselves and [`clear`] on exit.
//! The full site catalogue with the failure each site simulates is
//! documented in `docs/ROBUSTNESS.md`, kept in sync by a drift test.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use regcluster_obs::{Counter, MetricsRegistry};

/// Every failpoint site the workspace instruments, in catalogue order.
///
/// [`configure`] rejects names outside this list, so a typo in a chaos
/// spec fails loudly instead of silently arming nothing. The docs-drift
/// test iterates this list against `docs/ROBUSTNESS.md`.
pub const SITES: &[&str] = &[
    "store::record_write",
    "store::section_flush",
    "store::seal_header",
    "store::fsync_file",
    "store::rename",
    "store::dir_sync",
    "store::current_publish",
    "store::merge_seal",
    "checkpoint::save",
    "engine::worker",
    "cluster::lease_grant",
    "cluster::shard_upload",
    "cluster::publish",
    "cluster::journal_append",
    "cluster::http_request",
    "cluster::http_response",
    "cluster::upload_response",
];

/// Metric family name under which fired-fault counters are exported.
pub const FIRED_METRIC: &str = "regcluster_failpoints_fired_total";

/// Environment variable read by [`init_from_env`].
pub const ENV_VAR: &str = "FAILPOINTS";

/// What an armed site does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// The site returns an injected [`std::io::Error`] (kind `Other`).
    IoErr,
    /// The site panics, simulating a crashed worker thread.
    Panic,
    /// The site sleeps this many milliseconds, then proceeds — a slow
    /// link or an overloaded peer.
    Delay(u64),
    /// A [`net`] site closes the connection without answering
    /// (accept-then-close / partition); an [`io`] site degrades this to
    /// the injected error.
    Drop,
    /// A [`net`] site truncates and corrupts the bytes it was about to
    /// send (a torn response); an [`io`] site degrades this to the
    /// injected error.
    Garble,
}

/// What a [`net`]-evaluated site tells the networking code to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Proceed normally (any armed `delay` has already been slept).
    Pass,
    /// Close the connection without sending anything.
    Drop,
    /// Send a truncated, corrupted version of the payload, then close.
    Garble,
}

#[derive(Debug, Clone, Copy)]
struct Armed {
    action: Action,
    /// 1-based evaluation ordinal on which to fire; `None` = every time.
    fire_at: Option<u64>,
}

const N_SITES: usize = 17;
const _: () = assert!(SITES.len() == N_SITES, "keep N_SITES in sync with SITES");

/// Fast-path gate: false (the default) means every site is a
/// branch-on-relaxed-load no-op.
static ACTIVE: AtomicBool = AtomicBool::new(false);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
/// Evaluations per site while armed (drives `@n` ordinals).
static HITS: [AtomicU64; N_SITES] = [ZERO; N_SITES];
/// Faults actually fired per site.
static FIRED: [AtomicU64; N_SITES] = [ZERO; N_SITES];

/// Armed actions per site plus the obs-registry mirror handles.
/// Locked only on the slow path (armed process) and at (re)configuration.
static CONFIG: Mutex<Option<[Option<Armed>; N_SITES]>> = Mutex::new(None);
static MIRRORS: Mutex<Vec<[Counter; N_SITES]>> = Mutex::new(Vec::new());

fn site_index(site: &str) -> Option<usize> {
    SITES.iter().position(|&s| s == site)
}

/// Parses and arms a failpoint spec (`site=action[@n]` entries separated
/// by `;`), replacing any previous configuration and resetting the
/// per-site evaluation ordinals. An empty spec disarms everything, like
/// [`clear`].
///
/// # Errors
///
/// A description of the first malformed entry: unknown site name, unknown
/// action, or an unparsable `@n` ordinal.
pub fn configure(spec: &str) -> Result<(), String> {
    let mut armed: [Option<Armed>; N_SITES] = [None; N_SITES];
    let mut any = false;
    for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
        let (site, rest) = entry
            .split_once('=')
            .ok_or_else(|| format!("failpoint entry {entry:?}: expected site=action[@n]"))?;
        let idx = site_index(site.trim()).ok_or_else(|| {
            format!(
                "unknown failpoint site {:?}; known sites: {}",
                site.trim(),
                SITES.join(", ")
            )
        })?;
        let mut at_parts = rest.split('@').map(str::trim);
        let name = at_parts.next().unwrap_or_default();
        let parse_ordinal = |n: &str| -> Result<u64, String> {
            let v: u64 = n
                .parse()
                .map_err(|_| format!("failpoint entry {entry:?}: bad ordinal {n:?}"))?;
            if v == 0 {
                return Err(format!("failpoint entry {entry:?}: ordinal is 1-based"));
            }
            Ok(v)
        };
        let action = match name {
            "io_err" => Action::IoErr,
            "panic" => Action::Panic,
            "drop" => Action::Drop,
            "garble" => Action::Garble,
            "delay" => {
                let ms = at_parts.next().ok_or_else(|| {
                    format!(
                        "failpoint entry {entry:?}: delay needs a millisecond argument (delay@ms)"
                    )
                })?;
                let ms: u64 = ms.parse().map_err(|_| {
                    format!("failpoint entry {entry:?}: bad delay milliseconds {ms:?}")
                })?;
                Action::Delay(ms)
            }
            other => {
                return Err(format!(
                "unknown failpoint action {other:?}; want io_err, panic, drop, garble, or delay@ms"
            ))
            }
        };
        let ordinal = at_parts.next().map(parse_ordinal).transpose()?;
        if at_parts.next().is_some() {
            return Err(format!("failpoint entry {entry:?}: too many @-arguments"));
        }
        armed[idx] = Some(Armed {
            action,
            fire_at: ordinal,
        });
        any = true;
    }
    let mut config = lock(&CONFIG);
    for hits in &HITS {
        hits.store(0, Ordering::Relaxed);
    }
    *config = any.then_some(armed);
    // Publish the gate after the config so a racing slow path sees the
    // new actions; release pairs with the slow path's acquire reload.
    ACTIVE.store(any, Ordering::Release);
    Ok(())
}

/// Arms failpoints from the `FAILPOINTS` environment variable; a missing
/// or empty variable leaves everything disarmed. Returns whether any site
/// was armed.
///
/// # Errors
///
/// As [`configure`], for a malformed spec.
pub fn init_from_env() -> Result<bool, String> {
    match std::env::var(ENV_VAR) {
        Ok(spec) => {
            configure(&spec)?;
            Ok(ACTIVE.load(Ordering::Relaxed))
        }
        Err(_) => Ok(false),
    }
}

/// Disarms every site and resets the per-site evaluation ordinals.
/// Cumulative fired counters are kept (they are monotonic metrics).
pub fn clear() {
    let mut config = lock(&CONFIG);
    for hits in &HITS {
        hits.store(0, Ordering::Relaxed);
    }
    *config = None;
    ACTIVE.store(false, Ordering::Release);
}

/// Evaluates the failpoint at `site`, returning the injected error when
/// an `io_err` action fires. Instrument fallible I/O boundaries with
/// `failpoint::io("store::…")?`.
///
/// When nothing is armed (the production steady state) this is one
/// relaxed atomic load and a branch: no lock, no allocation.
///
/// # Errors
///
/// The injected error when `site` is armed with `io_err` (or the
/// network-shaped `drop`/`garble`, which degrade to it here) and its
/// ordinal matches. A fired `delay` sleeps, then returns `Ok`.
///
/// # Panics
///
/// When `site` is armed with `panic` and its ordinal matches.
#[inline]
pub fn io(site: &'static str) -> std::io::Result<()> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return Ok(());
    }
    match slow(site) {
        Some((Action::IoErr | Action::Drop | Action::Garble, hit)) => Err(std::io::Error::other(
            format!("injected failpoint error at {site} (hit {hit})"),
        )),
        Some((Action::Delay(_), _)) | None => Ok(()),
        Some((Action::Panic, _)) => unreachable!("slow() panics on Panic"),
    }
}

/// Evaluates the failpoint at `site` where no error can be returned —
/// only the `panic` action is observable (and `delay` sleeps); a fired
/// `io_err`/`drop`/`garble` is counted but otherwise ignored. Instrument
/// infallible hot paths (the engine worker loop) with this.
///
/// # Panics
///
/// When `site` is armed with `panic` and its ordinal matches.
#[inline]
pub fn trigger(site: &'static str) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    let _ = slow(site);
}

/// Evaluates the failpoint at a network boundary: the cluster HTTP layer
/// calls this just before sending bytes and acts on the returned
/// [`NetFault`]. A fired `delay` has already been slept when this
/// returns; `io_err` degrades to [`NetFault::Drop`] (the peer sees the
/// same thing: a closed connection).
///
/// # Panics
///
/// When `site` is armed with `panic` and its ordinal matches.
#[inline]
pub fn net(site: &'static str) -> NetFault {
    if !ACTIVE.load(Ordering::Relaxed) {
        return NetFault::Pass;
    }
    match slow(site) {
        Some((Action::Drop | Action::IoErr, _)) => NetFault::Drop,
        Some((Action::Garble, _)) => NetFault::Garble,
        Some((Action::Delay(_), _)) | None => NetFault::Pass,
        Some((Action::Panic, _)) => unreachable!("slow() panics on Panic"),
    }
}

/// Evaluates `site` against the armed table. Returns the fired action and
/// hit ordinal, after sleeping a `Delay` and panicking on `Panic`; `None`
/// when nothing fired.
#[cold]
fn slow(site: &'static str) -> Option<(Action, u64)> {
    let Some(idx) = site_index(site) else {
        // An uncatalogued site is a wiring bug; surface it in tests.
        debug_assert!(false, "failpoint site {site:?} is not in SITES");
        return None;
    };
    let armed = {
        let config = lock(&CONFIG);
        // Re-check under the lock: `clear` may have won the race.
        let table = config.as_ref()?;
        table[idx]?
    };
    let hit = HITS[idx].fetch_add(1, Ordering::Relaxed) + 1;
    if armed.fire_at.is_some_and(|n| n != hit) {
        return None;
    }
    FIRED[idx].fetch_add(1, Ordering::Relaxed);
    for mirror in lock(&MIRRORS).iter() {
        mirror[idx].inc();
    }
    match armed.action {
        Action::Panic => panic!("injected failpoint panic at {site} (hit {hit})"),
        Action::Delay(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Some((armed.action, hit))
        }
        _ => Some((armed.action, hit)),
    }
}

/// Faults fired at `site` since process start (cumulative across
/// [`configure`]/[`clear`] cycles).
///
/// # Panics
///
/// If `site` is not in [`SITES`].
pub fn fired(site: &str) -> u64 {
    let idx = site_index(site).unwrap_or_else(|| panic!("unknown failpoint site {site:?}"));
    FIRED[idx].load(Ordering::Relaxed)
}

/// Mirrors the per-site fired counters into `registry` as
/// [`FIRED_METRIC`]`{site=…}` series, seeding each with the count fired
/// so far, and keeps them updated as further faults fire.
pub fn register_metrics(registry: &MetricsRegistry) {
    let counters: Vec<Counter> = SITES
        .iter()
        .enumerate()
        .map(|(idx, site)| {
            let c = registry.counter(
                FIRED_METRIC,
                "Injected faults fired per failpoint site.",
                &[("site", site)],
            );
            let already = FIRED[idx].load(Ordering::Relaxed);
            if already > c.get() {
                c.add(already - c.get());
            }
            c
        })
        .collect();
    let mirror: [Counter; N_SITES] = counters.try_into().expect("SITES.len() == N_SITES");
    lock(&MIRRORS).push(mirror);
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The armed configuration is process-global, so every test arming
    // sites serializes on this and clears on exit.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_sites_are_silent() {
        let _guard = lock(&SERIAL);
        clear();
        for &site in SITES {
            io(site).unwrap();
            trigger(site);
        }
    }

    #[test]
    fn io_err_fires_every_time_without_ordinal() {
        let _guard = lock(&SERIAL);
        configure("store::section_flush=io_err").unwrap();
        let before = fired("store::section_flush");
        assert!(io("store::section_flush").is_err());
        assert!(io("store::section_flush").is_err());
        io("store::rename").unwrap();
        assert_eq!(fired("store::section_flush"), before + 2);
        clear();
        io("store::section_flush").unwrap();
    }

    #[test]
    fn ordinal_fires_exactly_once_at_n() {
        let _guard = lock(&SERIAL);
        configure("store::record_write=io_err@3").unwrap();
        assert!(io("store::record_write").is_ok());
        assert!(io("store::record_write").is_ok());
        assert!(io("store::record_write").is_err());
        assert!(io("store::record_write").is_ok());
        clear();
    }

    #[test]
    fn panic_action_panics_and_trigger_ignores_io_err() {
        let _guard = lock(&SERIAL);
        configure("engine::worker=panic@1;store::dir_sync=io_err").unwrap();
        trigger("store::dir_sync"); // io_err on a trigger site: counted, ignored
        let payload = std::panic::catch_unwind(|| trigger("engine::worker"))
            .expect_err("armed panic must fire");
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.contains("engine::worker"), "payload: {msg}");
        clear();
    }

    #[test]
    fn bad_specs_are_rejected() {
        let _guard = lock(&SERIAL);
        assert!(configure("nonsense").is_err());
        assert!(configure("no::such::site=io_err").is_err());
        assert!(configure("engine::worker=explode").is_err());
        assert!(configure("engine::worker=panic@zero").is_err());
        assert!(configure("engine::worker=panic@0").is_err());
        assert!(configure("cluster::http_request=delay").is_err());
        assert!(configure("cluster::http_request=delay@fast").is_err());
        assert!(configure("cluster::http_request=delay@10@2@9").is_err());
        assert!(configure("cluster::http_request=io_err@1@2").is_err());
        // A failed configure leaves nothing armed.
        for &site in SITES {
            io(site).unwrap();
        }
        clear();
    }

    #[test]
    fn net_actions_parse_and_fire() {
        let _guard = lock(&SERIAL);
        configure("cluster::http_response=drop@1;cluster::upload_response=garble").unwrap();
        assert_eq!(net("cluster::http_response"), NetFault::Drop);
        assert_eq!(net("cluster::http_response"), NetFault::Pass);
        assert_eq!(net("cluster::upload_response"), NetFault::Garble);
        assert_eq!(net("cluster::http_request"), NetFault::Pass);
        clear();
    }

    #[test]
    fn delay_sleeps_then_passes_everywhere() {
        let _guard = lock(&SERIAL);
        configure("cluster::http_request=delay@30@1").unwrap();
        let start = std::time::Instant::now();
        assert_eq!(net("cluster::http_request"), NetFault::Pass);
        assert!(start.elapsed() >= std::time::Duration::from_millis(30));
        // Ordinal 1 already consumed: no further sleeping.
        assert_eq!(net("cluster::http_request"), NetFault::Pass);
        configure("store::fsync_file=delay@1").unwrap();
        io("store::fsync_file").unwrap();
        clear();
    }

    #[test]
    fn net_degrades_io_err_and_io_degrades_net_actions() {
        let _guard = lock(&SERIAL);
        configure("cluster::http_response=io_err;store::rename=garble;store::fsync_file=drop")
            .unwrap();
        assert_eq!(net("cluster::http_response"), NetFault::Drop);
        assert!(io("store::rename").is_err());
        assert!(io("store::fsync_file").is_err());
        clear();
    }

    #[test]
    fn metrics_mirror_counts_fired_faults() {
        let _guard = lock(&SERIAL);
        clear();
        let registry = MetricsRegistry::new();
        register_metrics(&registry);
        let handle = registry.counter(
            FIRED_METRIC,
            "Injected faults fired per failpoint site.",
            &[("site", "store::seal_header")],
        );
        let before = handle.get();
        configure("store::seal_header=io_err@1").unwrap();
        assert!(io("store::seal_header").is_err());
        assert_eq!(handle.get(), before + 1);
        assert_eq!(
            registry.metric_names(),
            vec![FIRED_METRIC.to_string()],
            "one family, one series per site"
        );
        clear();
    }
}
