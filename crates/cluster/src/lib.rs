//! Distributed mining cluster for reg-cluster enumeration.
//!
//! The enumeration tree is embarrassingly partitionable by root
//! condition: a subtree's output depends only on the mining parameters
//! and its root's member rows, and subtree outputs are disjoint by root
//! (the delta-soundness argument in `regcluster_core::delta`). This
//! crate exploits that to scale mining past one machine:
//!
//! * a **coordinator** ([`run_coordinator`]) partitions the root space,
//!   leases contiguous ranges to workers over a dependency-free HTTP
//!   control plane, validates and stages uploaded shards, merges them
//!   **bit-identically** to a single-node run
//!   ([`regcluster_store::merge_shards`]) and publishes the result as
//!   the next [`Generations`](regcluster_store::Generations) lineage
//!   entry, which replica `serve --watch` processes hot-swap onto;
//! * a **worker** ([`run_worker`]) mines leased ranges through the
//!   checkpointed roots-subset engine entry point, heartbeats to keep
//!   its lease, survives its own crashes by resuming from per-lease
//!   checkpoints, and uploads sealed shards.
//!
//! Failure handling is lease-based: a silent or crashed worker's lease
//! expires and the range is granted to the next worker, which resumes
//! from nothing (fresh mine) while the crashed worker's eventual
//! comeback is fenced off by the lease epoch. The fault matrix is
//! exercised end-to-end by the scripted multi-process harness in
//! `crates/cli/tests/cluster_harness/`.

pub mod backoff;
pub mod coordinator;
pub mod error;
pub mod http;
pub mod metrics;
pub mod protocol;
pub mod worker;

pub use backoff::Backoff;
pub use coordinator::{run_coordinator, CoordinatorConfig, CoordinatorReport, CLUSTER_ENGINE};
pub use error::ClusterError;
pub use http::HttpReply;
pub use metrics::{ClusterMetrics, WorkerMetrics};
pub use protocol::{AcquireRequest, AcquireResponse, JobInfo, RenewRequest, StatusDoc};
pub use worker::{run_worker, WorkerConfig, WorkerReport};
