//! Word-boundary and equivalence tests for the packed candidate bitsets.
//!
//! The enumeration hot path packs condition ids 64 to a `u64` word
//! (`crate::bitset`), so every off-by-one in the layout shows up exactly at
//! bit counts 63/64/65 and 127/128/129. These tests pin the boundary
//! behavior three ways: direct set algebra on [`BitMask`], a property test
//! proving the word-wise intersection agrees with the sorted-`Vec` merge
//! intersection the pre-bitset code used, and end-to-end mines on matrices
//! whose condition counts straddle the word boundaries.

use proptest::prelude::*;

use regcluster_core::bitset::{
    from_indices, indices, intersect_into, popcount, words_for, BitMask, WORD_BITS,
};
use regcluster_core::{mine, mine_parallel, MiningParams};
use regcluster_datagen::{generate, SyntheticConfig};

/// Bit counts at and around the `u64` word boundaries.
const BOUNDARY_BITS: [usize; 6] = [63, 64, 65, 127, 128, 129];

#[test]
fn boundary_bits_round_trip_per_width() {
    for n in BOUNDARY_BITS {
        let mut m = BitMask::with_bits(n);
        assert_eq!(m.words().len(), words_for(n));
        // First, last, and every bit adjacent to an interior word edge.
        let probes: Vec<usize> = [0, 1, 62, 63, 64, 65, 126, 127, 128]
            .into_iter()
            .filter(|&i| i < n)
            .collect();
        for &i in &probes {
            m.set(i);
        }
        let mut seen = Vec::new();
        m.for_each(|i| seen.push(i));
        assert_eq!(seen, probes, "ascending iteration at width {n}");
        assert_eq!(m.count(), probes.len());
        for &i in &probes {
            assert!(m.contains(i), "bit {i} at width {n}");
        }
        m.clear();
        assert!(!m.any(), "cleared mask at width {n}");
    }
}

#[test]
fn all_ones_mask_intersects_to_identity() {
    for n in BOUNDARY_BITS {
        let all: Vec<usize> = (0..n).collect();
        let ones = from_indices(n, &all);
        assert_eq!(popcount(&ones), n, "all-ones popcount at width {n}");
        let sparse = from_indices(n, &[0, n / 2, n - 1]);
        let mut out = vec![0u64; ones.len()];
        // Intersecting with the universe is the identity.
        intersect_into(&ones, &sparse, &mut out);
        assert_eq!(indices(&out), vec![0, n / 2, n - 1]);
        intersect_into(&ones, &ones, &mut out);
        assert_eq!(indices(&out), all);
    }
}

#[test]
fn disjoint_sets_intersect_to_empty() {
    for n in BOUNDARY_BITS {
        let evens: Vec<usize> = (0..n).step_by(2).collect();
        let odds: Vec<usize> = (1..n).step_by(2).collect();
        let a = from_indices(n, &evens);
        let b = from_indices(n, &odds);
        let mut out = vec![u64::MAX; a.len()];
        intersect_into(&a, &b, &mut out);
        assert_eq!(popcount(&out), 0, "disjoint intersection at width {n}");
        assert!(indices(&out).is_empty());
    }
}

#[test]
fn or_range_masked_across_word_edges() {
    // Suffix pairs whose difference straddles a word edge: contribution
    // must be exactly [lo, hi) regardless of where the edge falls.
    for (n, lo, hi) in [(129, 60, 68), (129, 63, 64), (129, 64, 129), (65, 0, 65)] {
        let lo_sfx: Vec<usize> = (lo..n).collect();
        let hi_sfx: Vec<usize> = (hi..n).collect();
        let mut m = BitMask::with_bits(n);
        m.or_range_masked(&from_indices(n, &lo_sfx), &from_indices(n, &hi_sfx));
        let mut got = Vec::new();
        m.for_each(|i| got.push(i));
        let want: Vec<usize> = (lo..hi).collect();
        assert_eq!(got, want, "suffix difference [{lo}, {hi}) at width {n}");
    }
}

/// The sorted-`Vec` merge intersection the pre-bitset candidate code used.
fn merge_intersection(a: &[usize], b: &[usize]) -> Vec<usize> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Sorted, deduplicated index sets inside `0..n_bits`, biased to include
/// word-boundary widths via the strategy below.
fn index_set(n_bits: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::btree_set(0..n_bits, 0..=n_bits.min(40)).prop_map(|s| s.into_iter().collect())
}

proptest! {
    /// Word-wise AND over packed words ≡ merge intersection of sorted id
    /// vectors, for widths spanning one to three words.
    #[test]
    fn bitset_intersection_matches_sorted_vec(
        width in prop::sample::select(vec![1usize, 63, 64, 65, 127, 128, 129, 160]),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        // Derive two index sets from the seeds without a second strategy
        // level: keep it simple and deterministic.
        let a: Vec<usize> = (0..width).filter(|i| (seed_a >> (i % 64)) & 1 == 1).collect();
        let b: Vec<usize> = (0..width).filter(|i| (seed_b >> ((i + 17) % 64)) & 1 == 1).collect();
        let wa = from_indices(width, &a);
        let wb = from_indices(width, &b);
        let mut out = vec![0u64; words_for(width)];
        intersect_into(&wa, &wb, &mut out);
        prop_assert_eq!(indices(&out), merge_intersection(&a, &b));
        prop_assert_eq!(popcount(&out), merge_intersection(&a, &b).len());
    }

    /// Random sparse sets round-trip through the packed representation.
    #[test]
    fn pack_unpack_round_trip(set in index_set(129)) {
        let words = from_indices(129, &set);
        prop_assert_eq!(indices(&words), set.clone());
        prop_assert_eq!(popcount(&words), set.len());
        // Bit positions land in the expected word lane.
        for &i in &set {
            prop_assert!(words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0);
        }
    }
}

/// End-to-end mining on matrices whose condition counts straddle the word
/// boundaries: the packed candidate mask spans exactly 1, 2 or 3 words, and
/// sequential and parallel mining must agree on identical output either way.
#[test]
fn mining_agrees_across_word_boundary_widths() {
    for n_conds in BOUNDARY_BITS {
        let cfg = SyntheticConfig {
            n_genes: 120,
            n_conds,
            n_clusters: 4,
            ..SyntheticConfig::default()
        };
        let data = generate(&cfg).expect("generator config is feasible");
        let params = MiningParams::new(3, 6, 0.1, 0.01).expect("valid params");
        let seq = mine(&data.matrix, &params).expect("sequential mine");
        let par = mine_parallel(&data.matrix, &params, 4).expect("parallel mine");
        assert_eq!(seq, par, "sequential ≡ parallel at #cond = {n_conds}");
        for c in &seq {
            c.validate(&data.matrix, &params)
                .expect("mined cluster re-validates against the raw matrix");
        }
    }
}
