//! The `.rcj` control-plane journal: a crash-durable, append-only record
//! log for the cluster coordinator's lease state, reusing the store's
//! FNV-64 checksum machinery under its own magic.
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────┐
//! │ header (16 B)                                              │
//! │   0..8   magic  b"RCJORNL\0"                               │
//! │   8..12  journal version (u32 LE)                          │
//! │  12..16  reserved (u32 LE, zero)                           │
//! ├────────────────────────────────────────────────────────────┤
//! │ record 0: payload_len u32 │ fnv64(payload) u64 │ payload   │
//! │ record 1: …                                                │
//! │ …                                                          │
//! └────────────────────────────────────────────────────────────┘
//! ```
//!
//! Each payload starts with a `u32` record type followed by the fields of
//! one [`JournalRecord`] variant; strings are `u32`-length-prefixed UTF-8.
//!
//! # Durability discipline
//!
//! The header is created with the same tmp + fsync + rename + dir-fsync
//! discipline as every other store file, so a crash during creation
//! leaves either no journal or a complete empty one. Every
//! [`append`](Journal::append) writes one complete record then fsyncs the
//! data before returning — a record is only *in* the journal once the
//! caller has seen `Ok`. A crash mid-append can therefore leave at most
//! one torn record at the tail.
//!
//! # Torn-tail recovery
//!
//! [`Journal::recover`] scans records front to back, verifying each
//! length and checksum before decoding. The first invalid record —
//! truncated length prefix, length past end of file, checksum mismatch,
//! or undecodable payload — ends the scan: everything before it is the
//! recovered prefix, and the file is truncated back to that point (with
//! an fsync) so the journal is append-clean again. A damaged *header*
//! is not recoverable and yields a typed [`StoreError`]; the caller
//! decides whether to archive and start fresh. Recovery never panics on
//! any byte-level damage — `crates/store/tests/journal.rs` proves it by
//! exhaustively flipping every byte and truncating at every offset.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::StoreError;
use crate::format::{put_u32, put_u64, ByteReader, Fnv64};
use crate::writer::{sync_parent_dir, tmp_path};

/// File magic, first 8 bytes of every journal.
pub const JOURNAL_MAGIC: [u8; 8] = *b"RCJORNL\0";

/// The journal format version this build writes and reads.
pub const JOURNAL_VERSION: u32 = 1;

/// Fixed header length in bytes.
pub const JOURNAL_HEADER_LEN: usize = 16;

/// Per-record framing overhead: `payload_len u32` + `fnv64 u64`.
const FRAME_LEN: usize = 12;

/// Largest accepted record payload. Real records are tens to hundreds of
/// bytes; the bound keeps a corrupted length prefix from asking for a
/// multi-gigabyte allocation.
const MAX_RECORD: usize = 1 << 20;

/// Record type tags (the first `u32` of every payload).
const T_JOB_CREATED: u32 = 1;
const T_LEASE_GRANTED: u32 = 2;
const T_LEASE_RENEWED: u32 = 3;
const T_LEASE_EXPIRED: u32 = 4;
const T_SHARD_STAGED: u32 = 5;
const T_PUBLISHED: u32 = 6;

/// One durable control-plane transition.
///
/// The variants mirror the coordinator's lease protocol (`DESIGN.md`
/// §14): a run is created once, leases are granted / renewed / expired,
/// shards close their leases, and the merged generation is published.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A coordination run began: the identity every later record belongs
    /// to. Replay rejects a journal whose identity disagrees with the
    /// restarted coordinator's configuration.
    JobCreated {
        /// Generation the run will publish.
        generation: u64,
        /// Fingerprint of the input matrix.
        matrix_fingerprint: u64,
        /// Canonical mining-params JSON.
        params_json: String,
        /// Total root conditions partitioned.
        n_roots: u64,
        /// Number of lease slots in the partition.
        n_leases: u64,
    },
    /// A lease slot was granted to a worker under a fresh epoch.
    LeaseGranted {
        /// Slot index.
        lease: u64,
        /// Fencing epoch minted for this grant.
        epoch: u64,
        /// Worker id the slot was granted to.
        worker: String,
    },
    /// A heartbeat renewal was accepted (informational: deadlines are
    /// wall-clock and restart from "now + TTL" on replay).
    LeaseRenewed {
        /// Slot index.
        lease: u64,
        /// Epoch the renewal carried.
        epoch: u64,
    },
    /// A lease expired for worker silence and returned to the pool.
    LeaseExpired {
        /// Slot index.
        lease: u64,
        /// Epoch that expired.
        epoch: u64,
    },
    /// A validated shard was durably staged; the slot is done.
    ShardStaged {
        /// Slot index.
        lease: u64,
        /// Epoch the upload carried.
        epoch: u64,
    },
    /// The merged generation was published.
    Published {
        /// Generation number published.
        generation: u64,
    },
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn encode_record(rec: &JournalRecord) -> Vec<u8> {
    let mut p = Vec::new();
    match rec {
        JournalRecord::JobCreated {
            generation,
            matrix_fingerprint,
            params_json,
            n_roots,
            n_leases,
        } => {
            put_u32(&mut p, T_JOB_CREATED);
            put_u64(&mut p, *generation);
            put_u64(&mut p, *matrix_fingerprint);
            put_u64(&mut p, *n_roots);
            put_u64(&mut p, *n_leases);
            put_string(&mut p, params_json);
        }
        JournalRecord::LeaseGranted {
            lease,
            epoch,
            worker,
        } => {
            put_u32(&mut p, T_LEASE_GRANTED);
            put_u64(&mut p, *lease);
            put_u64(&mut p, *epoch);
            put_string(&mut p, worker);
        }
        JournalRecord::LeaseRenewed { lease, epoch } => {
            put_u32(&mut p, T_LEASE_RENEWED);
            put_u64(&mut p, *lease);
            put_u64(&mut p, *epoch);
        }
        JournalRecord::LeaseExpired { lease, epoch } => {
            put_u32(&mut p, T_LEASE_EXPIRED);
            put_u64(&mut p, *lease);
            put_u64(&mut p, *epoch);
        }
        JournalRecord::ShardStaged { lease, epoch } => {
            put_u32(&mut p, T_SHARD_STAGED);
            put_u64(&mut p, *lease);
            put_u64(&mut p, *epoch);
        }
        JournalRecord::Published { generation } => {
            put_u32(&mut p, T_PUBLISHED);
            put_u64(&mut p, *generation);
        }
    }
    p
}

fn decode_record(payload: &[u8]) -> Result<JournalRecord, StoreError> {
    let mut r = ByteReader::new(payload, "journal record");
    let rec = match r.u32()? {
        T_JOB_CREATED => {
            let generation = r.u64()?;
            let matrix_fingerprint = r.u64()?;
            let n_roots = r.u64()?;
            let n_leases = r.u64()?;
            let params_json = r.string()?;
            JournalRecord::JobCreated {
                generation,
                matrix_fingerprint,
                params_json,
                n_roots,
                n_leases,
            }
        }
        T_LEASE_GRANTED => {
            let lease = r.u64()?;
            let epoch = r.u64()?;
            let worker = r.string()?;
            JournalRecord::LeaseGranted {
                lease,
                epoch,
                worker,
            }
        }
        T_LEASE_RENEWED => JournalRecord::LeaseRenewed {
            lease: r.u64()?,
            epoch: r.u64()?,
        },
        T_LEASE_EXPIRED => JournalRecord::LeaseExpired {
            lease: r.u64()?,
            epoch: r.u64()?,
        },
        T_SHARD_STAGED => JournalRecord::ShardStaged {
            lease: r.u64()?,
            epoch: r.u64()?,
        },
        T_PUBLISHED => JournalRecord::Published {
            generation: r.u64()?,
        },
        other => {
            return Err(StoreError::Format(format!(
                "journal record: unknown type {other}"
            )))
        }
    };
    if r.remaining() != 0 {
        return Err(StoreError::Format(format!(
            "journal record: {} trailing bytes",
            r.remaining()
        )));
    }
    Ok(rec)
}

/// What [`Journal::recover`] found on disk.
#[derive(Debug)]
pub struct JournalRecovery {
    /// The journal, positioned to append after the recovered prefix.
    pub journal: Journal,
    /// Every valid record, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes of torn tail that were truncated away (0 for a clean file).
    pub truncated_bytes: u64,
}

/// An open, append-positioned control-plane journal.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Creates a fresh, empty journal at `path`, overwriting any previous
    /// file, with the tmp + fsync + rename + dir-fsync discipline.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the scratch file cannot be written or the
    /// rename fails.
    pub fn create(path: impl AsRef<Path>) -> Result<Journal, StoreError> {
        let path = path.as_ref().to_path_buf();
        let tmp = tmp_path(&path);
        let mut header = Vec::with_capacity(JOURNAL_HEADER_LEN);
        header.extend_from_slice(&JOURNAL_MAGIC);
        put_u32(&mut header, JOURNAL_VERSION);
        put_u32(&mut header, 0);
        debug_assert_eq!(header.len(), JOURNAL_HEADER_LEN);
        let result = (|| -> std::io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(&header)?;
            f.sync_all()?;
            drop(f);
            std::fs::rename(&tmp, &path)?;
            sync_parent_dir(&path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result?;
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(Journal { file, path })
    }

    /// Opens an existing journal, replaying every valid record and
    /// truncating a torn tail back to the last valid record boundary.
    ///
    /// # Errors
    ///
    /// * [`StoreError::Io`] — the file cannot be read or re-opened;
    /// * [`StoreError::Format`] — the header is missing, foreign, or
    ///   damaged (the record *stream* never errors: a bad record ends the
    ///   recovered prefix instead);
    /// * [`StoreError::Version`] — written by an incompatible build.
    pub fn recover(path: impl AsRef<Path>) -> Result<JournalRecovery, StoreError> {
        let path = path.as_ref().to_path_buf();
        let buf = std::fs::read(&path)?;
        if buf.len() < JOURNAL_HEADER_LEN {
            return Err(StoreError::Format(format!(
                "journal header: file is {} bytes, need at least {JOURNAL_HEADER_LEN}",
                buf.len()
            )));
        }
        if buf[..8] != JOURNAL_MAGIC {
            return Err(StoreError::Format(
                "not a regcluster journal (bad magic)".into(),
            ));
        }
        let mut h = ByteReader::new(&buf[8..JOURNAL_HEADER_LEN], "journal header");
        let version = h.u32()?;
        if version != JOURNAL_VERSION {
            return Err(StoreError::Version {
                found: version,
                supported: JOURNAL_VERSION,
            });
        }
        let reserved = h.u32()?;
        if reserved != 0 {
            return Err(StoreError::Format(format!(
                "journal header: reserved field is {reserved:#x}, expected zero"
            )));
        }

        let mut records = Vec::new();
        let mut pos = JOURNAL_HEADER_LEN;
        loop {
            let rest = &buf[pos..];
            if rest.len() < FRAME_LEN {
                break; // empty or torn frame prefix
            }
            let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
            if len > MAX_RECORD || rest.len() - FRAME_LEN < len {
                break; // corrupt length or truncated payload
            }
            let checksum = u64::from_le_bytes(rest[4..12].try_into().unwrap());
            let payload = &rest[FRAME_LEN..FRAME_LEN + len];
            if Fnv64::hash(payload) != checksum {
                break; // torn or bit-flipped payload
            }
            let Ok(record) = decode_record(payload) else {
                break; // checksum-valid but structurally foreign
            };
            records.push(record);
            pos += FRAME_LEN + len;
        }

        let truncated_bytes = (buf.len() - pos) as u64;
        if truncated_bytes > 0 {
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(pos as u64)?;
            f.sync_all()?;
        }
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(JournalRecovery {
            journal: Journal { file, path },
            records,
            truncated_bytes,
        })
    }

    /// Appends one record durably: the frame is written in a single
    /// `write_all` and fsynced before returning, so `Ok` means the record
    /// survives a crash. The `cluster::journal_append` failpoint fires
    /// before any bytes are written.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the write or fsync fails; the record may
    /// then be torn on disk, which the next [`recover`](Journal::recover)
    /// truncates away.
    pub fn append(&mut self, rec: &JournalRecord) -> Result<(), StoreError> {
        regcluster_failpoint::io("cluster::journal_append")?;
        let payload = encode_record(rec);
        let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u64(&mut frame, Fnv64::hash(&payload));
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// The path this journal appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("regcluster-journal-{}-{name}", std::process::id()))
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::JobCreated {
                generation: 0,
                matrix_fingerprint: 0xfeed_f00d,
                params_json: r#"{"min_genes":4}"#.into(),
                n_roots: 12,
                n_leases: 6,
            },
            JournalRecord::LeaseGranted {
                lease: 0,
                epoch: 1,
                worker: "w1".into(),
            },
            JournalRecord::LeaseRenewed { lease: 0, epoch: 1 },
            JournalRecord::LeaseExpired { lease: 0, epoch: 1 },
            JournalRecord::LeaseGranted {
                lease: 0,
                epoch: 2,
                worker: "w2".into(),
            },
            JournalRecord::ShardStaged { lease: 0, epoch: 2 },
            JournalRecord::Published { generation: 0 },
        ]
    }

    #[test]
    fn append_and_recover_round_trips() {
        let path = tmp("roundtrip.rcj");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        for rec in sample_records() {
            j.append(&rec).unwrap();
        }
        drop(j);
        let rec = Journal::recover(&path).unwrap();
        assert_eq!(rec.records, sample_records());
        assert_eq!(rec.truncated_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_file_stays_appendable() {
        let path = tmp("torn.rcj");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        for rec in &sample_records()[..3] {
            j.append(rec).unwrap();
        }
        drop(j);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append: half a frame at the tail.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[9, 0, 0, 0, 1, 2, 3]);
        std::fs::write(&path, &bytes).unwrap();

        let rec = Journal::recover(&path).unwrap();
        assert_eq!(rec.records, sample_records()[..3]);
        assert_eq!(rec.truncated_bytes, 7);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);

        // The recovered journal accepts further appends cleanly.
        let mut j = rec.journal;
        j.append(&sample_records()[3]).unwrap();
        drop(j);
        let rec = Journal::recover(&path).unwrap();
        assert_eq!(rec.records, sample_records()[..4]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_and_truncated_headers_are_typed_errors() {
        let path = tmp("header.rcj");
        std::fs::write(&path, b"short").unwrap();
        assert!(matches!(
            Journal::recover(&path),
            Err(StoreError::Format(_))
        ));
        std::fs::write(&path, b"NOTAJRNL\0\0\0\0\0\0\0\0").unwrap();
        assert!(matches!(
            Journal::recover(&path),
            Err(StoreError::Format(_))
        ));
        let mut future = Vec::new();
        future.extend_from_slice(&JOURNAL_MAGIC);
        put_u32(&mut future, JOURNAL_VERSION + 1);
        put_u32(&mut future, 0);
        std::fs::write(&path, &future).unwrap();
        assert!(matches!(
            Journal::recover(&path),
            Err(StoreError::Version { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_overwrites_a_previous_journal() {
        let path = tmp("overwrite.rcj");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        j.append(&sample_records()[0]).unwrap();
        drop(j);
        let j = Journal::create(&path).unwrap();
        drop(j);
        let rec = Journal::recover(&path).unwrap();
        assert!(rec.records.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
