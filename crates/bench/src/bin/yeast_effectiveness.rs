//! §5.2 — effectiveness on the (simulated) yeast benchmark, covering the
//! paper's headline run, Figure 8 and Table 2.
//!
//! The paper runs the 2884 × 17 Tavazoie/Church yeast matrix with
//! `MinG = 20`, `MinC = 6`, `γ = 0.05`, `ε = 1.0` and reports: 21
//! bi-reg-clusters in 2.5 s, pairwise cell overlap 0–85%, three showcase
//! non-overlapping 21-gene × 6-condition clusters with both p- and
//! n-members and frequent profile crossovers (Figure 8), and extremely low
//! GO-term enrichment p-values for those clusters (Table 2).
//!
//! The real matrix and the online GO Term Finder are unavailable offline
//! (substitutions S1/S2 in DESIGN.md), so this binary runs the identical
//! pipeline on the structured simulated dataset of
//! `regcluster_datagen::yeast_like`, which plants co-regulation modules with
//! the same statistical signature plus a synthetic GO annotation database.
//! Expect the same *shape* of results: ~20 clusters in seconds, a wide
//! overlap range, mixed-orientation showcase clusters, and vanishing
//! enrichment p-values.

use regcluster_bench::plot::{line_chart, Series};
use regcluster_bench::{time, write_json, write_text};
use regcluster_core::{mine, MiningParams, RegCluster};
use regcluster_datagen::{yeast_like, YeastConfig};
use regcluster_eval::{enrich, overlap, report, top_terms_by_category};
use serde::Serialize;

#[derive(Serialize)]
struct YeastOutput {
    n_genes: usize,
    n_conds: usize,
    params: MiningParams,
    runtime_s: f64,
    n_clusters: usize,
    overlap: overlap::OverlapStats,
    showcase: Vec<ShowcaseCluster>,
}

#[derive(Serialize)]
struct ShowcaseCluster {
    chain: Vec<usize>,
    n_p_members: usize,
    n_n_members: usize,
    top_go_terms: Vec<(String, String, f64)>, // (category, term, p-value)
}

fn main() {
    let cfg = YeastConfig::default();
    println!(
        "simulated yeast benchmark ({} genes × {} conditions)",
        cfg.n_genes, cfg.n_conds
    );
    let data = yeast_like(&cfg).expect("default yeast config is feasible");

    // The paper's §5.2 parameters.
    let params = MiningParams::new(20, 6, 0.05, 1.0).expect("paper parameters are valid");
    let (clusters, secs) = time(|| mine(&data.matrix, &params).expect("mining succeeds"));
    println!(
        "mined {} bi-reg-clusters in {:.2}s (paper: 21 clusters in 2.5s on 2006 hardware)",
        clusters.len(),
        secs
    );
    let stats = overlap::overlap_stats(&clusters);
    println!("{}", report::overlap_summary(&clusters));
    println!("(paper: overlap generally ranges from 0% to 85%)");

    // Figure 8: three non-overlapping showcase clusters with profiles.
    let showcase: Vec<&RegCluster> = overlap::select_disjoint(&clusters, 3);
    println!("\nshowcase clusters (Figure 8):");
    let mut go_rows = Vec::new();
    let mut showcase_out = Vec::new();
    for (i, c) in showcase.iter().enumerate() {
        println!(
            "  cluster {i}: {} genes ({} p-members, {} n-members) × {} conditions, chain {}",
            c.n_genes(),
            c.p_members.len(),
            c.n_members.len(),
            c.n_conditions(),
            c.regulation_chain()
                .display_with(data.matrix.condition_names()),
        );
        write_text(
            &format!("fig8_cluster{i}.csv"),
            &report::profile_csv(&data.matrix, c),
        );
        // Figure 8 proper: member profiles in chain order, p solid / n dashed.
        let series: Vec<Series> = c
            .p_members
            .iter()
            .map(|&g| (g, false))
            .chain(c.n_members.iter().map(|&g| (g, true)))
            .map(|(g, dashed)| {
                let pts: Vec<(f64, f64)> = c
                    .chain
                    .iter()
                    .enumerate()
                    .map(|(j, &cond)| (j as f64, data.matrix.value(g, cond)))
                    .collect();
                let label = format!(
                    "{}{}",
                    data.matrix.gene_name(g),
                    if dashed { " (n)" } else { "" }
                );
                if dashed {
                    Series::dashed(label, pts)
                } else {
                    Series::solid(label, pts)
                }
            })
            .collect();
        write_text(
            &format!("fig8_cluster{i}.svg"),
            &line_chart(
                &format!(
                    "Figure 8: bi-reg-cluster {i} ({} p + {} n members)",
                    c.p_members.len(),
                    c.n_members.len()
                ),
                "chain position",
                "expression level",
                &series,
            ),
        );

        // Table 2: top GO term per category.
        let enrichments = enrich(&data.go, &c.genes());
        let tops: Vec<_> = top_terms_by_category(&enrichments)
            .into_iter()
            .cloned()
            .collect();
        go_rows.push((format!("cluster {i}"), tops.clone()));
        showcase_out.push(ShowcaseCluster {
            chain: c.chain.clone(),
            n_p_members: c.p_members.len(),
            n_n_members: c.n_members.len(),
            top_go_terms: tops
                .iter()
                .map(|e| (e.category.to_string(), e.term_name.clone(), e.p_value))
                .collect(),
        });
    }

    println!("\nTop GO terms of the showcase clusters (Table 2):");
    print!("{}", report::go_table(&go_rows));

    write_json(
        "yeast_effectiveness.json",
        &YeastOutput {
            n_genes: cfg.n_genes,
            n_conds: cfg.n_conds,
            params,
            runtime_s: secs,
            n_clusters: clusters.len(),
            overlap: stats,
            showcase: showcase_out,
        },
    );
}
