use regcluster_matrix::{CondId, GeneId};
use serde::{Deserialize, Serialize};

/// A plain bicluster: a gene set × condition set, both sorted.
///
/// This is the common output currency of the baseline algorithms; unlike a
/// `RegCluster` (in `regcluster-core`) it carries no chain order or
/// orientation information (the baselines' models have none).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bicluster {
    /// Member genes, sorted ascending.
    pub genes: Vec<GeneId>,
    /// Member conditions, sorted ascending.
    pub conds: Vec<CondId>,
}

impl Bicluster {
    /// Builds a bicluster, normalizing (sorting + deduplicating) both sets.
    pub fn new(mut genes: Vec<GeneId>, mut conds: Vec<CondId>) -> Self {
        genes.sort_unstable();
        genes.dedup();
        conds.sort_unstable();
        conds.dedup();
        Self { genes, conds }
    }

    /// Number of member genes.
    pub fn n_genes(&self) -> usize {
        self.genes.len()
    }

    /// Number of member conditions.
    pub fn n_conds(&self) -> usize {
        self.conds.len()
    }

    /// True when both sets of `self` are subsets of `other`'s.
    pub fn is_contained_in(&self, other: &Bicluster) -> bool {
        self.genes
            .iter()
            .all(|g| other.genes.binary_search(g).is_ok())
            && self
                .conds
                .iter()
                .all(|c| other.conds.binary_search(c).is_ok())
    }
}

/// The outcome of a cancellation-aware baseline run: the (still verified,
/// still maximal) clusters found so far, plus whether the search was cut
/// short by its [`MineControl`](regcluster_core::MineControl).
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRun {
    /// The clusters found before the stop. Every one satisfies the
    /// algorithm's model definition; on a truncated run the set is merely
    /// incomplete, never invalid.
    pub clusters: Vec<Bicluster>,
    /// The run was stopped by cancellation or a deadline before the search
    /// space was exhausted.
    pub truncated: bool,
}

/// Drops every bicluster contained in another one (keeping the first of
/// exact duplicates), preserving order.
///
/// This is the dedup/maximality filter every baseline applies before
/// returning — the "never over-report" half of the crate contract. Public
/// so engine adapters can re-apply it after merging multiple runs.
pub fn retain_maximal(mut clusters: Vec<Bicluster>) -> Vec<Bicluster> {
    let mut keep = vec![true; clusters.len()];
    for i in 0..clusters.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..clusters.len() {
            if i == j || !keep[j] {
                continue;
            }
            if clusters[i] == clusters[j] {
                if i < j {
                    keep[j] = false;
                }
            } else if clusters[j].is_contained_in(&clusters[i]) {
                keep[j] = false;
            }
        }
    }
    let mut idx = 0;
    clusters.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes() {
        let b = Bicluster::new(vec![3, 1, 3], vec![2, 0, 2]);
        assert_eq!(b.genes, vec![1, 3]);
        assert_eq!(b.conds, vec![0, 2]);
        assert_eq!(b.n_genes(), 2);
        assert_eq!(b.n_conds(), 2);
    }

    #[test]
    fn containment() {
        let big = Bicluster::new(vec![0, 1, 2], vec![0, 1]);
        let small = Bicluster::new(vec![0, 2], vec![1]);
        assert!(small.is_contained_in(&big));
        assert!(!big.is_contained_in(&small));
        assert!(big.is_contained_in(&big));
    }

    #[test]
    fn retain_maximal_removes_contained_and_duplicates() {
        let a = Bicluster::new(vec![0, 1, 2], vec![0, 1]);
        let b = Bicluster::new(vec![0, 1], vec![0, 1]); // contained in a
        let c = Bicluster::new(vec![5, 6], vec![2]); // independent
        let d = a.clone(); // duplicate
        let out = retain_maximal(vec![a.clone(), b, c.clone(), d]);
        assert_eq!(out, vec![a, c]);
    }
}
