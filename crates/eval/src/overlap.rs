//! Pairwise cluster-overlap statistics.
//!
//! §5.2 of the paper reports that "the percentage of overlapping cells of a
//! bi-reg-cluster with another one generally ranges from 0% to 85%" on the
//! yeast benchmark (no splitting or merging is performed). This module
//! computes the same statistic for a set of mined clusters.

use regcluster_core::RegCluster;
use serde::{Deserialize, Serialize};

/// Percentage (0–100) of `a`'s cells that are also covered by `b`.
pub fn overlap_percent(a: &RegCluster, b: &RegCluster) -> f64 {
    let cells_a = a.n_cells();
    if cells_a == 0 {
        return 0.0;
    }
    100.0 * a.cell_overlap(b) as f64 / cells_a as f64
}

/// Summary of each cluster's *maximum* overlap with any other cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapStats {
    /// Number of clusters summarized.
    pub n_clusters: usize,
    /// Smallest per-cluster maximum overlap (percent).
    pub min_percent: f64,
    /// Largest per-cluster maximum overlap (percent).
    pub max_percent: f64,
    /// Mean per-cluster maximum overlap (percent).
    pub mean_percent: f64,
    /// Number of clusters that share no cell with any other cluster.
    pub n_disjoint: usize,
}

/// Computes per-cluster maximum overlap statistics. With fewer than two
/// clusters all percentages are zero.
pub fn overlap_stats(clusters: &[RegCluster]) -> OverlapStats {
    let n = clusters.len();
    if n < 2 {
        return OverlapStats {
            n_clusters: n,
            min_percent: 0.0,
            max_percent: 0.0,
            mean_percent: 0.0,
            n_disjoint: n,
        };
    }
    let mut maxima = Vec::with_capacity(n);
    for (i, a) in clusters.iter().enumerate() {
        let best = clusters
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, b)| overlap_percent(a, b))
            .fold(0.0f64, f64::max);
        maxima.push(best);
    }
    let min = maxima.iter().copied().fold(f64::INFINITY, f64::min);
    let max = maxima.iter().copied().fold(0.0f64, f64::max);
    let mean = maxima.iter().sum::<f64>() / n as f64;
    let disjoint = maxima.iter().filter(|&&m| m == 0.0).count();
    OverlapStats {
        n_clusters: n,
        min_percent: min,
        max_percent: max,
        mean_percent: mean,
        n_disjoint: disjoint,
    }
}

/// Greedily selects up to `k` mutually non-overlapping clusters (largest
/// first), the way the paper picks its three showcase bi-reg-clusters for
/// Figure 8.
pub fn select_disjoint(clusters: &[RegCluster], k: usize) -> Vec<&RegCluster> {
    let mut order: Vec<&RegCluster> = clusters.iter().collect();
    order.sort_by_key(|c| std::cmp::Reverse(c.n_cells()));
    let mut picked: Vec<&RegCluster> = Vec::new();
    for c in order {
        if picked.len() >= k {
            break;
        }
        if picked.iter().all(|p| c.cell_overlap(p) == 0) {
            picked.push(c);
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(chain: Vec<usize>, p: Vec<usize>, n: Vec<usize>) -> RegCluster {
        RegCluster {
            chain,
            p_members: p,
            n_members: n,
        }
    }

    #[test]
    fn percent_of_shared_cells() {
        let a = cluster(vec![0, 1], vec![0, 1], vec![]); // 4 cells
        let b = cluster(vec![1, 2], vec![1, 2], vec![]); // 4 cells
                                                         // Shared: gene 1 × cond 1 = 1 cell → 25% of a.
        assert!((overlap_percent(&a, &b) - 25.0).abs() < 1e-12);
        assert!((overlap_percent(&b, &a) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn stats_across_three_clusters() {
        let a = cluster(vec![0, 1], vec![0, 1], vec![]);
        let b = cluster(vec![1, 2], vec![1, 2], vec![]);
        let c = cluster(vec![5, 6], vec![7, 8], vec![]); // disjoint
        let s = overlap_stats(&[a, b, c]);
        assert_eq!(s.n_clusters, 3);
        assert_eq!(s.min_percent, 0.0);
        assert!((s.max_percent - 25.0).abs() < 1e-12);
        assert_eq!(s.n_disjoint, 1);
    }

    #[test]
    fn stats_degenerate_cases() {
        assert_eq!(overlap_stats(&[]).n_clusters, 0);
        let a = cluster(vec![0], vec![0], vec![]);
        let s = overlap_stats(&[a]);
        assert_eq!(s.n_clusters, 1);
        assert_eq!(s.n_disjoint, 1);
    }

    #[test]
    fn select_disjoint_prefers_large() {
        let big = cluster(vec![0, 1, 2], vec![0, 1, 2], vec![3]); // 12 cells
        let overlapping = cluster(vec![2, 3], vec![2, 3], vec![]); // shares (2,2)
        let small = cluster(vec![8, 9], vec![8], vec![9]); // 4 cells, disjoint
        let clusters = vec![overlapping.clone(), small.clone(), big.clone()];
        let picked = select_disjoint(&clusters, 3);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0], &big);
        assert_eq!(picked[1], &small);
        let one = select_disjoint(&clusters, 1);
        assert_eq!(one.len(), 1);
    }
}
