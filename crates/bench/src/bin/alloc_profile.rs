//! Allocation profile of the mining hot path: allocations-per-node and
//! ns-per-node for the running example and seeded synthetic workloads.
//!
//! A counting global allocator tallies every allocation in the process, so
//! runs are taken back-to-back on one thread and the per-workload delta is
//! attributed to the mining call between the samples. The second (warm)
//! sequential run reuses a [`MineWorkspace`]-style warmed state where the
//! API allows, which is what the steady-state row reports.
//!
//! ```sh
//! cargo run --release -p regcluster-bench --bin alloc_profile
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use regcluster_core::{MineObserver, MineWorkspace, Miner, MiningParams, MiningStats};
use regcluster_datagen::{generate, running_example, PatternKind, SyntheticConfig};
use regcluster_matrix::ExpressionMatrix;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn snapshot() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

fn profile(label: &str, matrix: &ExpressionMatrix, params: &MiningParams) {
    let miner = Miner::new(matrix, params).expect("valid params");
    let mut workspace = MineWorkspace::new();
    let run = |workspace: &mut MineWorkspace, observer: &mut dyn MineObserver| {
        let (a0, b0) = snapshot();
        let t = Instant::now();
        let clusters = miner.mine_all_with(workspace, observer);
        let elapsed = t.elapsed();
        let (a1, b1) = snapshot();
        (clusters.len(), a1 - a0, b1 - b0, elapsed)
    };

    // Cold run: workspace buffers grow from empty.
    let mut stats = MiningStats::default();
    let (n_clusters, cold_allocs, cold_bytes, cold_t) = run(&mut workspace, &mut stats);
    let nodes = stats.nodes.max(1) as f64;
    // Warm runs: the workspace is at its high-water marks — the allocator's
    // steady state. Remaining allocations are per-emission only. Timing is
    // the best of five runs to shrug off scheduler noise; the allocation
    // counts are deterministic across warm runs.
    let mut warm_allocs = u64::MAX;
    let mut warm_bytes = u64::MAX;
    let mut warm_t = std::time::Duration::MAX;
    for _ in 0..5 {
        let mut stats2 = MiningStats::default();
        let (_, a, b, t) = run(&mut workspace, &mut stats2);
        warm_allocs = warm_allocs.min(a);
        warm_bytes = warm_bytes.min(b);
        warm_t = warm_t.min(t);
    }

    println!("workload: {label}");
    println!("  nodes = {}, clusters = {}", stats.nodes, n_clusters);
    println!(
        "  cold: {:.3} allocs/node, {:.1} bytes/node, {:.0} ns/node ({} allocs total)",
        cold_allocs as f64 / nodes,
        cold_bytes as f64 / nodes,
        cold_t.as_nanos() as f64 / nodes,
        cold_allocs
    );
    println!(
        "  warm: {:.3} allocs/node, {:.1} bytes/node, {:.0} ns/node ({} allocs total)",
        warm_allocs as f64 / nodes,
        warm_bytes as f64 / nodes,
        warm_t.as_nanos() as f64 / nodes,
        warm_allocs
    );
}

fn main() {
    let m = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).expect("valid");
    profile("running_example (3x10)", &m, &params);

    let cfg = SyntheticConfig {
        n_genes: 100,
        n_conds: 30,
        n_clusters: 6,
        avg_cluster_dims: 6,
        cluster_gene_frac: 0.06,
        neg_fraction: 0.3,
        plant_gamma: 0.15,
        pattern: PatternKind::ShiftScale,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed: 7,
    };
    let data = generate(&cfg).expect("feasible");
    let params = MiningParams::new(4, 4, 0.1, 0.05).expect("valid");
    profile("synthetic 100x30 (seed 7)", &data.matrix, &params);

    let cfg = SyntheticConfig {
        n_genes: 1500,
        ..SyntheticConfig::default()
    };
    let data = generate(&cfg).expect("feasible");
    let params = MiningParams::new(15, 6, 0.1, 0.01).expect("valid");
    profile("synthetic 1500x30 (paper defaults)", &data.matrix, &params);
}
