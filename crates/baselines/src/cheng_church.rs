//! Cheng & Church δ-biclustering (ISMB 2000).
//!
//! A bicluster `(I, J)` is scored by its **mean squared residue**
//!
//! ```text
//! H(I, J) = (1 / |I||J|) Σ_{i∈I, j∈J} (a_ij − a_iJ − a_Ij + a_IJ)²,
//! ```
//!
//! where `a_iJ`, `a_Ij`, `a_IJ` are row, column and overall means. A
//! δ-bicluster has `H ≤ δ`. The algorithm repeatedly extracts one bicluster
//! from the working matrix:
//!
//! 1. **multiple node deletion** — while `H > δ`, drop every row/column
//!    whose mean residue exceeds `α · H` (only applied while the dimension
//!    is large, per the original paper);
//! 2. **single node deletion** — while `H > δ`, drop the single row or
//!    column with the largest mean residue;
//! 3. **node addition** — add back every column, row, and **inverted row**
//!    (a row whose negation fits; Cheng & Church's device for co-regulated
//!    but anti-correlated genes) whose mean residue is `≤ H`;
//! 4. **masking** — replace the discovered cells with random values and
//!    repeat for the next bicluster.
//!
//! The paper cites this algorithm as \[6\] and contrasts reg-cluster against
//! its additive-model coherence, which cannot express scaling.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use regcluster_matrix::ExpressionMatrix;

use crate::Bicluster;

/// Parameters of the Cheng–Church extraction loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ChengChurchParams {
    /// Maximum acceptable mean squared residue `δ`.
    pub delta: f64,
    /// Multiple-deletion aggressiveness `α > 1`.
    pub alpha: f64,
    /// Number of biclusters to extract.
    pub n_clusters: usize,
    /// Multiple node deletion is applied while the dimension exceeds this
    /// (100 rows / 100 columns in the original paper).
    pub multiple_deletion_threshold: usize,
    /// Range of the masking values (should match the data range).
    pub mask_range: (f64, f64),
    /// Seed for the masking RNG.
    pub seed: u64,
}

impl Default for ChengChurchParams {
    fn default() -> Self {
        Self {
            delta: 0.5,
            alpha: 1.2,
            n_clusters: 10,
            multiple_deletion_threshold: 100,
            mask_range: (0.0, 10.0),
            seed: 0,
        }
    }
}

/// A δ-bicluster with its inversion flags and final score.
#[derive(Debug, Clone, PartialEq)]
pub struct CcBicluster {
    /// The gene × condition sets.
    pub bicluster: Bicluster,
    /// Parallel to `bicluster.genes`: `true` for rows added in inverted
    /// (anti-correlated) form.
    pub inverted: Vec<bool>,
    /// Mean squared residue of the final bicluster.
    pub msr: f64,
}

/// Working view: row/column index lists into the (masked) matrix.
struct View {
    rows: Vec<usize>,
    /// Parallel to `rows`: whether the row participates inverted.
    row_sign: Vec<f64>,
    cols: Vec<usize>,
}

/// Cell accessor honoring inversion: an inverted row contributes `−a_ij`.
#[inline]
fn cell(data: &[f64], n_cols: usize, row: usize, sign: f64, col: usize) -> f64 {
    sign * data[row * n_cols + col]
}

/// Mean squared residue plus per-row and per-column mean residues.
fn residues(data: &[f64], n_cols: usize, v: &View) -> (f64, Vec<f64>, Vec<f64>) {
    let nr = v.rows.len();
    let nc = v.cols.len();
    let mut row_mean = vec![0.0f64; nr];
    let mut col_mean = vec![0.0f64; nc];
    let mut total = 0.0f64;
    for (ri, (&r, &s)) in v.rows.iter().zip(&v.row_sign).enumerate() {
        for (ci, &c) in v.cols.iter().enumerate() {
            let x = cell(data, n_cols, r, s, c);
            row_mean[ri] += x;
            col_mean[ci] += x;
            total += x;
        }
    }
    for m in &mut row_mean {
        *m /= nc as f64;
    }
    for m in &mut col_mean {
        *m /= nr as f64;
    }
    let overall = total / (nr * nc) as f64;

    let mut h = 0.0f64;
    let mut row_res = vec![0.0f64; nr];
    let mut col_res = vec![0.0f64; nc];
    for (ri, (&r, &s)) in v.rows.iter().zip(&v.row_sign).enumerate() {
        for (ci, &c) in v.cols.iter().enumerate() {
            let resid = cell(data, n_cols, r, s, c) - row_mean[ri] - col_mean[ci] + overall;
            let sq = resid * resid;
            h += sq;
            row_res[ri] += sq;
            col_res[ci] += sq;
        }
    }
    h /= (nr * nc) as f64;
    for m in &mut row_res {
        *m /= nc as f64;
    }
    for m in &mut col_res {
        *m /= nr as f64;
    }
    (h, row_res, col_res)
}

/// Mean residue of an external row against the bicluster's column structure;
/// `sign` applies the inversion test.
fn row_residue_against(
    data: &[f64],
    n_cols: usize,
    v: &View,
    row: usize,
    sign: f64,
    col_mean: &[f64],
    overall: f64,
) -> f64 {
    let nc = v.cols.len();
    let mut mean = 0.0;
    for &c in &v.cols {
        mean += cell(data, n_cols, row, sign, c);
    }
    mean /= nc as f64;
    let mut acc = 0.0;
    for (ci, &c) in v.cols.iter().enumerate() {
        let r = cell(data, n_cols, row, sign, c) - mean - col_mean[ci] + overall;
        acc += r * r;
    }
    acc / nc as f64
}

/// Means needed by the addition phase.
fn means(data: &[f64], n_cols: usize, v: &View) -> (Vec<f64>, Vec<f64>, f64) {
    let nr = v.rows.len();
    let nc = v.cols.len();
    let mut row_mean = vec![0.0f64; nr];
    let mut col_mean = vec![0.0f64; nc];
    let mut total = 0.0;
    for (ri, (&r, &s)) in v.rows.iter().zip(&v.row_sign).enumerate() {
        for (ci, &c) in v.cols.iter().enumerate() {
            let x = cell(data, n_cols, r, s, c);
            row_mean[ri] += x;
            col_mean[ci] += x;
            total += x;
        }
    }
    for m in &mut row_mean {
        *m /= nc as f64;
    }
    for m in &mut col_mean {
        *m /= nr as f64;
    }
    (row_mean, col_mean, total / (nr * nc) as f64)
}

/// Extracts `n_clusters` δ-biclusters.
///
/// Returns fewer clusters when extraction degenerates (a bicluster shrinks
/// to a single row or column).
pub fn cheng_church(matrix: &ExpressionMatrix, params: &ChengChurchParams) -> Vec<CcBicluster> {
    assert!(params.delta >= 0.0, "delta must be ≥ 0");
    assert!(params.alpha > 1.0, "alpha must be > 1");
    let n_rows = matrix.n_genes();
    let n_cols = matrix.n_conditions();
    let mut data: Vec<f64> = matrix.flat_values().to_vec();
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
    let mut out = Vec::new();

    for _ in 0..params.n_clusters {
        let mut v = View {
            rows: (0..n_rows).collect(),
            row_sign: vec![1.0; n_rows],
            cols: (0..n_cols).collect(),
        };

        // Phase 1: multiple node deletion.
        loop {
            if v.rows.len() <= 1 || v.cols.len() <= 1 {
                break;
            }
            let (h, row_res, col_res) = residues(&data, n_cols, &v);
            if h <= params.delta {
                break;
            }
            let mut changed = false;
            if v.rows.len() > params.multiple_deletion_threshold {
                let cut = params.alpha * h;
                let before = v.rows.len();
                let keep: Vec<bool> = row_res.iter().map(|&r| r <= cut).collect();
                filter_parallel(&mut v.rows, &mut v.row_sign, &keep);
                changed |= v.rows.len() != before;
            }
            if v.cols.len() > params.multiple_deletion_threshold && v.rows.len() > 1 {
                let (h2, _, col_res2) = residues(&data, n_cols, &v);
                if h2 > params.delta {
                    let cut = params.alpha * h2;
                    let before = v.cols.len();
                    v.cols = v
                        .cols
                        .iter()
                        .zip(&col_res2)
                        .filter(|&(_, &r)| r <= cut)
                        .map(|(&c, _)| c)
                        .collect();
                    changed |= v.cols.len() != before;
                }
            }
            let _ = col_res;
            if !changed {
                break;
            }
        }

        // Phase 2: single node deletion.
        loop {
            if v.rows.len() <= 1 || v.cols.len() <= 1 {
                break;
            }
            let (h, row_res, col_res) = residues(&data, n_cols, &v);
            if h <= params.delta {
                break;
            }
            let (ri, rmax) = argmax(&row_res);
            let (ci, cmax) = argmax(&col_res);
            if rmax >= cmax {
                v.rows.remove(ri);
                v.row_sign.remove(ri);
            } else {
                v.cols.remove(ci);
            }
        }

        // Phase 3: node addition (columns, rows, inverted rows).
        loop {
            let mut changed = false;
            // Column addition.
            {
                let (h, _, _) = residues(&data, n_cols, &v);
                let (row_mean, _, overall) = means(&data, n_cols, &v);
                let nr = v.rows.len();
                let in_cols: std::collections::HashSet<usize> = v.cols.iter().copied().collect();
                let mut added = Vec::new();
                for c in 0..n_cols {
                    if in_cols.contains(&c) {
                        continue;
                    }
                    let mut cmean = 0.0;
                    for (&r, &s) in v.rows.iter().zip(&v.row_sign) {
                        cmean += cell(&data, n_cols, r, s, c);
                    }
                    cmean /= nr as f64;
                    let mut acc = 0.0;
                    for (ri, (&r, &s)) in v.rows.iter().zip(&v.row_sign).enumerate() {
                        let resid = cell(&data, n_cols, r, s, c) - row_mean[ri] - cmean + overall;
                        acc += resid * resid;
                    }
                    if acc / nr as f64 <= h {
                        added.push(c);
                    }
                }
                if !added.is_empty() {
                    v.cols.extend(added);
                    v.cols.sort_unstable();
                    changed = true;
                }
            }
            // Row addition (plain and inverted).
            {
                let (h, _, _) = residues(&data, n_cols, &v);
                let (_, col_mean, overall) = means(&data, n_cols, &v);
                let in_rows: std::collections::HashSet<usize> = v.rows.iter().copied().collect();
                let mut added = Vec::new();
                for r in 0..n_rows {
                    if in_rows.contains(&r) {
                        continue;
                    }
                    if row_residue_against(&data, n_cols, &v, r, 1.0, &col_mean, overall) <= h {
                        added.push((r, 1.0));
                    } else if row_residue_against(&data, n_cols, &v, r, -1.0, &col_mean, overall)
                        <= h
                    {
                        added.push((r, -1.0));
                    }
                }
                if !added.is_empty() {
                    for (r, s) in added {
                        v.rows.push(r);
                        v.row_sign.push(s);
                    }
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        if v.rows.len() <= 1 || v.cols.len() <= 1 {
            break; // degenerate; no more signal to extract
        }
        let (h, _, _) = residues(&data, n_cols, &v);

        // Sort members and record.
        let mut pairs: Vec<(usize, f64)> = v
            .rows
            .iter()
            .copied()
            .zip(v.row_sign.iter().copied())
            .collect();
        pairs.sort_by_key(|&(r, _)| r);
        let genes: Vec<usize> = pairs.iter().map(|&(r, _)| r).collect();
        let inverted: Vec<bool> = pairs.iter().map(|&(_, s)| s < 0.0).collect();
        let mut conds = v.cols.clone();
        conds.sort_unstable();
        let bicluster = Bicluster {
            genes: genes.clone(),
            conds: conds.clone(),
        };
        // Masked cells can (on small matrices) accidentally re-form an
        // already-extracted block; report each block once.
        if !out.iter().any(|c: &CcBicluster| c.bicluster == bicluster) {
            out.push(CcBicluster {
                bicluster,
                inverted,
                msr: h,
            });
        }

        // Phase 4: mask with random values.
        for &r in &genes {
            for &c in &conds {
                data[r * n_cols + c] = rng.gen_range(params.mask_range.0..params.mask_range.1);
            }
        }
    }
    out
}

fn filter_parallel(rows: &mut Vec<usize>, signs: &mut Vec<f64>, keep: &[bool]) {
    let mut i = 0;
    rows.retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
    let mut i = 0;
    signs.retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
}

fn argmax(values: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, &v) in values.iter().enumerate() {
        if v > best.1 {
            best = (i, v);
        }
    }
    best
}

/// Mean squared residue of an explicit bicluster of `matrix` (no
/// inversions) — exposed for tests and for scoring external cluster sets.
pub fn mean_squared_residue(matrix: &ExpressionMatrix, bc: &Bicluster) -> f64 {
    let v = View {
        rows: bc.genes.clone(),
        row_sign: vec![1.0; bc.genes.len()],
        cols: bc.conds.clone(),
    };
    residues(matrix.flat_values(), matrix.n_conditions(), &v).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: Vec<Vec<f64>>) -> ExpressionMatrix {
        let genes = (0..rows.len()).map(|i| format!("g{i}")).collect();
        let conds = (0..rows[0].len()).map(|i| format!("c{i}")).collect();
        ExpressionMatrix::from_rows(genes, conds, rows).unwrap()
    }

    #[test]
    fn msr_zero_for_additive_model() {
        // a_ij = r_i + c_j has residue exactly 0.
        let m = matrix(vec![
            vec![1.0, 2.0, 4.0],
            vec![3.0, 4.0, 6.0],
            vec![0.0, 1.0, 3.0],
        ]);
        let bc = Bicluster::new(vec![0, 1, 2], vec![0, 1, 2]);
        assert!(mean_squared_residue(&m, &bc) < 1e-12);
    }

    #[test]
    fn msr_positive_for_multiplicative_model() {
        // A scaling pattern is NOT additive; MSR must be clearly positive.
        let m = matrix(vec![
            vec![1.0, 2.0, 4.0],
            vec![2.0, 4.0, 8.0],
            vec![4.0, 8.0, 16.0],
        ]);
        let bc = Bicluster::new(vec![0, 1, 2], vec![0, 1, 2]);
        assert!(mean_squared_residue(&m, &bc) > 0.1);
    }

    #[test]
    fn finds_planted_additive_bicluster() {
        // 6 structured genes (rows = base + row offset) + 6 noise genes.
        let base = [0.0f64, 5.0, 2.0, 8.0, 4.0];
        let mut rows: Vec<Vec<f64>> = (0..6)
            .map(|i| base.iter().map(|&v| v + i as f64).collect())
            .collect();
        // Deterministic pseudo-noise rows.
        for i in 0..6 {
            rows.push(
                (0..5)
                    .map(|j| ((i * 37 + j * 101 + 13) % 97) as f64 / 9.7)
                    .collect(),
            );
        }
        let m = matrix(rows);
        let params = ChengChurchParams {
            delta: 0.05,
            alpha: 1.2,
            n_clusters: 1,
            multiple_deletion_threshold: 100,
            mask_range: (0.0, 10.0),
            seed: 1,
        };
        let found = cheng_church(&m, &params);
        assert_eq!(found.len(), 1);
        let bc = &found[0].bicluster;
        assert!(found[0].msr <= 0.05 + 1e-9);
        // All six structured genes must be present.
        for g in 0..6 {
            assert!(
                bc.genes.contains(&g),
                "gene {g} missing from {:?}",
                bc.genes
            );
        }
    }

    #[test]
    fn inverted_rows_are_added() {
        // 5 additive genes plus one exact mirror gene.
        let base = [0.0f64, 5.0, 2.0, 8.0, 4.0];
        let mut rows: Vec<Vec<f64>> = (0..5)
            .map(|i| base.iter().map(|&v| v + i as f64).collect())
            .collect();
        rows.push(base.iter().map(|&v| -v).collect());
        // Noise rows so deletion has something to remove.
        for i in 0..5 {
            rows.push(
                (0..5)
                    .map(|j| ((i * 53 + j * 71 + 7) % 89) as f64 / 8.9)
                    .collect(),
            );
        }
        let m = matrix(rows);
        let params = ChengChurchParams {
            delta: 0.05,
            n_clusters: 1,
            ..ChengChurchParams::default()
        };
        let found = cheng_church(&m, &params);
        assert_eq!(found.len(), 1);
        let cc = &found[0];
        let mirror_pos = cc.bicluster.genes.iter().position(|&g| g == 5);
        assert!(
            mirror_pos.is_some(),
            "mirror gene not included: {:?}",
            cc.bicluster.genes
        );
        assert!(
            cc.inverted[mirror_pos.unwrap()],
            "mirror gene must be flagged inverted"
        );
    }

    #[test]
    fn masking_lets_multiple_clusters_emerge() {
        // Two disjoint additive blocks on disjoint conditions.
        let mut rows = Vec::new();
        for i in 0..5 {
            let mut r = vec![0.0f64; 8];
            for (j, item) in r.iter_mut().enumerate().take(4) {
                *item = [0.0, 4.0, 1.0, 6.0][j] + i as f64;
            }
            for (j, item) in r.iter_mut().enumerate().skip(4) {
                *item = (((i * 31 + j * 17) % 23) as f64) / 2.3 + 20.0;
            }
            rows.push(r);
        }
        for i in 0..5 {
            let mut r = vec![0.0f64; 8];
            for (j, item) in r.iter_mut().enumerate().take(4) {
                *item = (((i * 41 + j * 29) % 19) as f64) / 1.9 + 20.0;
            }
            for (j, item) in r.iter_mut().enumerate().skip(4) {
                *item = [2.0, 7.0, 0.0, 5.0][j - 4] + (i as f64) * 1.5;
            }
            rows.push(r);
        }
        let m = matrix(rows);
        let params = ChengChurchParams {
            delta: 0.05,
            n_clusters: 2,
            mask_range: (0.0, 25.0),
            ..ChengChurchParams::default()
        };
        let found = cheng_church(&m, &params);
        assert_eq!(found.len(), 2);
        assert!(found[0].msr <= 0.05 + 1e-9);
        assert!(found[1].msr <= 0.05 + 1e-9);
        // The two clusters concentrate on different condition halves.
        let c0_low = found[0].bicluster.conds.iter().filter(|&&c| c < 4).count();
        let c1_low = found[1].bicluster.conds.iter().filter(|&&c| c < 4).count();
        assert_ne!(
            c0_low > 2,
            c1_low > 2,
            "clusters should use different condition halves"
        );
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let m = matrix(vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        let params = ChengChurchParams {
            alpha: 1.0,
            ..ChengChurchParams::default()
        };
        cheng_church(&m, &params);
    }
}
