//! Cross-crate integration: the paper's comparative claims as assertions.
//!
//! Each planted pattern family is mined by reg-cluster and by the baseline
//! that *should* own it; the claims of §1.1/§3.3 become testable
//! inequalities on recovery scores.

use regcluster::baselines::{
    microcluster, opsm, pcluster, scaling_pcluster, MicroClusterParams, OpsmParams, PClusterParams,
};
use regcluster::core::{mine, MiningParams};
use regcluster::datagen::{generate, PatternKind, SyntheticConfig};
use regcluster::eval::{recovery, ClusterShape};

fn dataset(pattern: PatternKind) -> (regcluster::datagen::SyntheticDataset, usize, usize) {
    let cfg = SyntheticConfig {
        n_genes: 300,
        n_conds: 15,
        n_clusters: 3,
        avg_cluster_dims: 5,
        cluster_gene_frac: 0.04,
        neg_fraction: if matches!(pattern, PatternKind::ShiftScale) {
            0.3
        } else {
            0.0
        },
        plant_gamma: 0.08,
        pattern,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed: 404,
    };
    let data = generate(&cfg).expect("feasible");
    let min_g = data.planted.iter().map(|p| p.n_genes()).min().unwrap();
    let min_c = data.planted.iter().map(|p| p.n_conditions()).min().unwrap();
    (data, min_g, min_c)
}

fn regcluster_shapes(
    data: &regcluster::datagen::SyntheticDataset,
    min_g: usize,
    min_c: usize,
) -> Vec<ClusterShape> {
    let params = MiningParams::new(min_g, min_c, 0.05, 0.02)
        .unwrap()
        .with_maximal_only();
    mine(&data.matrix, &params)
        .unwrap()
        .iter()
        .map(ClusterShape::from)
        .collect()
}

#[test]
fn regcluster_owns_shift_scale_and_pcluster_misses_it() {
    let (data, min_g, min_c) = dataset(PatternKind::ShiftScale);
    let truth: Vec<ClusterShape> = data.planted.iter().map(ClusterShape::from).collect();

    let ours = regcluster_shapes(&data, min_g, min_c);
    assert!(
        recovery(&truth, &ours) > 0.95,
        "reg-cluster must recover shift-scale clusters"
    );

    let pc = PClusterParams {
        delta: 0.15,
        min_genes: min_g,
        min_conds: min_c,
        ..Default::default()
    };
    let theirs: Vec<ClusterShape> = pcluster(&data.matrix, &pc)
        .iter()
        .map(|b| ClusterShape::new(b.genes.clone(), b.conds.clone()))
        .collect();
    assert!(
        recovery(&truth, &theirs) < 0.2,
        "pure-shifting pCluster cannot see shifting-and-scaling clusters"
    );

    let theirs: Vec<ClusterShape> = scaling_pcluster(&data.matrix, &pc)
        .unwrap()
        .iter()
        .map(|b| ClusterShape::new(b.genes.clone(), b.conds.clone()))
        .collect();
    assert!(
        recovery(&truth, &theirs) < 0.2,
        "pure-scaling miner cannot see shifting-and-scaling clusters"
    );
}

#[test]
fn pcluster_still_owns_pure_shifting_and_so_does_regcluster() {
    let (data, min_g, min_c) = dataset(PatternKind::ShiftOnly);
    let truth: Vec<ClusterShape> = data.planted.iter().map(ClusterShape::from).collect();

    let ours = regcluster_shapes(&data, min_g, min_c);
    assert!(
        recovery(&truth, &ours) > 0.95,
        "shifting is a special case of the reg-cluster model"
    );

    let pc = PClusterParams {
        delta: 0.1,
        min_genes: min_g,
        min_conds: min_c,
        ..Default::default()
    };
    let theirs: Vec<ClusterShape> = pcluster(&data.matrix, &pc)
        .iter()
        .map(|b| ClusterShape::new(b.genes.clone(), b.conds.clone()))
        .collect();
    assert!(
        recovery(&truth, &theirs) > 0.95,
        "pCluster must recover its own model"
    );
}

#[test]
fn scaling_miner_owns_pure_scaling_and_so_does_regcluster() {
    let (data, min_g, min_c) = dataset(PatternKind::ScaleOnly);
    let truth: Vec<ClusterShape> = data.planted.iter().map(ClusterShape::from).collect();

    let ours = regcluster_shapes(&data, min_g, min_c);
    assert!(
        recovery(&truth, &ours) > 0.95,
        "scaling is a special case of the reg-cluster model"
    );

    let pc = PClusterParams {
        delta: 0.05,
        min_genes: min_g,
        min_conds: min_c,
        ..Default::default()
    };
    let theirs: Vec<ClusterShape> = scaling_pcluster(&data.matrix, &pc)
        .unwrap()
        .iter()
        .map(|b| ClusterShape::new(b.genes.clone(), b.conds.clone()))
        .collect();
    assert!(
        recovery(&truth, &theirs) > 0.95,
        "log-space pCluster must recover scaling clusters"
    );

    // TriCluster's own 2D phase agrees with the log-space miner here.
    let mc = MicroClusterParams {
        epsilon: 0.05,
        min_genes: min_g,
        min_conds: min_c,
        max_clusters: 50,
        ..Default::default()
    };
    let theirs: Vec<ClusterShape> = microcluster(&data.matrix, &mc)
        .iter()
        .map(|b| ClusterShape::new(b.genes.clone(), b.conds.clone()))
        .collect();
    assert!(
        recovery(&truth, &theirs) > 0.95,
        "MicroCluster must recover pure scaling clusters"
    );
}

#[test]
fn microcluster_misses_shift_scale_like_the_other_pattern_miners() {
    let (data, min_g, min_c) = dataset(PatternKind::ShiftScale);
    let truth: Vec<ClusterShape> = data.planted.iter().map(ClusterShape::from).collect();
    let mc = MicroClusterParams {
        epsilon: 0.05,
        min_genes: min_g,
        min_conds: min_c,
        max_clusters: 50,
        ..Default::default()
    };
    let theirs: Vec<ClusterShape> = microcluster(&data.matrix, &mc)
        .iter()
        .map(|b| ClusterShape::new(b.genes.clone(), b.conds.clone()))
        .collect();
    assert!(
        recovery(&truth, &theirs) < 0.2,
        "a pure ratio band cannot hold shifting-and-scaling clusters"
    );
}

#[test]
fn opsm_accepts_tendencies_that_regcluster_rejects() {
    let (data, min_g, min_c) = dataset(PatternKind::Tendency);
    let truth: Vec<ClusterShape> = data.planted.iter().map(ClusterShape::from).collect();

    // reg-cluster with a tight ε refuses the incoherent clusters…
    let ours = regcluster_shapes(&data, min_g, min_c);
    assert!(
        recovery(&truth, &ours) < 0.1,
        "incoherent tendencies must not pass the coherence constraint"
    );

    // …while OPSM (no coherence constraint) finds order-sharing structure.
    let op = OpsmParams {
        size: min_c,
        beam_width: 200,
        min_genes: min_g,
        max_models: 10,
    };
    let theirs: Vec<ClusterShape> = opsm(&data.matrix, &op)
        .iter()
        .map(|b| ClusterShape::new(b.genes.clone(), b.conds.clone()))
        .collect();
    assert!(
        recovery(&truth, &theirs) > 0.2,
        "OPSM should pick up order-preserving structure regardless of coherence"
    );
}

#[test]
fn regcluster_with_loose_epsilon_also_accepts_tendencies() {
    // Sanity check on the model dial: with ε large enough, the coherence
    // constraint degenerates and tendencies become acceptable — reg-cluster
    // subsumes the tendency model as a limit case. Loose ε also lets
    // coincidental background genes into the windows, so the check is
    // containment (every planted cluster inside some found cluster), not an
    // exact match.
    let cfg = SyntheticConfig {
        n_genes: 120,
        n_conds: 12,
        n_clusters: 2,
        avg_cluster_dims: 5,
        cluster_gene_frac: 0.06,
        neg_fraction: 0.0,
        plant_gamma: 0.1,
        pattern: PatternKind::Tendency,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed: 405,
    };
    let data = generate(&cfg).expect("feasible");
    let min_g = data.planted.iter().map(|p| p.n_genes()).min().unwrap();
    let min_c = data.planted.iter().map(|p| p.n_conditions()).min().unwrap();
    let params = MiningParams::new(min_g, min_c, 0.05, 100.0).unwrap();
    let found = mine(&data.matrix, &params).unwrap();
    for planted in &data.planted {
        let conds = planted.conditions_sorted();
        let hit = found.iter().any(|c| {
            let genes = c.genes();
            planted.genes.iter().all(|g| genes.binary_search(g).is_ok())
                && conds.iter().all(|pc| c.chain.contains(pc))
        });
        assert!(
            hit,
            "tendency cluster not contained in any loose-ε reg-cluster"
        );
    }
}
