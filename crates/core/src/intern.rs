//! Interned duplicate-elimination keys for emitted clusters.
//!
//! Pruning (3)(b) of the paper needs to answer "was this exact
//! `(chain, genes)` cluster emitted before?" once per validated node. The
//! old implementation kept a `HashSet<(Vec<CondId>, Vec<GeneId>)>`, so every
//! *probe* — including probes for known duplicates — paid two heap
//! allocations just to build the lookup key. [`EmittedSet`] stores interned
//! keys instead: a 64-bit fingerprint indexes a bucket of `(offset, len)`
//! references into one flat grow-only key arena, and probes compare the
//! borrowed [`ClusterView`] against the arena directly. Duplicate probes
//! therefore allocate nothing; only a *fresh* insert appends to the arena
//! (amortized, and the fresh path materializes a [`RegCluster`] anyway).
//!
//! Fingerprint collisions are handled exactly: a bucket may hold several key
//! references, and membership is decided by element-wise comparison, never
//! by the hash alone (exercised by a forced-collision test below).

use std::collections::HashMap;

use regcluster_matrix::{CondId, GeneId};

use crate::cluster::RegCluster;

/// A borrowed, not-yet-materialized view of a validated cluster.
///
/// `p_members` and `n_members` are sorted by gene id; `genes` is their
/// merged sorted union. The view lives in per-worker scratch space — turning
/// it into an owned [`RegCluster`] (via [`ClusterView::to_cluster`]) happens
/// exactly once, on first emission.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ClusterView<'a> {
    /// The representative regulation chain.
    pub chain: &'a [CondId],
    /// Sorted positively co-regulated member genes.
    pub p_members: &'a [GeneId],
    /// Sorted negatively co-regulated member genes.
    pub n_members: &'a [GeneId],
    /// Merged sorted union of `p_members` and `n_members`.
    pub genes: &'a [GeneId],
}

impl ClusterView<'_> {
    /// Materializes the owned cluster. The single allocation site of the
    /// emission path.
    pub fn to_cluster(self) -> RegCluster {
        RegCluster {
            chain: self.chain.to_vec(),
            p_members: self.p_members.to_vec(),
            n_members: self.n_members.to_vec(),
        }
    }

    /// 64-bit fingerprint of the dedup identity `(chain, genes)`.
    ///
    /// Deterministic (no per-process seed) so engine shards agree with
    /// sequential runs; collisions are resolved exactly by [`EmittedSet`],
    /// so distribution quality only affects speed, not correctness.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0x51_7C_C1_B7_27_22_0A_95;
        h = mix(h, self.chain.len() as u64);
        for &c in self.chain {
            h = mix(h, c as u64);
        }
        for &g in self.genes {
            h = mix(h, g as u64);
        }
        h
    }
}

/// One round of a splitmix64-style permutation, good enough to spread
/// structured id sequences across buckets. Also the primitive behind
/// [`matrix_fingerprint`](crate::checkpoint::matrix_fingerprint).
#[inline]
pub(crate) fn mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 27)
}

/// Reference to one interned key inside the arena: `[chain | genes]` with
/// the chain length carried alongside so the two sections compare exactly.
#[derive(Debug, Clone, Copy)]
struct KeyRef {
    start: u32,
    len: u32,
    chain_len: u32,
}

/// The set of already-emitted cluster identities, with interned keys.
#[derive(Debug, Default)]
pub(crate) struct EmittedSet {
    /// Fingerprint → keys sharing it (singleton in all but collision cases).
    buckets: HashMap<u64, Vec<KeyRef>>,
    /// Flat arena of interned keys: `chain` ids then `genes` ids.
    arena: Vec<u32>,
}

impl EmittedSet {
    /// Inserts the view's identity; returns `false` (allocating nothing) if
    /// an identical cluster was already interned, `true` after interning a
    /// fresh one. `fingerprint` must be `view.fingerprint()` — it is taken
    /// as an argument so callers can compute it outside a shard lock.
    pub fn insert(&mut self, fingerprint: u64, view: &ClusterView<'_>) -> bool {
        if let Some(bucket) = self.buckets.get(&fingerprint) {
            if bucket.iter().any(|k| key_matches(&self.arena, *k, view)) {
                return false;
            }
        }
        let start = self.arena.len();
        self.arena
            .extend(view.chain.iter().map(|&c| id_u32(c, "condition")));
        self.arena
            .extend(view.genes.iter().map(|&g| id_u32(g, "gene")));
        let key = KeyRef {
            start: id_u32(start, "key arena offset"),
            len: (self.arena.len() - start) as u32,
            chain_len: view.chain.len() as u32,
        };
        self.buckets.entry(fingerprint).or_default().push(key);
        true
    }

    /// Number of interned identities.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }
}

#[inline]
fn id_u32(v: usize, what: &str) -> u32 {
    u32::try_from(v).unwrap_or_else(|_| panic!("{what} {v} exceeds the u32 interning range"))
}

fn key_matches(arena: &[u32], key: KeyRef, view: &ClusterView<'_>) -> bool {
    if key.chain_len as usize != view.chain.len()
        || key.len as usize != view.chain.len() + view.genes.len()
    {
        return false;
    }
    let slice = &arena[key.start as usize..(key.start + key.len) as usize];
    let (chain, genes) = slice.split_at(key.chain_len as usize);
    chain.iter().zip(view.chain).all(|(&a, &b)| a as usize == b)
        && genes.iter().zip(view.genes).all(|(&a, &b)| a as usize == b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(
        chain: &'a [CondId],
        p: &'a [GeneId],
        n: &'a [GeneId],
        genes: &'a [GeneId],
    ) -> ClusterView<'a> {
        ClusterView {
            chain,
            p_members: p,
            n_members: n,
            genes,
        }
    }

    #[test]
    fn insert_then_duplicate_probe() {
        let mut set = EmittedSet::default();
        let v = view(&[6, 8, 4], &[0, 2], &[1], &[0, 1, 2]);
        let h = v.fingerprint();
        assert!(set.insert(h, &v));
        assert!(!set.insert(h, &v), "second insert is a duplicate");
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn distinct_identities_do_not_collide_logically() {
        let mut set = EmittedSet::default();
        let a = view(&[1, 2], &[0], &[], &[0]);
        let b = view(&[2, 1], &[0], &[], &[0]); // same ids, different chain order
        let c = view(&[1, 2], &[3], &[], &[3]); // same chain, different genes
        assert!(set.insert(a.fingerprint(), &a));
        assert!(set.insert(b.fingerprint(), &b));
        assert!(set.insert(c.fingerprint(), &c));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn chain_gene_boundary_is_part_of_the_identity() {
        // Same flattened id sequence [1, 2, 3], split differently between
        // chain and genes: must be distinct clusters.
        let mut set = EmittedSet::default();
        let a = view(&[1, 2], &[3], &[], &[3]);
        let b = view(&[1], &[2, 3], &[], &[2, 3]);
        assert!(set.insert(a.fingerprint(), &a));
        assert!(set.insert(b.fingerprint(), &b));
        assert!(!set.insert(a.fingerprint(), &a));
        assert!(!set.insert(b.fingerprint(), &b));
    }

    #[test]
    fn forced_fingerprint_collision_resolves_exactly() {
        // Feed two different identities under the SAME (forged) fingerprint:
        // the bucket must hold both and membership must be decided by the
        // exact comparison, not the hash.
        let mut set = EmittedSet::default();
        let a = view(&[1, 2], &[5], &[], &[5]);
        let b = view(&[7, 9], &[4], &[], &[4]);
        assert!(set.insert(42, &a));
        assert!(set.insert(42, &b), "different identity must insert");
        assert!(!set.insert(42, &a));
        assert!(!set.insert(42, &b));
        assert_eq!(set.len(), 2);
    }
}
