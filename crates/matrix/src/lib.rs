#![warn(missing_docs)]

//! Dense gene-expression matrix substrate for the reg-cluster workspace.
//!
//! Gene expression profiles are modelled as a dense row-major `f64` matrix in
//! which each **row is a gene** and each **column is an experimental
//! condition** (microarray sample), mirroring Table 1 of Xu, Lu, Tung & Wang,
//! *Mining Shifting-and-Scaling Co-Regulation Patterns on Gene Expression
//! Profiles* (ICDE 2006).
//!
//! The crate provides:
//!
//! * [`ExpressionMatrix`] — the core container with gene/condition labels,
//!   row/column accessors, per-gene statistics and submatrix extraction;
//! * [`io`] — tab-delimited reading and writing (the format used by the
//!   Tavazoie/Church yeast benchmark referenced in the paper), including
//!   missing-value markers;
//! * [`transform`] — value transforms referenced by the paper's related work
//!   discussion (log for pCluster/δ-cluster, exp for Tricluster, per-gene
//!   z-score and min–max normalization);
//! * [`missing`] — imputation strategies turning a [`io::RaggedMatrix`] with
//!   holes into a complete [`ExpressionMatrix`].
//!
//! # Example
//!
//! ```
//! use regcluster_matrix::ExpressionMatrix;
//!
//! let m = ExpressionMatrix::from_rows(
//!     vec!["g1".into(), "g2".into()],
//!     vec!["c1".into(), "c2".into(), "c3".into()],
//!     vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
//! )
//! .unwrap();
//! assert_eq!(m.n_genes(), 2);
//! assert_eq!(m.value(1, 2), 6.0);
//! assert_eq!(m.gene_range(0), (1.0, 3.0));
//! ```

mod error;
mod matrix;

pub mod io;
pub mod missing;
pub mod stats;
pub mod transform;

pub use error::MatrixError;
pub use matrix::{CondId, ExpressionMatrix, GeneId};
