//! Golden checkpoint/resume tests: interrupting a mining run at an
//! arbitrary point, checkpointing, and resuming in a fresh run must yield
//! the **bit-identical** finalized cluster set of an uninterrupted run —
//! across thread counts 1–8, on both golden datasets (the paper's Table 1
//! running example and a synthetic embedded-cluster matrix).
//!
//! Interrupts come from an observer that cancels the run's [`MineControl`]
//! after a fixed number of fresh emissions — the same node-granularity stop
//! a deadline or Ctrl-C produces — so the snapshot frontier is whatever the
//! scheduler happened to leave pending, never a hand-picked state.

use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Duration;

use regcluster_core::{
    mine_engine, mine_engine_checkpointed, CheckpointPlan, EngineCheckpoint, EngineConfig,
    MemoryCheckpointSink, MineControl, MiningParams, NoopObserver, RegCluster, SyncMineObserver,
};
use regcluster_datagen::{generate, running_example, PatternKind, SyntheticConfig};
use regcluster_matrix::ExpressionMatrix;

/// Cancels `control` once `budget` fresh clusters have been emitted.
struct CancelAfterEmissions {
    control: MineControl,
    budget: AtomicI64,
}

impl CancelAfterEmissions {
    fn new(control: MineControl, budget: i64) -> Self {
        CancelAfterEmissions {
            control,
            budget: AtomicI64::new(budget),
        }
    }
}

impl SyncMineObserver for CancelAfterEmissions {
    fn cluster_emitted(&self, _cluster: &RegCluster) {
        if self.budget.fetch_sub(1, Ordering::SeqCst) <= 1 {
            self.control.cancel();
        }
    }
}

/// The running example and parameters yielding its single reg-cluster.
fn running_dataset() -> (ExpressionMatrix, MiningParams) {
    (
        running_example(),
        MiningParams::new(3, 5, 0.15, 0.1).unwrap(),
    )
}

/// The seeded 100×30 synthetic workload shared by the repo's golden-output
/// tests (see `crates/store/tests/roundtrip.rs`) — big enough that
/// interrupted runs leave a non-trivial multi-node frontier.
fn synthetic_dataset() -> (ExpressionMatrix, MiningParams) {
    let cfg = SyntheticConfig {
        n_genes: 100,
        n_conds: 30,
        n_clusters: 6,
        avg_cluster_dims: 6,
        cluster_gene_frac: 0.06,
        neg_fraction: 0.3,
        plant_gamma: 0.15,
        pattern: PatternKind::ShiftScale,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed: 7,
    };
    let data = generate(&cfg).unwrap();
    (data.matrix, MiningParams::new(4, 4, 0.1, 0.05).unwrap())
}

/// Mines to completion through repeated interrupt → checkpoint → resume
/// cycles, cancelling after `budget` fresh emissions each round, and
/// returns the final collected set plus the number of interruptions.
fn mine_through_interrupts(
    matrix: &ExpressionMatrix,
    params: &MiningParams,
    config: &EngineConfig,
    budget: i64,
) -> (Vec<RegCluster>, usize) {
    let mut resume: Option<EngineCheckpoint> = None;
    let mut interrupts = 0;
    loop {
        let ck_sink = MemoryCheckpointSink::new();
        let control = MineControl::new();
        let observer = CancelAfterEmissions::new(control.clone(), budget);
        let mut plan = CheckpointPlan::new(&ck_sink);
        if let Some(ck) = resume.take() {
            plan = plan.with_resume(ck);
        }
        let (report, ck_report) =
            mine_engine_checkpointed(matrix, params, config, &control, &observer, plan)
                .expect("checkpointed mining succeeds");
        assert_eq!(ck_report.resumed, interrupts > 0);
        if !report.truncated {
            return (report.clusters, interrupts);
        }
        interrupts += 1;
        assert!(
            ck_report.checkpoints_written >= 1,
            "a truncated run must flush a final checkpoint"
        );
        resume = Some(
            ck_sink
                .last()
                .expect("truncated run must leave a checkpoint"),
        );
        assert!(interrupts < 10_000, "interrupt loop must make progress");
    }
}

#[test]
fn interrupt_resume_is_bit_identical_across_thread_counts() {
    for (name, (matrix, params)) in [
        ("running_example", running_dataset()),
        ("synthetic", synthetic_dataset()),
    ] {
        let reference = mine_engine(&matrix, &params, &EngineConfig::new(2))
            .unwrap()
            .clusters;
        assert!(
            !reference.is_empty(),
            "{name}: golden set must be non-empty"
        );
        for threads in 1..=8 {
            let config = EngineConfig::new(threads);
            for budget in [1, 2] {
                let (clusters, interrupts) =
                    mine_through_interrupts(&matrix, &params, &config, budget);
                assert_eq!(
                    clusters, reference,
                    "{name}: threads={threads} budget={budget} ({interrupts} interrupts)"
                );
            }
        }
    }
}

#[test]
fn periodic_checkpoints_do_not_change_the_result() {
    // `every = ZERO` forces a pause (and a snapshot, and a full worker
    // respawn) after every worker's next node — the most hostile cadence.
    let (matrix, params) = running_dataset();
    let reference = mine_engine(&matrix, &params, &EngineConfig::new(2))
        .unwrap()
        .clusters;
    for threads in [1usize, 2, 4] {
        let ck_sink = MemoryCheckpointSink::new();
        let plan = CheckpointPlan::new(&ck_sink).with_every(Duration::ZERO);
        let (report, ck_report) = mine_engine_checkpointed(
            &matrix,
            &params,
            &EngineConfig::new(threads),
            &MineControl::new(),
            &NoopObserver,
            plan,
        )
        .unwrap();
        assert!(!report.truncated);
        assert_eq!(report.clusters, reference, "threads = {threads}");
        assert!(
            ck_report.checkpoints_written > 0,
            "zero interval must checkpoint at least once (threads = {threads})"
        );
        assert_eq!(ck_report.checkpoints_written, ck_sink.saves());
    }

    // A coarser cadence on the synthetic dataset, where legs actually carry
    // several nodes each.
    let (matrix, params) = synthetic_dataset();
    let reference = mine_engine(&matrix, &params, &EngineConfig::new(2))
        .unwrap()
        .clusters;
    let ck_sink = MemoryCheckpointSink::new();
    let plan = CheckpointPlan::new(&ck_sink).with_every(Duration::from_micros(200));
    let (report, _) = mine_engine_checkpointed(
        &matrix,
        &params,
        &EngineConfig::new(4),
        &MineControl::new(),
        &NoopObserver,
        plan,
    )
    .unwrap();
    assert!(!report.truncated);
    assert_eq!(report.clusters, reference);
}

#[test]
fn completed_run_writes_no_checkpoint() {
    let (matrix, params) = running_dataset();
    let ck_sink = MemoryCheckpointSink::new();
    let (report, ck_report) = mine_engine_checkpointed(
        &matrix,
        &params,
        &EngineConfig::new(2),
        &MineControl::new(),
        &NoopObserver,
        CheckpointPlan::new(&ck_sink),
    )
    .unwrap();
    assert!(!report.truncated);
    assert_eq!(ck_report.checkpoints_written, 0);
    assert!(ck_sink.last().is_none());
    assert!(!ck_report.resumed);
}

/// Interrupts one run and returns its final checkpoint.
fn interrupted_checkpoint(matrix: &ExpressionMatrix, params: &MiningParams) -> EngineCheckpoint {
    let ck_sink = MemoryCheckpointSink::new();
    let control = MineControl::new();
    let observer = CancelAfterEmissions::new(control.clone(), 1);
    let (report, _) = mine_engine_checkpointed(
        matrix,
        params,
        &EngineConfig::new(2),
        &control,
        &observer,
        CheckpointPlan::new(&ck_sink),
    )
    .unwrap();
    assert!(report.truncated);
    ck_sink.last().unwrap()
}

#[test]
fn resume_refuses_mismatched_runs() {
    let (matrix, params) = synthetic_dataset();
    let ck = interrupted_checkpoint(&matrix, &params);

    let expect_refusal =
        |ck: EngineCheckpoint, matrix: &ExpressionMatrix, params: &MiningParams| {
            let sink = MemoryCheckpointSink::new();
            let err = mine_engine_checkpointed(
                matrix,
                params,
                &EngineConfig::new(2),
                &MineControl::new(),
                &NoopObserver,
                CheckpointPlan::new(&sink).with_resume(ck),
            )
            .expect_err("mismatched resume must be refused");
            match err {
                regcluster_core::CoreError::Checkpoint(msg) => msg,
                other => panic!("expected CoreError::Checkpoint, got {other:?}"),
            }
        };

    // Different parameters.
    let other_params = MiningParams::new(2, 3, 0.15, 0.1).unwrap();
    let msg = expect_refusal(ck.clone(), &matrix, &other_params);
    assert!(msg.contains("parameters"), "{msg}");

    // Different matrix content (same dimensions).
    let mut rows: Vec<Vec<f64>> = (0..matrix.n_genes())
        .map(|g| matrix.row(g).to_vec())
        .collect();
    rows[0][0] += 1.0;
    let altered = ExpressionMatrix::from_rows(
        matrix.gene_names().to_vec(),
        matrix.condition_names().to_vec(),
        rows,
    )
    .unwrap();
    let msg = expect_refusal(ck.clone(), &altered, &params);
    assert!(msg.contains("fingerprint"), "{msg}");

    // Structurally corrupt frontier: an out-of-range condition id.
    let mut corrupt = ck.clone();
    if corrupt.pending.is_empty() {
        corrupt.pending.push(regcluster_core::PendingNode {
            chain: vec![0],
            members: Vec::new(),
        });
    }
    corrupt.pending[0].chain.push(matrix.n_conditions());
    let msg = expect_refusal(corrupt, &matrix, &params);
    assert!(msg.contains("out-of-range"), "{msg}");

    // The pristine checkpoint still resumes fine against the right inputs.
    let sink = MemoryCheckpointSink::new();
    let (report, ck_report) = mine_engine_checkpointed(
        &matrix,
        &params,
        &EngineConfig::new(2),
        &MineControl::new(),
        &NoopObserver,
        CheckpointPlan::new(&sink).with_resume(ck),
    )
    .unwrap();
    assert!(ck_report.resumed);
    assert!(!report.truncated);
}
