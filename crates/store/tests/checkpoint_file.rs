//! The `.rck` checkpoint file end to end: an interrupted run persisted
//! through [`CheckpointFile`] reads back exactly, resumes to the
//! bit-identical golden result, refuses corruption, and replaces the
//! destination atomically even when the save itself crashes.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Mutex;

use regcluster_core::{
    mine_engine, mine_engine_checkpointed, CheckpointPlan, CheckpointSink, EngineConfig,
    MemoryCheckpointSink, MineControl, MiningParams, NoopObserver, RegCluster, SyncMineObserver,
};
use regcluster_datagen::running_example;
use regcluster_store::{read_checkpoint, CheckpointFile, StoreError, CHECKPOINT_VERSION};

/// Failpoint state is process-global; tests arming it take this lock.
static SERIAL: Mutex<()> = Mutex::new(());

/// Fixed header length of the `.rck` layout (same as `.rcs`).
const RCK_HEADER_LEN: usize = 32;

/// Cancels `control` once `budget` fresh clusters have been emitted.
struct CancelAfterEmissions {
    control: MineControl,
    budget: AtomicI64,
}

impl SyncMineObserver for CancelAfterEmissions {
    fn cluster_emitted(&self, _cluster: &RegCluster) {
        if self.budget.fetch_sub(1, Ordering::SeqCst) <= 1 {
            self.control.cancel();
        }
    }
}

fn test_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("regcluster-rck-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Interrupts one checkpointed run with `sink` and asserts it truncated.
fn interrupt_run(sink: &dyn CheckpointSink) {
    let matrix = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    let control = MineControl::new();
    let observer = CancelAfterEmissions {
        control: control.clone(),
        budget: AtomicI64::new(1),
    };
    let (report, ck_report) = mine_engine_checkpointed(
        &matrix,
        &params,
        &EngineConfig::new(2),
        &control,
        &observer,
        CheckpointPlan::new(sink),
    )
    .unwrap();
    assert!(report.truncated);
    assert!(ck_report.checkpoints_written >= 1);
}

#[test]
fn rck_file_roundtrips_and_resumes_bit_identically() {
    let dir = test_dir("roundtrip");
    let path = dir.join("run.rck");
    let matrix = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    let reference = mine_engine(&matrix, &params, &EngineConfig::new(2))
        .unwrap()
        .clusters;

    // Interrupt a run that checkpoints straight to disk.
    let file_sink = CheckpointFile::new(&path);
    interrupt_run(&file_sink);

    // Byte-level fidelity: the same snapshot through the in-memory sink
    // must equal what the .rck file decodes to.
    let memory = MemoryCheckpointSink::new();
    let from_disk = read_checkpoint(&path).unwrap();
    memory.save(&from_disk).unwrap();
    assert_eq!(memory.last().unwrap(), from_disk);
    assert_eq!(from_disk.params, params);
    assert_eq!(from_disk.n_genes, matrix.n_genes());
    assert_eq!(from_disk.n_conditions, matrix.n_conditions());
    assert!(!from_disk.pending.is_empty() || !from_disk.emitted.is_empty());

    // Save → read → save again is byte-stable.
    let copy = dir.join("copy.rck");
    CheckpointFile::new(&copy).save(&from_disk).unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&copy).unwrap());

    // Resuming the on-disk snapshot completes to the golden result.
    let resume_sink = CheckpointFile::new(dir.join("resume.rck"));
    let (report, ck_report) = mine_engine_checkpointed(
        &matrix,
        &params,
        &EngineConfig::new(4),
        &MineControl::new(),
        &NoopObserver,
        CheckpointPlan::new(&resume_sink).with_resume(from_disk),
    )
    .unwrap();
    assert!(ck_report.resumed);
    assert!(!report.truncated);
    assert_eq!(report.clusters, reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_rck_files_are_rejected_not_panicked() {
    let dir = test_dir("corrupt");
    let path = dir.join("run.rck");
    interrupt_run(&CheckpointFile::new(&path));
    let good = std::fs::read(&path).unwrap();
    let reload = |bytes: &[u8]| {
        std::fs::write(&path, bytes).unwrap();
        read_checkpoint(&path)
    };

    // Foreign file.
    let mut bad = good.clone();
    bad[..8].copy_from_slice(b"RCSTORE\0");
    assert!(matches!(reload(&bad), Err(StoreError::Format(_))));

    // Future version.
    let mut bad = good.clone();
    bad[8..12].copy_from_slice(&(CHECKPOINT_VERSION + 1).to_le_bytes());
    match reload(&bad) {
        Err(StoreError::Version { found, supported }) => {
            assert_eq!(found, CHECKPOINT_VERSION + 1);
            assert_eq!(supported, CHECKPOINT_VERSION);
        }
        other => panic!("expected Version error, got {other:?}"),
    }

    // Truncation at several depths, including mid-header.
    for keep in [0, 7, 31, good.len() / 2, good.len() - 1] {
        assert!(
            reload(&good[..keep]).is_err(),
            "truncated to {keep} bytes must be rejected"
        );
    }

    // A flipped bit anywhere in the payload or table trips a checksum.
    // (Header damage is covered by the magic/version/truncation cases.)
    for pos in (RCK_HEADER_LEN..good.len()).step_by(7) {
        let mut bad = good.clone();
        bad[pos] ^= 0x40;
        assert!(reload(&bad).is_err(), "bit flip at byte {pos} must surface");
    }

    // The pristine bytes still load.
    assert!(reload(&good).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crashed_save_leaves_previous_checkpoint_intact() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let dir = test_dir("atomic");
    let path = dir.join("run.rck");
    interrupt_run(&CheckpointFile::new(&path));
    let old = std::fs::read(&path).unwrap();

    regcluster_failpoint::configure("checkpoint::save=io_err@1").unwrap();
    let again = CheckpointFile::new(&path);
    let snapshot = read_checkpoint(&path).unwrap();
    let err = again.save(&snapshot).expect_err("injected fault surfaces");
    regcluster_failpoint::clear();
    assert!(
        err.to_string().contains("injected failpoint error"),
        "{err}"
    );

    // Destination untouched, still loadable, and no scratch file leaked.
    assert_eq!(std::fs::read(&path).unwrap(), old);
    assert!(read_checkpoint(&path).is_ok());
    assert!(!dir.join("run.rck.tmp").exists());

    // A later save succeeds and replaces the file.
    again.save(&snapshot).unwrap();
    assert!(read_checkpoint(&path).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}
