//! The reg-cluster output type and its model validator.

use regcluster_matrix::{CondId, ExpressionMatrix, GeneId};
use serde::{Deserialize, Serialize};

use crate::chain::RegulationChain;
use crate::coherence::h_series;
use crate::params::MiningParams;

/// A mined reg-cluster (Definition 3.2 of the paper).
///
/// `chain` is the representative regulation chain; `p_members` follow it
/// (expression strictly increasing with every step regulated), `n_members`
/// follow its inversion (negatively co-regulated). Member lists are sorted
/// by gene id.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegCluster {
    /// The representative regulation chain, in regulation order.
    pub chain: Vec<CondId>,
    /// Genes complying with the chain (positively co-regulated majority).
    pub p_members: Vec<GeneId>,
    /// Genes complying with the inverted chain (negatively co-regulated).
    pub n_members: Vec<GeneId>,
}

/// Why a cluster failed model validation. Produced by
/// [`RegCluster::validate`], which re-checks Definition 3.2 against the raw
/// matrix (used by tests and by downstream consumers that want a guarantee
/// independent of the miner).
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// Fewer genes than `MinG` or fewer conditions than `MinC`.
    TooSmall {
        /// Member genes present.
        genes: usize,
        /// Chain conditions present.
        conds: usize,
    },
    /// A p-member does not increase strictly along the chain, or an n-member
    /// does not decrease strictly.
    NotMonotonic {
        /// The offending gene.
        gene: GeneId,
    },
    /// An adjacent chain step of some member does not exceed its `γ_i`.
    NotRegulated {
        /// The offending gene.
        gene: GeneId,
        /// Zero-based index of the adjacent chain pair.
        step: usize,
        /// The (oriented) expression difference observed.
        diff: f64,
        /// The gene's resolved regulation threshold.
        gamma_i: f64,
    },
    /// The H-score spread at some step exceeds `ε`.
    NotCoherent {
        /// Zero-based index of the adjacent chain pair.
        step: usize,
        /// Observed `max − min` of the members' H-scores.
        spread: f64,
    },
    /// The chain is not representative: fewer p-members than n-members (or a
    /// tie with the wrong orientation).
    NotRepresentative,
    /// A gene id or condition id exceeds the matrix bounds, or a gene is
    /// listed as both p- and n-member.
    Malformed(String),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::TooSmall { genes, conds } => {
                write!(f, "cluster too small: {genes} genes × {conds} conditions")
            }
            ValidationError::NotMonotonic { gene } => {
                write!(f, "gene {gene} is not strictly monotonic along the chain")
            }
            ValidationError::NotRegulated {
                gene,
                step,
                diff,
                gamma_i,
            } => write!(
                f,
                "gene {gene} step {step} has |Δ| = {diff} ≤ γ_i = {gamma_i}"
            ),
            ValidationError::NotCoherent { step, spread } => {
                write!(f, "H-score spread {spread} at step {step} exceeds ε")
            }
            ValidationError::NotRepresentative => write!(f, "chain is not representative"),
            ValidationError::Malformed(m) => write!(f, "malformed cluster: {m}"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl RegCluster {
    /// All member genes, sorted by gene id.
    ///
    /// `p_members` and `n_members` are each sorted already, so this is a
    /// single merge into one exact-capacity allocation — no re-sort.
    pub fn genes(&self) -> Vec<GeneId> {
        let mut all = Vec::with_capacity(self.n_genes());
        all.extend(self.genes_iter());
        all
    }

    /// Iterates over all member genes in ascending gene-id order without
    /// allocating (a merge of the sorted `p_members` and `n_members`).
    pub fn genes_iter(&self) -> impl Iterator<Item = GeneId> + '_ {
        let mut p = self.p_members.iter().copied().peekable();
        let mut n = self.n_members.iter().copied().peekable();
        std::iter::from_fn(move || match (p.peek(), n.peek()) {
            (Some(&a), Some(&b)) => {
                if a <= b {
                    p.next()
                } else {
                    n.next()
                }
            }
            (Some(_), None) => p.next(),
            (None, _) => n.next(),
        })
    }

    /// Number of member genes.
    pub fn n_genes(&self) -> usize {
        self.p_members.len() + self.n_members.len()
    }

    /// Number of chain conditions.
    pub fn n_conditions(&self) -> usize {
        self.chain.len()
    }

    /// Number of matrix cells covered (`genes × conditions`).
    pub fn n_cells(&self) -> usize {
        self.n_genes() * self.n_conditions()
    }

    /// The chain as a [`RegulationChain`].
    pub fn regulation_chain(&self) -> RegulationChain {
        RegulationChain(self.chain.clone())
    }

    /// True when the cluster covers cell `(gene, condition)`.
    pub fn contains_cell(&self, gene: GeneId, cond: CondId) -> bool {
        self.chain.contains(&cond)
            && (self.p_members.binary_search(&gene).is_ok()
                || self.n_members.binary_search(&gene).is_ok())
    }

    /// Number of cells shared with another cluster.
    pub fn cell_overlap(&self, other: &RegCluster) -> usize {
        let shared_conds = self
            .chain
            .iter()
            .filter(|c| other.chain.contains(c))
            .count();
        if shared_conds == 0 {
            return 0;
        }
        let genes = self.genes();
        let other_genes = other.genes();
        let shared_genes = genes
            .iter()
            .filter(|g| other_genes.binary_search(g).is_ok())
            .count();
        shared_genes * shared_conds
    }

    /// True when this cluster's genes and conditions are both subsets of
    /// `other`'s (used by the `maximal_only` post-filter).
    pub fn is_subcluster_of(&self, other: &RegCluster) -> bool {
        let other_genes = other.genes();
        self.chain.iter().all(|c| other.chain.contains(c))
            && self
                .genes()
                .iter()
                .all(|g| other_genes.binary_search(g).is_ok())
    }

    /// Re-checks Definition 3.2 directly against the raw matrix:
    ///
    /// 1. size bounds (`MinG`, `MinC`);
    /// 2. every p-member strictly increases along the chain with every step
    ///    `> γ_i`; every n-member strictly decreases with every step
    ///    `< −γ_i` (the regulation constraint implied by the RWave chain);
    /// 3. the H-score spread across all members is `≤ ε` at every adjacent
    ///    step (the coherence constraint), with a small tolerance for
    ///    floating-point rounding;
    /// 4. representativeness: `|pX| > |nX|`, or a tie with
    ///    `chain[0] < chain[1]`.
    ///
    /// # Errors
    ///
    /// The first violated rule, as a [`ValidationError`].
    pub fn validate(
        &self,
        matrix: &ExpressionMatrix,
        params: &MiningParams,
    ) -> Result<(), ValidationError> {
        if self.n_genes() < params.min_genes || self.chain.len() < params.min_conds {
            return Err(ValidationError::TooSmall {
                genes: self.n_genes(),
                conds: self.chain.len(),
            });
        }
        for &c in &self.chain {
            if c >= matrix.n_conditions() {
                return Err(ValidationError::Malformed(format!(
                    "condition {c} out of bounds"
                )));
            }
        }
        for &g in self.p_members.iter().chain(self.n_members.iter()) {
            if g >= matrix.n_genes() {
                return Err(ValidationError::Malformed(format!(
                    "gene {g} out of bounds"
                )));
            }
        }
        if self.p_members.iter().any(|g| self.n_members.contains(g)) {
            return Err(ValidationError::Malformed(
                "gene is both p- and n-member".into(),
            ));
        }

        // Regulation + monotonicity per member.
        for (&g, sign) in self
            .p_members
            .iter()
            .map(|g| (g, 1.0))
            .chain(self.n_members.iter().map(|g| (g, -1.0)))
        {
            let row = matrix.row(g);
            let gamma_i = params.gamma.resolve(row);
            for (step, w) in self.chain.windows(2).enumerate() {
                let diff = (row[w[1]] - row[w[0]]) * sign;
                if diff <= 0.0 {
                    return Err(ValidationError::NotMonotonic { gene: g });
                }
                if diff <= gamma_i {
                    return Err(ValidationError::NotRegulated {
                        gene: g,
                        step,
                        diff,
                        gamma_i,
                    });
                }
            }
        }

        // Coherence across members at every step.
        let series: Vec<Vec<f64>> = self
            .p_members
            .iter()
            .chain(self.n_members.iter())
            .map(|&g| h_series(matrix.row(g), &self.chain))
            .collect();
        let tol = 1e-9;
        for step in 0..self.chain.len() - 1 {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for s in &series {
                lo = lo.min(s[step]);
                hi = hi.max(s[step]);
            }
            if hi - lo > params.epsilon + tol {
                return Err(ValidationError::NotCoherent {
                    step,
                    spread: hi - lo,
                });
            }
        }

        // Representativeness.
        let (p, n) = (self.p_members.len(), self.n_members.len());
        if p < n || (p == n && self.chain[0] >= self.chain[1]) {
            return Err(ValidationError::NotRepresentative);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn running_example() -> ExpressionMatrix {
        ExpressionMatrix::from_rows(
            vec!["g1".into(), "g2".into(), "g3".into()],
            (1..=10).map(|i| format!("c{i}")).collect(),
            vec![
                vec![10.0, -14.5, 15.0, 10.5, 0.0, 14.5, -15.0, 0.0, -5.0, -5.0],
                vec![20.0, 15.0, 15.0, 43.5, 30.0, 44.0, 45.0, 43.0, 35.0, 20.0],
                vec![6.0, -3.8, 8.0, 6.2, 2.0, 7.8, -4.0, 2.0, 0.0, 0.0],
            ],
        )
        .unwrap()
    }

    fn the_cluster() -> RegCluster {
        RegCluster {
            chain: vec![6, 8, 4, 0, 2],
            p_members: vec![0, 2],
            n_members: vec![1],
        }
    }

    #[test]
    fn accessors() {
        let c = the_cluster();
        assert_eq!(c.genes(), vec![0, 1, 2]);
        assert_eq!(c.n_genes(), 3);
        assert_eq!(c.n_conditions(), 5);
        assert_eq!(c.n_cells(), 15);
        assert!(c.contains_cell(1, 8));
        assert!(!c.contains_cell(1, 5));
        assert_eq!(c.regulation_chain().0, vec![6, 8, 4, 0, 2]);
    }

    #[test]
    fn overlap_and_subcluster() {
        let a = the_cluster();
        let b = RegCluster {
            chain: vec![6, 8],
            p_members: vec![0],
            n_members: vec![],
        };
        assert_eq!(a.cell_overlap(&b), 2);
        assert!(b.is_subcluster_of(&a));
        assert!(!a.is_subcluster_of(&b));
        let c = RegCluster {
            chain: vec![3, 5],
            p_members: vec![0, 2],
            n_members: vec![],
        };
        assert_eq!(a.cell_overlap(&c), 0);
    }

    #[test]
    fn running_example_cluster_validates() {
        let m = running_example();
        let p = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
        the_cluster().validate(&m, &p).unwrap();
    }

    #[test]
    fn validation_rejects_too_small() {
        let m = running_example();
        let p = MiningParams::new(4, 5, 0.15, 0.1).unwrap();
        assert!(matches!(
            the_cluster().validate(&m, &p),
            Err(ValidationError::TooSmall { genes: 3, conds: 5 })
        ));
    }

    #[test]
    fn validation_rejects_wrong_direction() {
        let m = running_example();
        let p = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
        // Swap g2 into the p-members: its profile decreases along the chain.
        let bad = RegCluster {
            chain: vec![6, 8, 4, 0, 2],
            p_members: vec![0, 1],
            n_members: vec![2],
        };
        assert!(matches!(
            bad.validate(&m, &p),
            Err(ValidationError::NotMonotonic { gene: 1 })
        ));
    }

    #[test]
    fn validation_rejects_unregulated_step() {
        let m = running_example();
        // Tighten γ so a 5-unit step (e.g. g1's c9→c5) stops qualifying:
        // γ = 0.2 ⇒ γ_1 = 6.
        let p = MiningParams::new(3, 5, 0.2, 0.1).unwrap();
        assert!(matches!(
            the_cluster().validate(&m, &p),
            Err(ValidationError::NotRegulated { .. })
        ));
    }

    #[test]
    fn validation_rejects_incoherent_member() {
        let m = running_example();
        let p = MiningParams::new(2, 3, 0.15, 0.1).unwrap();
        // Chain c2 ↰ c10 ↰ c8 (Figure 4): g2's score 4.6 vs 0.5263.
        let bad = RegCluster {
            chain: vec![1, 9, 7],
            p_members: vec![0, 1, 2],
            n_members: vec![],
        };
        assert!(matches!(
            bad.validate(&m, &p),
            Err(ValidationError::NotCoherent { step: 1, .. })
        ));
    }

    #[test]
    fn validation_rejects_non_representative() {
        let m = running_example();
        let p = MiningParams::new(1, 5, 0.15, 0.1).unwrap();
        // The inverted chain has g2 as its only p-member: 1 < 2 n-members.
        let inv = RegCluster {
            chain: vec![2, 0, 4, 8, 6],
            p_members: vec![1],
            n_members: vec![0, 2],
        };
        assert!(matches!(
            inv.validate(&m, &p),
            Err(ValidationError::NotRepresentative)
        ));
    }

    #[test]
    fn validation_rejects_malformed() {
        let m = running_example();
        let p = MiningParams::new(1, 2, 0.15, 0.1).unwrap();
        let oob = RegCluster {
            chain: vec![0, 99],
            p_members: vec![0],
            n_members: vec![],
        };
        assert!(matches!(
            oob.validate(&m, &p),
            Err(ValidationError::Malformed(_))
        ));
        let dup = RegCluster {
            chain: vec![6, 8],
            p_members: vec![0],
            n_members: vec![0],
        };
        assert!(matches!(
            dup.validate(&m, &p),
            Err(ValidationError::Malformed(_))
        ));
    }
}
