//! The store reader: validates a `.rcs` file once at open, then answers
//! queries from byte-slice views into the file image without deserializing
//! untouched records.

use std::collections::HashMap;
use std::path::Path;

use regcluster_core::{MiningParams, RegCluster};
use serde::{Deserialize, Serialize, Value};

use crate::error::StoreError;
use crate::format::{
    u32_at, u64_at, ByteReader, Fnv64, Section, SectionId, FORMAT_VERSION, HEADER_LEN, MAGIC,
    MIN_SUPPORTED_VERSION, SECTION_ENTRY_LEN,
};
use crate::migrations;
use crate::writer::decode_record;

/// Summary facts about an open store (also the `/stats` payload shape).
#[derive(Debug, Clone, Serialize)]
pub struct StoreStats {
    /// Clusters in the store.
    pub n_clusters: u32,
    /// Genes in the dictionary.
    pub n_genes: u32,
    /// Conditions in the dictionary.
    pub n_conds: u32,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Mining parameters of the run that produced the store (provenance).
    pub params: MiningParams,
    /// Engine that produced the store (`None` for stores written before
    /// engine provenance existed — those are reg-cluster runs).
    pub engine: Option<String>,
    /// Generation number within a [`Generations`](crate::Generations)
    /// lineage (0 for standalone stores and pre-generational files).
    pub generation: u64,
}

/// The optional half of a store's provenance metadata. All fields are
/// absent in stores written before the respective feature existed; the
/// rest of the meta JSON (the [`MiningParams`]) parses identically either
/// way. Version-1 files gain `generation: 0` through the
/// [`migrations`](crate::migrations) registry at open.
#[derive(Debug, Clone, Default, Deserialize)]
struct Provenance {
    engine: Option<String>,
    engine_params: Option<String>,
    generation: Option<u64>,
    matrix_fingerprint: Option<u64>,
    root_fingerprints: Option<Vec<u64>>,
}

/// An open, fully-validated cluster store.
///
/// [`open`](ClusterStore::open) reads the file into memory and verifies
/// every section checksum plus all structural invariants (index bounds,
/// monotonic CSR starts, posting ids in range) **before** returning, so
/// queries afterwards cannot observe corruption: they run on validated
/// byte-slice views and decode only the records they touch.
pub struct ClusterStore {
    buf: Vec<u8>,
    sections: HashMap<u32, Section>,
    n_genes: u32,
    n_conds: u32,
    n_clusters: u32,
    params: MiningParams,
    provenance: Provenance,
    /// The META params JSON after migration to the current version, keys
    /// (known and unknown) preserved in file order.
    meta: Value,
    gene_names: Vec<String>,
    cond_names: Vec<String>,
    gene_lookup: HashMap<String, u32>,
    cond_lookup: HashMap<String, u32>,
}

impl std::fmt::Debug for ClusterStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterStore")
            .field("n_clusters", &self.n_clusters)
            .field("n_genes", &self.n_genes)
            .field("n_conds", &self.n_conds)
            .field("file_bytes", &self.buf.len())
            .finish_non_exhaustive()
    }
}

impl ClusterStore {
    /// Opens and validates a store file.
    ///
    /// # Errors
    ///
    /// * [`StoreError::Format`] — not a store, truncated, or structurally
    ///   inconsistent (every byte-range is bounds-checked);
    /// * [`StoreError::Version`] — written by a different format version;
    /// * [`StoreError::ChecksumMismatch`] — payload bytes corrupted;
    /// * [`StoreError::Metadata`] — provenance parameters unreadable;
    /// * [`StoreError::Io`] — the file could not be read.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        // A writer that crashed before its sealing rename leaves
        // `<path>.tmp` behind; it is never the destination, so clear it
        // (best effort) rather than letting stale scratch files pile up.
        let stale = crate::writer::tmp_path(path);
        if stale.symlink_metadata().is_ok() {
            let _ = std::fs::remove_file(&stale);
        }
        Self::from_bytes(std::fs::read(path)?)
    }

    /// Like [`open`](ClusterStore::open), over an already-loaded file image.
    pub fn from_bytes(buf: Vec<u8>) -> Result<Self, StoreError> {
        if buf.len() < HEADER_LEN {
            return Err(StoreError::Format(format!(
                "file too short for a header ({} bytes)",
                buf.len()
            )));
        }
        if buf[..8] != MAGIC {
            return Err(StoreError::Format(
                "bad magic (not a .rcs store, or the writer never sealed it)".into(),
            ));
        }
        let mut h = ByteReader::new(&buf[8..HEADER_LEN], "header");
        let version = h.u32()?;
        if !(MIN_SUPPORTED_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(StoreError::Version {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let section_count = h.u32()? as usize;
        let table_offset = h.u64()? as usize;
        let table_checksum = h.u64()?;
        let table_len = section_count
            .checked_mul(SECTION_ENTRY_LEN)
            .ok_or_else(|| StoreError::Format("section count overflows".into()))?;
        let table_end = table_offset
            .checked_add(table_len)
            .filter(|&e| e <= buf.len() && table_offset >= HEADER_LEN)
            .ok_or_else(|| {
                StoreError::Format(format!(
                    "section table [{table_offset}, +{table_len}) out of file bounds ({})",
                    buf.len()
                ))
            })?;
        let table = &buf[table_offset..table_end];
        let actual = Fnv64::hash(table);
        if actual != table_checksum {
            return Err(StoreError::ChecksumMismatch {
                section: "section-table",
                expected: table_checksum,
                actual,
            });
        }

        let mut sections: HashMap<u32, Section> = HashMap::new();
        let mut r = ByteReader::new(table, "section table");
        for _ in 0..section_count {
            let id_raw = r.u32()?;
            let _reserved = r.u32()?;
            let offset = r.u64()?;
            let len = r.u64()?;
            let checksum = r.u64()?;
            let id = SectionId::from_u32(id_raw)
                .ok_or_else(|| StoreError::Format(format!("unknown section id {id_raw}")))?;
            let end = offset
                .checked_add(len)
                .filter(|&e| e <= buf.len() as u64 && offset >= HEADER_LEN as u64);
            if end.is_none() {
                return Err(StoreError::Format(format!(
                    "section {} [{offset}, +{len}) out of file bounds ({})",
                    id.name(),
                    buf.len()
                )));
            }
            if sections
                .insert(
                    id_raw,
                    Section {
                        id,
                        offset,
                        len,
                        checksum,
                    },
                )
                .is_some()
            {
                return Err(StoreError::Format(format!(
                    "duplicate section {}",
                    id.name()
                )));
            }
        }
        for required in SectionId::ALL {
            let Some(s) = sections.get(&(required as u32)) else {
                return Err(StoreError::Format(format!(
                    "missing section {}",
                    required.name()
                )));
            };
            let payload = &buf[s.offset as usize..(s.offset + s.len) as usize];
            let actual = Fnv64::hash(payload);
            if actual != s.checksum {
                return Err(StoreError::ChecksumMismatch {
                    section: required.name(),
                    expected: s.checksum,
                    actual,
                });
            }
        }

        let section = |id: SectionId| -> &[u8] {
            let s = &sections[&(id as u32)];
            &buf[s.offset as usize..(s.offset + s.len) as usize]
        };

        // META: dimensions + provenance params.
        let mut m = ByteReader::new(section(SectionId::Meta), "meta section");
        let n_genes = checked_u32(m.u64()?, "n_genes")?;
        let n_conds = checked_u32(m.u64()?, "n_conds")?;
        let n_clusters = checked_u32(m.u64()?, "n_clusters")?;
        let params_raw = m.bytes(m.remaining())?;
        let params_str = std::str::from_utf8(params_raw)
            .map_err(|_| StoreError::Metadata("params JSON is not UTF-8".into()))?;
        // Parse once into a document tree, upgrade older versions in
        // memory (the file itself is never rewritten), then read the two
        // typed views off the migrated tree. Keys neither view knows stay
        // in `meta` untouched — forward compatibility for minor writers.
        let mut meta = serde_json::parse_value_str(params_str)
            .map_err(|e| StoreError::Metadata(format!("params JSON unreadable: {e}")))?;
        migrations::upgrade(version, &mut meta)?;
        let params = MiningParams::from_json_value(&meta)
            .map_err(|e| StoreError::Metadata(format!("params JSON unreadable: {e}")))?;
        // Same JSON object, second view: older stores simply lack the
        // provenance keys, which deserialize to `None`.
        let provenance = Provenance::from_json_value(&meta)
            .map_err(|e| StoreError::Metadata(format!("provenance JSON unreadable: {e}")))?;

        let gene_names = decode_dict(section(SectionId::GeneDict), n_genes, "gene-dict")?;
        let cond_names = decode_dict(section(SectionId::CondDict), n_conds, "cond-dict")?;

        // Structural invariants of the fixed-width sections.
        let clusters_len = sections[&(SectionId::Clusters as u32)].len;
        let offsets = section(SectionId::Offsets);
        if offsets.len() != n_clusters as usize * 8 {
            return Err(StoreError::Format(format!(
                "offsets section holds {} bytes, expected {} for {n_clusters} clusters",
                offsets.len(),
                n_clusters as usize * 8
            )));
        }
        for i in 0..n_clusters as usize {
            if u64_at(offsets, i) >= clusters_len.max(1) {
                return Err(StoreError::Format(format!(
                    "cluster {i} offset {} past clusters section ({clusters_len} bytes)",
                    u64_at(offsets, i)
                )));
            }
        }
        let sizes = section(SectionId::Sizes);
        if sizes.len() != n_clusters as usize * 8 {
            return Err(StoreError::Format(format!(
                "sizes section holds {} bytes, expected {}",
                sizes.len(),
                n_clusters as usize * 8
            )));
        }
        validate_csr(
            section(SectionId::GeneIndex),
            n_genes,
            n_clusters,
            "gene-index",
        )?;
        validate_csr(
            section(SectionId::CondIndex),
            n_conds,
            n_clusters,
            "cond-index",
        )?;

        let gene_lookup = gene_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
        let cond_lookup = cond_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
        Ok(ClusterStore {
            buf,
            sections,
            n_genes,
            n_conds,
            n_clusters,
            params,
            provenance,
            meta,
            gene_names,
            cond_names,
            gene_lookup,
            cond_lookup,
        })
    }

    fn section(&self, id: SectionId) -> &[u8] {
        let s = &self.sections[&(id as u32)];
        &self.buf[s.offset as usize..(s.offset + s.len) as usize]
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> u32 {
        self.n_clusters
    }

    /// Number of genes in the dictionary.
    pub fn n_genes(&self) -> u32 {
        self.n_genes
    }

    /// Number of conditions in the dictionary.
    pub fn n_conds(&self) -> u32 {
        self.n_conds
    }

    /// Mining parameters of the producing run (γ/ε provenance).
    pub fn params(&self) -> &MiningParams {
        &self.params
    }

    /// Name of the engine that produced the store, when recorded.
    ///
    /// `None` means the store predates engine provenance; those were
    /// always written by the reg-cluster miner.
    pub fn engine(&self) -> Option<&str> {
        self.provenance.engine.as_deref()
    }

    /// The producing engine's native parameters as a JSON string, when
    /// recorded (see
    /// [`BiclusterEngine::params_json`](regcluster_core::BiclusterEngine::params_json)).
    pub fn engine_params_json(&self) -> Option<&str> {
        self.provenance.engine_params.as_deref()
    }

    /// Generation number within a [`Generations`](crate::Generations)
    /// lineage. Standalone stores — and version-1 files, migrated at open
    /// — are generation 0.
    pub fn generation(&self) -> u64 {
        self.provenance.generation.unwrap_or(0)
    }

    /// Fingerprint of the mined expression matrix, when the producing run
    /// recorded one (see [`matrix_fingerprint`]).
    ///
    /// [`matrix_fingerprint`]: regcluster_core::matrix_fingerprint
    pub fn matrix_fingerprint(&self) -> Option<u64> {
        self.provenance.matrix_fingerprint
    }

    /// Per-root enumeration fingerprints of the producing run, when
    /// recorded (see [`root_fingerprints`]). A later run diffs these
    /// against the re-measured matrix's to decide which subtrees to
    /// re-mine and which clusters to splice over unchanged.
    ///
    /// [`root_fingerprints`]: regcluster_core::root_fingerprints
    pub fn root_fingerprints(&self) -> Option<&[u64]> {
        self.provenance.root_fingerprints.as_deref()
    }

    /// The META section's JSON document, re-rendered after migration to
    /// the current format version. Keys this build does not understand
    /// are preserved verbatim, in file order.
    pub fn meta_json(&self) -> String {
        serde_json::to_string(&self.meta).unwrap_or_else(|_| "{}".into())
    }

    /// Gene names, indexed by gene id.
    pub fn gene_names(&self) -> &[String] {
        &self.gene_names
    }

    /// Condition names, indexed by condition id.
    pub fn cond_names(&self) -> &[String] {
        &self.cond_names
    }

    /// Resolves a gene name to its id.
    pub fn gene_id(&self, name: &str) -> Option<u32> {
        self.gene_lookup.get(name).copied()
    }

    /// Resolves a condition name to its id.
    pub fn cond_id(&self, name: &str) -> Option<u32> {
        self.cond_lookup.get(name).copied()
    }

    /// Summary facts (the `/stats` payload).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            n_clusters: self.n_clusters,
            n_genes: self.n_genes,
            n_conds: self.n_conds,
            file_bytes: self.buf.len() as u64,
            params: self.params.clone(),
            engine: self.provenance.engine.clone(),
            generation: self.generation(),
        }
    }

    /// Decodes cluster `id` (ids are canonical-order ranks).
    ///
    /// # Errors
    ///
    /// [`StoreError::ClusterOutOfBounds`] for `id ≥ n_clusters`;
    /// [`StoreError::Format`] if the record bytes are inconsistent.
    pub fn cluster(&self, id: u32) -> Result<RegCluster, StoreError> {
        if id >= self.n_clusters {
            return Err(StoreError::ClusterOutOfBounds {
                id,
                len: self.n_clusters,
            });
        }
        let off = u64_at(self.section(SectionId::Offsets), id as usize);
        decode_record(self.section(SectionId::Clusters), off).map(|(c, _)| c)
    }

    /// The packed record bytes of cluster `id`, exactly as stored — the
    /// splice path of delta mining copies these into a new store through
    /// [`StoreWriter::write_raw_record`](crate::StoreWriter::write_raw_record)
    /// without materializing a [`RegCluster`].
    ///
    /// # Errors
    ///
    /// [`StoreError::ClusterOutOfBounds`] for `id ≥ n_clusters`;
    /// [`StoreError::Format`] if the record bytes are inconsistent.
    pub fn record_bytes(&self, id: u32) -> Result<&[u8], StoreError> {
        if id >= self.n_clusters {
            return Err(StoreError::ClusterOutOfBounds {
                id,
                len: self.n_clusters,
            });
        }
        let clusters = self.section(SectionId::Clusters);
        let off = u64_at(self.section(SectionId::Offsets), id as usize) as usize;
        let mut r = ByteReader::new(&clusters[off..], "cluster record");
        let chain_len = r.u32()? as usize;
        let p_len = r.u32()? as usize;
        let n_len = r.u32()? as usize;
        let used = 12 + 4 * (chain_len + p_len + n_len);
        if off + used > clusters.len() {
            return Err(StoreError::Format(format!(
                "cluster {id} record [{off}, +{used}) past clusters section \
                 ({} bytes)",
                clusters.len()
            )));
        }
        Ok(&clusters[off..off + used])
    }

    /// The root condition (`chain[0]`) of cluster `id`, read straight from
    /// the packed record — no decode. This is the key delta mining splices
    /// by: a cluster carries over iff its root is unchanged.
    ///
    /// # Errors
    ///
    /// As [`record_bytes`](ClusterStore::record_bytes); additionally
    /// [`StoreError::Format`] for an empty chain (no well-formed writer
    /// produces one).
    pub fn cluster_root(&self, id: u32) -> Result<u32, StoreError> {
        let record = self.record_bytes(id)?;
        if u32_at(record, 0) == 0 {
            return Err(StoreError::Format(format!(
                "cluster {id} has an empty chain"
            )));
        }
        Ok(u32_at(record, 3))
    }

    /// `(n_genes, n_conds)` of cluster `id`, straight from the size table —
    /// no record decode.
    ///
    /// # Errors
    ///
    /// [`StoreError::ClusterOutOfBounds`] for `id ≥ n_clusters`.
    pub fn cluster_dims(&self, id: u32) -> Result<(u32, u32), StoreError> {
        if id >= self.n_clusters {
            return Err(StoreError::ClusterOutOfBounds {
                id,
                len: self.n_clusters,
            });
        }
        let sizes = self.section(SectionId::Sizes);
        Ok((
            u32_at(sizes, id as usize * 2),
            u32_at(sizes, id as usize * 2 + 1),
        ))
    }

    /// Iterates all clusters in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = Result<RegCluster, StoreError>> + '_ {
        (0..self.n_clusters).map(move |id| self.cluster(id))
    }

    fn postings(&self, index: SectionId, i: u32) -> PostingsIter<'_> {
        let raw = self.section(index);
        let start = u32_at(raw, i as usize) as usize;
        let end = u32_at(raw, i as usize + 1) as usize;
        let keys = match index {
            SectionId::GeneIndex => self.n_genes,
            _ => self.n_conds,
        } as usize;
        let postings = &raw[(keys + 1) * 4..];
        PostingsIter {
            raw: &postings[start * 4..end * 4],
            pos: 0,
        }
    }

    /// Ids of the clusters containing gene `g` (ascending). Empty iterator
    /// for an out-of-range gene.
    pub fn clusters_with_gene(&self, g: u32) -> PostingsIter<'_> {
        if g >= self.n_genes {
            return PostingsIter { raw: &[], pos: 0 };
        }
        self.postings(SectionId::GeneIndex, g)
    }

    /// Ids of the clusters whose chain contains condition `c` (ascending).
    pub fn clusters_with_cond(&self, c: u32) -> PostingsIter<'_> {
        if c >= self.n_conds {
            return PostingsIter { raw: &[], pos: 0 };
        }
        self.postings(SectionId::CondIndex, c)
    }
}

/// Iterator over a posting list: decodes `u32` ids on the fly from the
/// validated byte view — no allocation, no copy of the list.
pub struct PostingsIter<'a> {
    raw: &'a [u8],
    pos: usize,
}

impl Iterator for PostingsIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.pos >= self.raw.len() / 4 {
            return None;
        }
        let v = u32_at(self.raw, self.pos);
        self.pos += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.raw.len() / 4 - self.pos;
        (n, Some(n))
    }
}

impl ExactSizeIterator for PostingsIter<'_> {}

fn checked_u32(v: u64, what: &str) -> Result<u32, StoreError> {
    u32::try_from(v).map_err(|_| StoreError::Format(format!("{what} = {v} exceeds u32")))
}

fn decode_dict(raw: &[u8], expect: u32, what: &'static str) -> Result<Vec<String>, StoreError> {
    let mut r = ByteReader::new(raw, what);
    let count = r.u32()?;
    if count != expect {
        return Err(StoreError::Format(format!(
            "{what} holds {count} names, meta declares {expect}"
        )));
    }
    let mut names = Vec::with_capacity(count as usize);
    for _ in 0..count {
        names.push(r.string()?);
    }
    if r.remaining() != 0 {
        return Err(StoreError::Format(format!(
            "{what} has {} trailing bytes",
            r.remaining()
        )));
    }
    Ok(names)
}

/// Validates a CSR index: exact section length, starts from 0, monotonic,
/// and every posting id within `n_clusters`.
fn validate_csr(
    raw: &[u8],
    keys: u32,
    n_clusters: u32,
    what: &'static str,
) -> Result<(), StoreError> {
    let starts_len = (keys as usize + 1) * 4;
    if raw.len() < starts_len {
        return Err(StoreError::Format(format!(
            "{what} too short for {keys} keys ({} bytes)",
            raw.len()
        )));
    }
    if u32_at(raw, 0) != 0 {
        return Err(StoreError::Format(format!("{what} starts at nonzero")));
    }
    let mut prev = 0u32;
    for i in 1..=keys as usize {
        let s = u32_at(raw, i);
        if s < prev {
            return Err(StoreError::Format(format!(
                "{what} starts not monotonic at key {i}"
            )));
        }
        prev = s;
    }
    let postings_bytes = raw.len() - starts_len;
    if postings_bytes != prev as usize * 4 {
        return Err(StoreError::Format(format!(
            "{what} postings hold {postings_bytes} bytes, starts declare {}",
            prev as usize * 4
        )));
    }
    let postings = &raw[starts_len..];
    for i in 0..prev as usize {
        if u32_at(postings, i) >= n_clusters {
            return Err(StoreError::Format(format!(
                "{what} posting {i} references cluster {} of {n_clusters}",
                u32_at(postings, i)
            )));
        }
    }
    Ok(())
}
