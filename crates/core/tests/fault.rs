//! Fault-injection drills for the engine: a worker crashing mid-run (via
//! the `engine::worker` failpoint) must surface as
//! [`CoreError::WorkerPanic`] without deadlocking or leaking threads, and a
//! checkpointing run must still flush a final snapshot that covers the
//! panicking node's subtree — proven by resuming it to the full golden
//! result.
//!
//! Failpoint configuration is process-global, so every test here serializes
//! on one lock.

use std::sync::Mutex;

use regcluster_core::{
    mine_engine, mine_engine_checkpointed, CheckpointPlan, CoreError, EngineConfig,
    MemoryCheckpointSink, MineControl, MiningParams, NoopObserver,
};
use regcluster_datagen::running_example;

/// Failpoint state is process-global; tests arming it take this lock.
static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn injected_worker_panic_surfaces_as_worker_panic_error() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let matrix = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    for threads in [1usize, 4] {
        regcluster_failpoint::configure("engine::worker=panic@1").unwrap();
        let err = mine_engine(&matrix, &params, &EngineConfig::new(threads))
            .expect_err("an injected worker panic must surface");
        regcluster_failpoint::clear();
        match err {
            CoreError::WorkerPanic(msg) => {
                assert!(msg.contains("injected failpoint panic"), "{msg}");
                assert!(msg.contains("engine::worker"), "{msg}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }
    // The run shut down cleanly: a fresh un-instrumented run on the same
    // inputs succeeds (no poisoned global state, no stuck threads).
    let report = mine_engine(&matrix, &params, &EngineConfig::new(4)).unwrap();
    assert_eq!(report.clusters.len(), 1);
}

#[test]
fn worker_panic_still_flushes_a_resumable_checkpoint() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let matrix = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    let reference = mine_engine(&matrix, &params, &EngineConfig::new(2))
        .unwrap()
        .clusters;
    for threads in [1usize, 2, 4] {
        // Crash a worker a few nodes into the run. The per-node panic
        // containment must restore the consumed node to the frontier, so
        // the final checkpoint loses no subtree.
        regcluster_failpoint::configure("engine::worker=panic@4").unwrap();
        let ck_sink = MemoryCheckpointSink::new();
        let err = mine_engine_checkpointed(
            &matrix,
            &params,
            &EngineConfig::new(threads),
            &MineControl::new(),
            &NoopObserver,
            CheckpointPlan::new(&ck_sink),
        )
        .expect_err("the injected panic must surface");
        regcluster_failpoint::clear();
        assert!(
            matches!(err, CoreError::WorkerPanic(_)),
            "threads={threads}: expected WorkerPanic, got {err:?}"
        );
        let ck = ck_sink
            .last()
            .expect("a panicking checkpointed run must flush a final snapshot");

        // Resuming the crash checkpoint completes to the bit-identical
        // golden result — nothing under the panicking node was lost.
        let resume_sink = MemoryCheckpointSink::new();
        let (report, ck_report) = mine_engine_checkpointed(
            &matrix,
            &params,
            &EngineConfig::new(threads),
            &MineControl::new(),
            &NoopObserver,
            CheckpointPlan::new(&resume_sink).with_resume(ck),
        )
        .expect("resume after crash succeeds");
        assert!(ck_report.resumed);
        assert!(!report.truncated);
        assert_eq!(report.clusters, reference, "threads = {threads}");
    }
}

#[test]
fn observer_panic_is_contained_per_node_and_checkpointed() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // A panic from *user* code (the observer) rides the same containment
    // path as the failpoint: WorkerPanic plus a flushed final snapshot.
    struct ExplodingObserver;
    impl regcluster_core::SyncMineObserver for ExplodingObserver {
        fn cluster_emitted(&self, _cluster: &regcluster_core::RegCluster) {
            panic!("observer exploded");
        }
    }
    let matrix = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    let ck_sink = MemoryCheckpointSink::new();
    let err = mine_engine_checkpointed(
        &matrix,
        &params,
        &EngineConfig::new(2),
        &MineControl::new(),
        &ExplodingObserver,
        CheckpointPlan::new(&ck_sink),
    )
    .expect_err("observer panic surfaces");
    match err {
        CoreError::WorkerPanic(msg) => assert!(msg.contains("observer exploded"), "{msg}"),
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    assert!(ck_sink.last().is_some(), "final snapshot flushed");
}
