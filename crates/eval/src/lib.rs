#![warn(missing_docs)]

//! Evaluation toolkit for mined biclusters.
//!
//! * [`match_score`] — Prelić-style gene/cell match scores between cluster
//!   sets, and the derived **recovery** (how much of the ground truth was
//!   found) and **relevance** (how much of what was found is ground truth)
//!   used by the baseline-comparison experiment;
//! * [`overlap`] — pairwise cell-overlap statistics, reproducing the
//!   "overlap ranges from 0% to 85%" observation of §5.2;
//! * [`go`] — hypergeometric GO-term enrichment (the statistic behind the
//!   yeast GO Term Finder used for Table 2), with a self-contained
//!   log-gamma implementation;
//! * [`report`] — human-readable cluster tables and the per-cluster profile
//!   CSVs used to regenerate Figure 8.

pub mod go;
pub mod match_score;
pub mod overlap;
pub mod report;
pub mod significance;

pub use go::{enrich, top_terms_by_category, Enrichment};
pub use match_score::{cell_match_score, gene_match_score, recovery, relevance, ClusterShape};
pub use overlap::{overlap_percent, overlap_stats, OverlapStats};
pub use significance::{permutation_significance, SignificanceReport};
