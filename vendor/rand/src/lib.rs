//! Offline stub of the `rand` crate: the trait layer only.
//!
//! Provides [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait with
//! `gen_range` / `gen_bool`, and [`seq::SliceRandom`] shuffling. Generators
//! themselves live in consumer crates (see the `rand_chacha` stub).

/// A source of random bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 and builds the
    /// generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a `u64` uniform on `[0, span)` by rejection, so integer ranges are
/// unbiased.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let r = rng.next_u64();
        if r < zone {
            return r % span;
        }
    }
}

/// A `f64` uniform on `[0, 1)` with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let x = self.start + (self.end - self.start) * unit_f64(rng);
        // Guard against rounding up onto the excluded endpoint.
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + (end - start) * unit
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (f64::from(self.start)..f64::from(self.end)).sample_from(rng) as f32
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence helpers over slices.

    use super::{uniform_u64, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weyl sequence: full-period, evenly distributed enough for
            // sanity checks.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..9);
            assert!((3..9).contains(&a));
            let b = rng.gen_range(-1i64..=1);
            assert!((-1..=1).contains(&b));
            let x = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&x));
            let y = rng.gen_range(0.25f64..=0.5);
            assert!((0.25..=0.5).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v != sorted, "shuffle left the slice in order");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Counter(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits");
    }
}
