#![warn(missing_docs)]

//! The **reg-cluster** model and mining algorithm.
//!
//! This crate implements the primary contribution of Xu, Lu, Tung & Wang,
//! *Mining Shifting-and-Scaling Co-Regulation Patterns on Gene Expression
//! Profiles* (ICDE 2006): a biclustering model in which the expression
//! profiles of all member genes over an ordered chain of conditions are
//! related by `d_i = s1 · d_j + s2` — an arbitrary shifting-and-scaling
//! transform whose scaling factor `s1` may be **negative**, capturing
//! anti-correlated (negatively co-regulated) genes — subject to two
//! constraints:
//!
//! * a **regulation constraint** `γ`: every adjacent pair of chain conditions
//!   differs by more than the per-gene threshold `γ_i` (by default
//!   `γ · range(g_i)`, Equation 4 of the paper), enforced through the
//!   [`rwave::RWaveModel`] index of Definition 3.1; and
//! * a **coherence constraint** `ε`: the normalized step ratios
//!   ([`coherence::h_score`], Equation 7) of all member genes agree within
//!   `ε` on every adjacent chain pair, which by Lemma 3.2 is necessary and
//!   sufficient for the shifting-and-scaling relationship.
//!
//! # Quick start
//!
//! ```
//! use regcluster_matrix::ExpressionMatrix;
//! use regcluster_core::{mine, MiningParams};
//!
//! // Table 1 of the paper (the "running dataset").
//! let matrix = ExpressionMatrix::from_rows(
//!     vec!["g1".into(), "g2".into(), "g3".into()],
//!     (1..=10).map(|i| format!("c{i}")).collect(),
//!     vec![
//!         vec![10.0, -14.5, 15.0, 10.5, 0.0, 14.5, -15.0, 0.0, -5.0, -5.0],
//!         vec![20.0, 15.0, 15.0, 43.5, 30.0, 44.0, 45.0, 43.0, 35.0, 20.0],
//!         vec![6.0, -3.8, 8.0, 6.2, 2.0, 7.8, -4.0, 2.0, 0.0, 0.0],
//!     ],
//! )
//! .unwrap();
//!
//! let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
//! let clusters = mine(&matrix, &params).unwrap();
//!
//! // The unique reg-cluster of the running example: chain c7 ↰ c9 ↰ c5 ↰ c1 ↰ c3
//! // with p-members {g1, g3} and n-member {g2} (Figures 2 and 6).
//! assert_eq!(clusters.len(), 1);
//! let c = &clusters[0];
//! assert_eq!(c.chain, vec![6, 8, 4, 0, 2]);
//! assert_eq!(c.p_members, vec![0, 2]);
//! assert_eq!(c.n_members, vec![1]);
//! ```

mod error;
mod intern;
mod scratch;

pub mod bitset;
pub mod chain;
pub mod checkpoint;
pub mod cluster;
pub mod coherence;
pub mod delta;
pub mod engine;
pub mod engine_api;
pub mod metrics;
pub mod miner;
pub mod observer;
pub mod params;
pub mod partition;
pub mod postprocess;
pub mod rwave;
pub mod tables;
pub mod threshold;

pub use chain::RegulationChain;
pub use checkpoint::{
    matrix_fingerprint, CheckpointPlan, CheckpointReport, CheckpointSink, EngineCheckpoint,
    MemoryCheckpointSink, PendingMember, PendingNode,
};
pub use cluster::{RegCluster, ValidationError};
pub use delta::{classify_roots, gene_fingerprints, root_fingerprints, DeltaPlan};
pub use engine::{
    mine_engine, mine_engine_checkpointed, mine_engine_with, mine_prepared_roots_to_sink,
    mine_prepared_roots_to_sink_checkpointed, mine_prepared_to_sink,
    mine_prepared_to_sink_checkpointed, mine_to_sink, CappedSink, ClusterSink, EngineConfig,
    MineControl, MineReport, SplitStrategy, StreamReport, StreamingSink, VecSink,
};
pub use engine_api::{BiclusterEngine, EngineReport};
pub use error::CoreError;
pub use metrics::MetricsObserver;
pub use miner::{
    finalize_clusters, mine, mine_containing, mine_parallel, mine_with_observer, Miner,
};
pub use observer::{
    MineObserver, MiningStats, NoopObserver, PruneRule, SyncMineObserver, TraceEvent, TraceObserver,
};
pub use params::MiningParams;
pub use partition::{partition_roots, range_roots};
pub use scratch::MineWorkspace;
pub use threshold::RegulationThreshold;
