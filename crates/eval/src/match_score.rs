//! Match scores between cluster sets (Prelić et al.-style).
//!
//! A cluster is reduced to its [`ClusterShape`] — sorted gene and condition
//! sets. The **gene match score** of two shapes is the Jaccard similarity of
//! their gene sets; the **cell match score** uses the covered submatrix
//! cells (`genes × conditions`) instead, which also penalizes wrong
//! condition sets. The score of a cluster *set* against another is the
//! average, over the first set, of each cluster's best match in the second:
//!
//! * `recovery(ground_truth, found)` — how completely the planted modules
//!   were rediscovered;
//! * `relevance(found, ground_truth)` — how much of the output corresponds
//!   to planted structure.
//!
//! Both are in `[0, 1]`, with 1.0 meaning a perfect match.

use regcluster_core::RegCluster;
use regcluster_datagen::PlantedCluster;
use regcluster_matrix::{CondId, GeneId};
use serde::{Deserialize, Serialize};

/// A cluster reduced to its gene set and condition set (both sorted).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterShape {
    /// Member genes, sorted ascending.
    pub genes: Vec<GeneId>,
    /// Conditions, sorted ascending.
    pub conds: Vec<CondId>,
}

impl ClusterShape {
    /// Builds a shape from raw sets (sorting and deduplicating).
    pub fn new(mut genes: Vec<GeneId>, mut conds: Vec<CondId>) -> Self {
        genes.sort_unstable();
        genes.dedup();
        conds.sort_unstable();
        conds.dedup();
        Self { genes, conds }
    }
}

impl From<&RegCluster> for ClusterShape {
    fn from(c: &RegCluster) -> Self {
        Self::new(c.genes(), c.chain.clone())
    }
}

impl From<&PlantedCluster> for ClusterShape {
    fn from(p: &PlantedCluster) -> Self {
        Self::new(p.genes.clone(), p.chain.clone())
    }
}

fn intersection_size(a: &[usize], b: &[usize]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Jaccard similarity of the two gene sets.
pub fn gene_match_score(a: &ClusterShape, b: &ClusterShape) -> f64 {
    let inter = intersection_size(&a.genes, &b.genes);
    let union = a.genes.len() + b.genes.len() - inter;
    if union == 0 {
        return 0.0;
    }
    inter as f64 / union as f64
}

/// Jaccard similarity of the two covered cell sets
/// (`genes × conditions`).
pub fn cell_match_score(a: &ClusterShape, b: &ClusterShape) -> f64 {
    let gi = intersection_size(&a.genes, &b.genes);
    let ci = intersection_size(&a.conds, &b.conds);
    let inter = gi * ci;
    let union = a.genes.len() * a.conds.len() + b.genes.len() * b.conds.len() - inter;
    if union == 0 {
        return 0.0;
    }
    inter as f64 / union as f64
}

fn avg_best_match(
    src: &[ClusterShape],
    dst: &[ClusterShape],
    score: impl Fn(&ClusterShape, &ClusterShape) -> f64,
) -> f64 {
    if src.is_empty() {
        return 0.0;
    }
    src.iter()
        .map(|a| dst.iter().map(|b| score(a, b)).fold(0.0f64, f64::max))
        .sum::<f64>()
        / src.len() as f64
}

/// Average best gene-match of each ground-truth cluster in `found`:
/// 1.0 iff every planted cluster is perfectly rediscovered.
///
/// ```
/// use regcluster_eval::{recovery, relevance, ClusterShape};
///
/// let truth = vec![
///     ClusterShape::new(vec![0, 1, 2], vec![0, 1]),
///     ClusterShape::new(vec![5, 6, 7], vec![2, 3]),
/// ];
/// // One planted cluster found exactly, the other missed entirely.
/// let found = vec![ClusterShape::new(vec![0, 1, 2], vec![0, 1])];
/// assert_eq!(recovery(&truth, &found), 0.5);
/// assert_eq!(relevance(&found, &truth), 1.0);
/// ```
pub fn recovery(ground_truth: &[ClusterShape], found: &[ClusterShape]) -> f64 {
    avg_best_match(ground_truth, found, gene_match_score)
}

/// Average best gene-match of each found cluster in the ground truth:
/// 1.0 iff everything reported corresponds to a planted cluster.
pub fn relevance(found: &[ClusterShape], ground_truth: &[ClusterShape]) -> f64 {
    avg_best_match(found, ground_truth, gene_match_score)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(genes: &[usize], conds: &[usize]) -> ClusterShape {
        ClusterShape::new(genes.to_vec(), conds.to_vec())
    }

    #[test]
    fn identical_shapes_score_one() {
        let a = shape(&[1, 2, 3], &[0, 1]);
        assert_eq!(gene_match_score(&a, &a), 1.0);
        assert_eq!(cell_match_score(&a, &a), 1.0);
    }

    #[test]
    fn disjoint_shapes_score_zero() {
        let a = shape(&[1, 2], &[0]);
        let b = shape(&[3, 4], &[0]);
        assert_eq!(gene_match_score(&a, &b), 0.0);
        assert_eq!(cell_match_score(&a, &b), 0.0);
    }

    #[test]
    fn partial_overlap() {
        let a = shape(&[1, 2, 3, 4], &[0, 1]);
        let b = shape(&[3, 4, 5, 6], &[0, 1]);
        assert!((gene_match_score(&a, &b) - 2.0 / 6.0).abs() < 1e-12);
        // cells: 2 shared genes × 2 shared conds = 4; union 8 + 8 − 4 = 12.
        assert!((cell_match_score(&a, &b) - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn cell_score_penalizes_wrong_conditions() {
        let a = shape(&[1, 2], &[0, 1]);
        let b = shape(&[1, 2], &[2, 3]);
        assert_eq!(gene_match_score(&a, &b), 1.0);
        assert_eq!(cell_match_score(&a, &b), 0.0);
    }

    #[test]
    fn recovery_and_relevance() {
        let gt = vec![shape(&[0, 1, 2], &[0, 1]), shape(&[5, 6, 7], &[2, 3])];
        // One planted cluster perfectly found, the other missed; one bogus
        // extra cluster reported.
        let found = vec![shape(&[0, 1, 2], &[0, 1]), shape(&[10, 11], &[4, 5])];
        assert!((recovery(&gt, &found) - 0.5).abs() < 1e-12);
        assert!((relevance(&found, &gt) - 0.5).abs() < 1e-12);
        // Perfect output.
        let perfect: Vec<ClusterShape> = gt.clone();
        assert_eq!(recovery(&gt, &perfect), 1.0);
        assert_eq!(relevance(&perfect, &gt), 1.0);
    }

    #[test]
    fn empty_sets() {
        let gt = vec![shape(&[0], &[0])];
        assert_eq!(recovery(&gt, &[]), 0.0);
        assert_eq!(relevance(&[], &gt), 0.0);
        assert_eq!(recovery(&[], &gt), 0.0);
    }

    #[test]
    fn shape_normalizes_input() {
        let s = ClusterShape::new(vec![3, 1, 3, 2], vec![5, 5, 0]);
        assert_eq!(s.genes, vec![1, 2, 3]);
        assert_eq!(s.conds, vec![0, 5]);
    }

    #[test]
    fn conversions_from_cluster_types() {
        let rc = RegCluster {
            chain: vec![4, 1, 3],
            p_members: vec![2, 0],
            n_members: vec![5],
        };
        let s: ClusterShape = (&rc).into();
        assert_eq!(s.genes, vec![0, 2, 5]);
        assert_eq!(s.conds, vec![1, 3, 4]);
    }
}
