use std::fmt;

/// Errors produced by reg-cluster mining entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A mining parameter is out of its valid domain.
    InvalidParams(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParams(msg) => write!(f, "invalid mining parameters: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}
