//! Property-based verification of the baseline algorithms' output contract:
//! every reported bicluster satisfies its algorithm's *model definition*
//! (recomputed here from the raw matrix, independently of the miner's own
//! bookkeeping), and the reported set is deduplicated — maximal for the
//! enumeration-style miners, free of exact duplicates for the stochastic
//! k-cluster searches (FLOC, Cheng–Church).

use proptest::prelude::*;

use regcluster_baselines::cheng_church::mean_squared_residue;
use regcluster_baselines::op_cluster::condition_groups;
use regcluster_baselines::{
    cheng_church, floc, microcluster, op_cluster, opsm, pcluster, scaling_pcluster, Bicluster,
    ChengChurchParams, FlocParams, MicroClusterParams, OpClusterParams, OpsmParams, PClusterParams,
};
use regcluster_matrix::ExpressionMatrix;

/// A small random matrix with values in [-10, 10].
fn any_matrix() -> impl Strategy<Value = ExpressionMatrix> {
    (3usize..=7, 3usize..=6).prop_flat_map(|(g, c)| {
        prop::collection::vec(-10.0f64..10.0, g * c).prop_map(move |v| {
            ExpressionMatrix::from_flat_unlabeled(g, c, v).expect("finite values")
        })
    })
}

/// A small random matrix with strictly positive values (for the ratio- and
/// log-based models).
fn positive_matrix() -> impl Strategy<Value = ExpressionMatrix> {
    (3usize..=7, 3usize..=6).prop_flat_map(|(g, c)| {
        prop::collection::vec(0.5f64..10.0, g * c).prop_map(move |v| {
            ExpressionMatrix::from_flat_unlabeled(g, c, v).expect("finite values")
        })
    })
}

/// Spread of the per-condition differences `d_i − d_j` — the pairwise
/// pCluster criterion, recomputed from scratch.
fn diff_spread(m: &ExpressionMatrix, i: usize, j: usize, conds: &[usize]) -> f64 {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &c in conds {
        let d = m.value(i, c) - m.value(j, c);
        lo = lo.min(d);
        hi = hi.max(d);
    }
    hi - lo
}

/// Mean squared residue under Cheng–Church's additive model with optional
/// per-row inversion, recomputed from scratch.
fn signed_msr(m: &ExpressionMatrix, bc: &Bicluster, inverted: &[bool]) -> f64 {
    let nr = bc.genes.len() as f64;
    let nc = bc.conds.len() as f64;
    let val = |gi: usize, c: usize| {
        let v = m.value(bc.genes[gi], c);
        if inverted[gi] {
            -v
        } else {
            v
        }
    };
    let mut row_mean = vec![0.0f64; bc.genes.len()];
    let mut col_mean = vec![0.0f64; bc.conds.len()];
    let mut total = 0.0f64;
    for (gi, rm) in row_mean.iter_mut().enumerate() {
        for (ci, &c) in bc.conds.iter().enumerate() {
            let v = val(gi, c);
            *rm += v;
            col_mean[ci] += v;
            total += v;
        }
    }
    for v in &mut row_mean {
        *v /= nc;
    }
    for v in &mut col_mean {
        *v /= nr;
    }
    let overall = total / (nr * nc);
    let mut acc = 0.0;
    for (gi, &rm) in row_mean.iter().enumerate() {
        for (ci, &c) in bc.conds.iter().enumerate() {
            let d = val(gi, c) - rm - col_mean[ci] + overall;
            acc += d * d;
        }
    }
    acc / (nr * nc)
}

/// No cluster may be contained in (or equal to) another one.
fn assert_maximal(clusters: &[Bicluster]) -> Result<(), TestCaseError> {
    for (i, a) in clusters.iter().enumerate() {
        for (j, b) in clusters.iter().enumerate() {
            if i != j {
                prop_assert!(
                    !a.is_contained_in(b),
                    "cluster {i} ({a:?}) is contained in cluster {j} ({b:?})"
                );
            }
        }
    }
    Ok(())
}

proptest! {
    /// pCluster: every gene pair's difference spread is within δ, sizes
    /// respect the minima, and the output is maximal.
    #[test]
    fn pcluster_output_satisfies_model(m in any_matrix(), delta in 0.0f64..3.0) {
        let params = PClusterParams { delta, min_genes: 2, min_conds: 2, ..Default::default() };
        let found = pcluster(&m, &params);
        for bc in &found {
            prop_assert!(bc.n_genes() >= 2 && bc.n_conds() >= 2);
            for (ai, &i) in bc.genes.iter().enumerate() {
                for &j in &bc.genes[ai + 1..] {
                    prop_assert!(diff_spread(&m, i, j, &bc.conds) <= delta + 1e-9);
                }
            }
        }
        assert_maximal(&found)?;
    }

    /// Scaling pCluster: the same spread criterion holds in log₂ space —
    /// i.e. `log₂(d_i / d_j)` wobbles by at most δ within a cluster.
    #[test]
    fn scaling_output_satisfies_model(m in positive_matrix(), delta in 0.0f64..1.0) {
        let params = PClusterParams { delta, min_genes: 2, min_conds: 2, ..Default::default() };
        let found = scaling_pcluster(&m, &params).expect("positive matrix");
        let logged = ExpressionMatrix::from_flat_unlabeled(
            m.n_genes(),
            m.n_conditions(),
            m.flat_values().iter().map(|v| v.log2()).collect(),
        )
        .expect("log of positive values is finite");
        for bc in &found {
            for (ai, &i) in bc.genes.iter().enumerate() {
                for &j in &bc.genes[ai + 1..] {
                    prop_assert!(diff_spread(&logged, i, j, &bc.conds) <= delta + 1e-9);
                }
            }
        }
        assert_maximal(&found)?;
    }

    /// OPSM: all member rows strictly increase along the shared column
    /// order (recovered from any member, here the first).
    #[test]
    fn opsm_output_satisfies_model(m in any_matrix()) {
        let params = OpsmParams { size: 3, beam_width: 50, min_genes: 2, max_models: 20 };
        let found = opsm(&m, &params);
        for bc in &found {
            prop_assert!(bc.n_genes() >= 2 && bc.n_conds() >= 3);
            let first = m.row(bc.genes[0]);
            let mut order = bc.conds.clone();
            order.sort_by(|&a, &b| first[a].total_cmp(&first[b]));
            for &g in &bc.genes {
                let row = m.row(g);
                for w in order.windows(2) {
                    prop_assert!(row[w[0]] < row[w[1]], "row {g} breaks the shared order");
                }
            }
        }
        assert_maximal(&found)?;
    }

    /// OP-Cluster: every member gene's similarity-group ranks strictly
    /// increase along the sequence (recovered from the first member).
    #[test]
    fn op_cluster_output_satisfies_model(m in any_matrix(), mult in 0.0f64..2.0) {
        let params = OpClusterParams {
            group_multiplier: mult,
            min_genes: 2,
            min_conds: 2,
            max_clusters: 1000,
        };
        let found = op_cluster(&m, &params);
        let groups: Vec<Vec<usize>> = (0..m.n_genes())
            .map(|g| condition_groups(m.row(g), mult))
            .collect();
        for bc in &found {
            prop_assert!(bc.n_genes() >= 2 && bc.n_conds() >= 2);
            let mut order = bc.conds.clone();
            order.sort_by_key(|&c| groups[bc.genes[0]][c]);
            for &g in &bc.genes {
                for w in order.windows(2) {
                    prop_assert!(
                        groups[g][w[0]] < groups[g][w[1]],
                        "gene {g} breaks the group order"
                    );
                }
            }
        }
        assert_maximal(&found)?;
    }

    /// MicroCluster: for every condition pair, the member genes' value
    /// ratios agree within the multiplicative tolerance `1 + ε`.
    #[test]
    fn microcluster_output_satisfies_model(m in positive_matrix(), eps in 0.0f64..0.5) {
        let params = MicroClusterParams {
            epsilon: eps,
            min_genes: 2,
            min_conds: 2,
            max_clusters: 1000,
            state_budget: 20_000,
        };
        let found = microcluster(&m, &params);
        for bc in &found {
            prop_assert!(bc.n_genes() >= 2 && bc.n_conds() >= 2);
            for (ai, &a) in bc.conds.iter().enumerate() {
                for &b in &bc.conds[ai + 1..] {
                    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                    for &g in &bc.genes {
                        let r = m.value(g, a) / m.value(g, b);
                        lo = lo.min(r);
                        hi = hi.max(r);
                    }
                    prop_assert!(hi <= lo * (1.0 + eps) + 1e-9);
                }
            }
        }
        assert_maximal(&found)?;
    }

    /// FLOC: every reported δ-cluster's plain additive residue really is
    /// below δ, and the set has no duplicates.
    #[test]
    fn floc_output_satisfies_model(m in any_matrix(), seed in 0u64..64) {
        let params = FlocParams { delta: 0.4, seed, ..Default::default() };
        let found = floc(&m, &params);
        for bc in &found {
            prop_assert!(bc.n_genes() >= params.min_genes);
            prop_assert!(bc.n_conds() >= params.min_conds);
            prop_assert!(mean_squared_residue(&m, bc) <= params.delta + 1e-9);
        }
        for (i, a) in found.iter().enumerate() {
            for b in &found[i + 1..] {
                prop_assert!(a != b, "duplicate FLOC cluster: {a:?}");
            }
        }
    }

    /// Cheng–Church: every reported MSR is below δ; the *first* cluster's
    /// MSR additionally matches an independent recomputation (honoring row
    /// inversions) against the raw matrix — later clusters are mined from
    /// the masked matrix, as in the original algorithm, so their residues
    /// are only meaningful against it. No duplicate clusters.
    #[test]
    fn cheng_church_output_satisfies_model(m in any_matrix(), seed in 0u64..64) {
        let params = ChengChurchParams {
            delta: 0.4,
            n_clusters: 4,
            mask_range: (-10.0, 10.0),
            seed,
            ..Default::default()
        };
        let found = cheng_church(&m, &params);
        for cc in &found {
            prop_assert_eq!(cc.inverted.len(), cc.bicluster.genes.len());
            prop_assert!(cc.msr <= params.delta + 1e-9);
        }
        if let Some(first) = found.first() {
            let recomputed = signed_msr(&m, &first.bicluster, &first.inverted);
            prop_assert!(
                (recomputed - first.msr).abs() <= 1e-6,
                "reported {} vs recomputed {recomputed}",
                first.msr
            );
        }
        for (i, a) in found.iter().enumerate() {
            for b in &found[i + 1..] {
                prop_assert!(
                    a.bicluster != b.bicluster,
                    "duplicate Cheng–Church cluster: {:?}",
                    a.bicluster
                );
            }
        }
    }
}
