//! Command execution.

use std::fmt;

use serde::{Deserialize, Serialize};

use regcluster_core::{
    classify_roots, finalize_clusters, matrix_fingerprint, mine_prepared_roots_to_sink,
    mine_prepared_to_sink, mine_prepared_to_sink_checkpointed, root_fingerprints, CheckpointPlan,
    CheckpointReport, ClusterSink, EngineConfig, EngineReport, MetricsObserver, MineControl, Miner,
    MiningParams, MiningStats, RegCluster, StreamReport, SyncMineObserver, VecSink,
};
use regcluster_datagen::{generate, PlantedCluster};
use regcluster_engines::{build_engine, EngineMetrics, EngineSpec};
use regcluster_eval::{overlap, recovery, relevance, report, ClusterShape};
use regcluster_matrix::{io, missing, ExpressionMatrix};
use regcluster_obs::{MetricsRegistry, MonotonicClock, PhaseSpans};
use regcluster_store::{
    read_checkpoint, CheckpointFile, ClusterStore, Generations, StoreProvenance, StoreWriter,
};

use crate::args::{Command, USAGE};
use crate::serve;

/// A failure while executing a command.
#[derive(Debug)]
pub enum CliError {
    /// File or parse problem on an input matrix.
    Matrix(regcluster_matrix::MatrixError),
    /// Invalid mining parameters.
    Core(regcluster_core::CoreError),
    /// Generator failure.
    Datagen(regcluster_datagen::DatagenError),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// Plain I/O failure.
    Io(std::io::Error),
    /// Cluster-store failure (corrupted file, version mismatch, …).
    Store(regcluster_store::StoreError),
    /// Unsupported or inconsistent file content (e.g. a cluster JSON
    /// written by a newer release).
    Format(String),
    /// Distributed-mining failure (coordinator or worker).
    Cluster(regcluster_cluster::ClusterError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Matrix(e) => write!(f, "matrix error: {e}"),
            CliError::Core(e) => write!(f, "{e}"),
            CliError::Datagen(e) => write!(f, "{e}"),
            CliError::Json(e) => write!(f, "json error: {e}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Store(e) => write!(f, "store error: {e}"),
            CliError::Format(msg) => write!(f, "{msg}"),
            CliError::Cluster(e) => write!(f, "cluster error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<regcluster_matrix::MatrixError> for CliError {
    fn from(e: regcluster_matrix::MatrixError) -> Self {
        CliError::Matrix(e)
    }
}
impl From<regcluster_core::CoreError> for CliError {
    fn from(e: regcluster_core::CoreError) -> Self {
        CliError::Core(e)
    }
}
impl From<regcluster_datagen::DatagenError> for CliError {
    fn from(e: regcluster_datagen::DatagenError) -> Self {
        CliError::Datagen(e)
    }
}
impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<regcluster_store::StoreError> for CliError {
    fn from(e: regcluster_store::StoreError) -> Self {
        CliError::Store(e)
    }
}
impl From<regcluster_cluster::ClusterError> for CliError {
    fn from(e: regcluster_cluster::ClusterError) -> Self {
        CliError::Cluster(e)
    }
}

/// Version stamped into `mine --output` documents. Bump when the schema
/// changes incompatibly; `eval` and `enrich` refuse newer documents rather
/// than silently misreading them.
pub const MINE_OUTPUT_FORMAT_VERSION: u32 = 1;

/// The JSON document written by `mine --output` and read back by `eval`.
///
/// The `Option` fields were added after the first release; they deserialize
/// as `None` from documents written by older versions.
#[derive(Debug, Serialize, Deserialize)]
pub struct MineOutput {
    /// Schema version of this document (`None` in pre-versioning files,
    /// which remain readable).
    pub format_version: Option<u32>,
    /// Engine that mined the clusters (`None` in documents written before
    /// engines existed — those are reg-cluster runs).
    pub engine: Option<String>,
    /// Parameters of the run.
    pub params: MiningParams,
    /// Matrix dimensions, for sanity checks.
    pub n_genes: usize,
    /// Number of conditions.
    pub n_conds: usize,
    /// Worker threads used for the run.
    pub threads: Option<usize>,
    /// Wall-clock mining time in seconds.
    pub elapsed_secs: Option<f64>,
    /// Mean enumeration cost in nanoseconds per search-tree node
    /// (`elapsed_secs · 10⁹ / stats.nodes`) — the headline metric of the
    /// perf harness (see `docs/PERFORMANCE.md`). `None` when the engine
    /// reports no statistics or expanded no nodes.
    pub ns_per_node: Option<f64>,
    /// `true` when the run stopped early on a deadline or cancellation and
    /// the clusters below are a subset of the full result.
    pub truncated: Option<bool>,
    /// Search-effort statistics, including per-rule prune counts.
    pub stats: Option<MiningStats>,
    /// The `.rck` checkpoint this run resumed from (`--resume`).
    pub resumed_from: Option<String>,
    /// The `.rck` path a final/periodic checkpoint was written to during
    /// this run, if any snapshot was flushed.
    pub checkpoint_written: Option<String>,
    /// The mined clusters.
    pub clusters: Vec<RegCluster>,
}

/// Mean per-node enumeration cost of a finished run, when node counts were
/// collected and at least one node was expanded.
fn ns_per_node(elapsed: std::time::Duration, stats: Option<&MiningStats>) -> Option<f64> {
    let nodes = stats?.nodes;
    (nodes > 0).then(|| elapsed.as_secs_f64() * 1e9 / nodes as f64)
}

/// Streams coarse mining progress to stderr: the first cluster prints
/// immediately, later ones at most every 200 ms, so long parallel runs show
/// life without flooding the terminal.
#[derive(Default)]
struct ProgressObserver {
    emitted: std::sync::atomic::AtomicUsize,
    last_print: std::sync::Mutex<Option<std::time::Instant>>,
}

impl SyncMineObserver for ProgressObserver {
    fn cluster_emitted(&self, _cluster: &RegCluster) {
        let n = self
            .emitted
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1;
        let mut last = self
            .last_print
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let due = last.is_none_or(|t| t.elapsed() >= std::time::Duration::from_millis(200));
        if due {
            *last = Some(std::time::Instant::now());
            eprintln!("… {n} clusters emitted");
        }
    }
}

/// The observer every `mine` run reports through: a registry-backed
/// [`MetricsObserver`] (always on — the counters feed `--metrics` /
/// `--metrics-json` snapshots), optionally fanned out to the stderr
/// progress line.
struct MineRunObserver {
    metrics: MetricsObserver,
    progress: Option<ProgressObserver>,
}

impl SyncMineObserver for MineRunObserver {
    fn node_entered(&self, chain: &[regcluster_matrix::CondId], n_p: usize, n_n: usize) {
        SyncMineObserver::node_entered(&self.metrics, chain, n_p, n_n);
    }
    fn pruned(&self, chain: &[regcluster_matrix::CondId], rule: regcluster_core::PruneRule) {
        SyncMineObserver::pruned(&self.metrics, chain, rule);
    }
    fn cluster_emitted(&self, cluster: &RegCluster) {
        SyncMineObserver::cluster_emitted(&self.metrics, cluster);
        if let Some(progress) = &self.progress {
            progress.cluster_emitted(cluster);
        }
    }
}

/// Writes the `--metrics` / `--metrics-json` snapshots, if requested.
fn write_metric_snapshots(
    registry: &MetricsRegistry,
    prom_path: Option<&str>,
    json_path: Option<&str>,
) -> Result<Vec<String>, CliError> {
    let mut notes = Vec::new();
    if let Some(path) = prom_path {
        std::fs::write(path, registry.encode_prometheus())?;
        notes.push(format!("metrics written to {path}\n"));
    }
    if let Some(path) = json_path {
        std::fs::write(path, registry.encode_json())?;
        notes.push(format!("metrics JSON written to {path}\n"));
    }
    Ok(notes)
}

/// Reads a `mine --output` document back, rejecting files stamped by a
/// newer release (whose schema this binary cannot interpret).
fn read_mine_output(path: &str) -> Result<MineOutput, CliError> {
    let doc: MineOutput = serde_json::from_str(&std::fs::read_to_string(path)?)?;
    match doc.format_version {
        Some(v) if v > MINE_OUTPUT_FORMAT_VERSION => Err(CliError::Format(format!(
            "{path}: cluster file has format_version {v}, but this binary supports \
             at most {MINE_OUTPUT_FORMAT_VERSION}; re-mine or upgrade regcluster"
        ))),
        _ => Ok(doc),
    }
}

/// Fans each mined cluster out to the on-disk store writer *and* an
/// in-memory collection (for the table/JSON output), so `mine --store`
/// still prints results. A store write failure makes `accept` return
/// `false`, stopping the engine cooperatively; the underlying error is
/// surfaced by [`StoreWriter::finish`].
struct TeeSink<'a> {
    store: &'a StoreWriter,
    collected: &'a VecSink,
}

impl ClusterSink for TeeSink<'_> {
    fn accept(&self, cluster: RegCluster) -> bool {
        let stored = self.store.accept(cluster.clone());
        self.collected.accept(cluster) && stored
    }
}

fn load_matrix(path: &str, impute_mode: &str) -> Result<ExpressionMatrix, CliError> {
    match impute_mode {
        "none" => Ok(io::read_matrix_file(path)?),
        mode => {
            let ragged = io::read_ragged_file(path)?;
            let strategy = match mode {
                "row-mean" => missing::Imputation::RowMean,
                "col-mean" => missing::Imputation::ColumnMean,
                other => unreachable!("parser rejects impute mode {other}"),
            };
            Ok(missing::impute(&ragged, strategy)?)
        }
    }
}

/// The `mine` flags a non-default engine run needs (checkpointing is
/// excluded: the parser refuses it for anything but reg-cluster).
struct EngineMineArgs<'a> {
    engine: &'a str,
    input: &'a str,
    params: &'a MiningParams,
    delta: Option<f64>,
    threads: usize,
    deadline_secs: Option<f64>,
    progress: bool,
    output: Option<&'a str>,
    impute: &'a str,
    stats: bool,
    store: Option<&'a str>,
    metrics: Option<&'a str>,
    metrics_json: Option<&'a str>,
}

/// `mine --engine <name>` for every engine except the default: builds the
/// engine from the registry and drives it through the same pipeline as the
/// reg-cluster path — phase spans, metrics registry, deadline control,
/// streaming sinks and the `.rcs` store (stamped with the engine's name
/// and native parameters as provenance).
fn run_engine_mine(args: EngineMineArgs<'_>) -> Result<String, CliError> {
    let registry = MetricsRegistry::new();
    let clock = MonotonicClock::new();
    let spans = PhaseSpans::new(&registry);
    let observer = MineRunObserver {
        metrics: MetricsObserver::register(&registry),
        progress: args.progress.then(ProgressObserver::default),
    };
    let engine_metrics = EngineMetrics::register(&registry, args.engine);

    let m = spans.time(&clock, "load", || load_matrix(args.input, args.impute))?;
    let spec = EngineSpec {
        min_genes: args.params.min_genes,
        min_conds: args.params.min_conds,
        delta: args.delta,
        threads: args.threads,
        max_clusters: args.params.max_clusters,
        maximal_only: args.params.maximal_only,
        ..EngineSpec::default()
    };
    let engine = build_engine(args.engine, &spec)?;
    let control = match args.deadline_secs {
        Some(s) => MineControl::with_deadline(std::time::Duration::from_secs_f64(s)),
        None => MineControl::new(),
    };
    let start = std::time::Instant::now();
    let post_filtered = args.params.maximal_only || args.params.max_clusters.is_some();
    let (clusters, report, store_note) = match args.store {
        None => {
            let sink = VecSink::new();
            let report = {
                let _span = spans.span(&clock, "enumeration");
                engine.run(&m, &sink, &control, &observer)?
            };
            let mut clusters = sink.into_clusters();
            spans.time(&clock, "postprocess", || {
                finalize_clusters(&mut clusters, args.params)
            });
            (clusters, report, None)
        }
        Some(store_path) => {
            let writer = StoreWriter::create_with_engine(
                store_path,
                m.gene_names(),
                m.condition_names(),
                args.params,
                engine.name(),
                &engine.params_json(),
            )?;
            let (clusters, report) = if post_filtered {
                // The post-filters need the full result set, so the store
                // must hold the filtered clusters: collect, filter, write.
                let sink = VecSink::new();
                let report = {
                    let _span = spans.span(&clock, "enumeration");
                    engine.run(&m, &sink, &control, &observer)?
                };
                let mut clusters = sink.into_clusters();
                spans.time(&clock, "postprocess", || {
                    finalize_clusters(&mut clusters, args.params)
                });
                spans.time(&clock, "store_write", || {
                    clusters.iter().try_for_each(|c| writer.write_cluster(c))
                })?;
                (clusters, report)
            } else {
                // Common case: clusters stream to disk as the engine emits
                // them, composing with deadlines and cancellation.
                let collected = VecSink::new();
                let tee = TeeSink {
                    store: &writer,
                    collected: &collected,
                };
                let report = {
                    let _span = spans.span(&clock, "enumeration");
                    engine.run(&m, &tee, &control, &observer)?
                };
                let mut clusters = collected.into_clusters();
                spans.time(&clock, "postprocess", || {
                    finalize_clusters(&mut clusters, args.params)
                });
                (clusters, report)
            };
            let summary = spans.time(&clock, "store_write", || writer.finish())?;
            let note = format!(
                "store written to {store_path} ({} clusters, {} bytes)\n",
                summary.n_clusters, summary.file_bytes
            );
            (clusters, report, Some(note))
        }
    };
    engine_metrics.record(&report);
    let elapsed = start.elapsed();

    let mut text = format!(
        "{}: {} biclusters in {:.3}s from {} genes × {} conditions\n",
        args.engine,
        clusters.len(),
        elapsed.as_secs_f64(),
        m.n_genes(),
        m.n_conditions()
    );
    if report.truncated {
        text.push_str("run interrupted (deadline, cancellation or budget): results are partial\n");
    }
    if args.stats {
        match &report.stats {
            Some(s) => {
                text.push_str(&s.summary());
                text.push('\n');
            }
            None => text.push_str(&format!(
                "{} reports no search-effort statistics\n",
                args.engine
            )),
        }
    }
    if let Some(note) = store_note {
        text.push_str(&note);
    }
    for note in write_metric_snapshots(&registry, args.metrics, args.metrics_json)? {
        text.push_str(&note);
    }
    match args.output {
        Some(path) => {
            let doc = MineOutput {
                format_version: Some(MINE_OUTPUT_FORMAT_VERSION),
                engine: Some(args.engine.to_string()),
                params: args.params.clone(),
                n_genes: m.n_genes(),
                n_conds: m.n_conditions(),
                threads: Some(args.threads),
                elapsed_secs: Some(elapsed.as_secs_f64()),
                ns_per_node: ns_per_node(elapsed, report.stats.as_ref()),
                truncated: Some(report.truncated),
                stats: report.stats.clone(),
                resumed_from: None,
                checkpoint_written: None,
                clusters,
            };
            std::fs::write(path, serde_json::to_string_pretty(&doc)?)?;
            text.push_str(&format!("clusters written to {path}\n"));
        }
        None => {
            text.push_str("id\tgenes\tconds\n");
            for (i, c) in clusters.iter().enumerate() {
                text.push_str(&format!("{i}\t{}\t{}\n", c.n_genes(), c.n_conditions()));
            }
        }
    }
    Ok(text)
}

/// Where a reg-cluster `--store` argument points: a plain `.rcs` file, or
/// a generations directory (`mine --store <dir>`) whose next generation
/// the run writes and then publishes atomically.
enum StoreTarget {
    /// An ordinary single-file store.
    File(std::path::PathBuf),
    /// `gen-<N>.rcs` inside a generations directory, published (the
    /// `CURRENT` pointer swung and stale files swept) after the writer
    /// seals it.
    Generation { gens: Generations, generation: u64 },
}

impl StoreTarget {
    /// `spec` is a generations directory iff it names an *existing*
    /// directory — a typo'd file path must not silently become a lineage.
    fn resolve(spec: &str) -> Result<Self, CliError> {
        let path = std::path::Path::new(spec);
        if path.is_dir() {
            let gens = Generations::open(path)?;
            let generation = gens.next()?;
            Ok(StoreTarget::Generation { gens, generation })
        } else {
            Ok(StoreTarget::File(path.to_path_buf()))
        }
    }

    /// The file the [`StoreWriter`] should create.
    fn write_path(&self) -> std::path::PathBuf {
        match self {
            StoreTarget::File(p) => p.clone(),
            StoreTarget::Generation { gens, generation } => gens.path_for(*generation),
        }
    }

    /// The generation number to stamp into the store's provenance.
    /// Single-file stores default to one past the run they replace
    /// (`previous`, 0 when there is none); directory targets use their
    /// slot in the lineage.
    fn generation(&self, previous: Option<u64>) -> u64 {
        match self {
            StoreTarget::File(_) => previous.map_or(0, |g| g + 1),
            StoreTarget::Generation { generation, .. } => *generation,
        }
    }

    /// Publishes a sealed generation (no-op for file targets); returns
    /// the note to append to the run's output.
    fn publish(&self) -> Result<Option<String>, CliError> {
        match self {
            StoreTarget::File(_) => Ok(None),
            StoreTarget::Generation { gens, generation } => {
                gens.publish(*generation)?;
                Ok(Some(format!(
                    "generation {generation} published in {}\n",
                    gens.dir().display()
                )))
            }
        }
    }
}

/// Opens the store a `--delta-from` argument names: either a sealed
/// `.rcs` file or a generations directory (whose published generation is
/// used). Returns the store and the resolved path for messages.
fn open_previous_store(spec: &str) -> Result<(ClusterStore, String), CliError> {
    let path = std::path::Path::new(spec);
    let resolved = if path.is_dir() {
        match Generations::open(path)?.current_path()? {
            Some(p) => p,
            None => {
                return Err(CliError::Format(format!(
                    "{spec}: generations directory has no published generation \
                     to delta-mine against"
                )))
            }
        }
    } else {
        path.to_path_buf()
    };
    let store = ClusterStore::open(&resolved)?;
    Ok((store, resolved.display().to_string()))
}

/// The `mine` flags a `--delta-from` run needs. Checkpointing is
/// excluded — the parser refuses it alongside a delta mine.
struct DeltaMineArgs<'a> {
    input: &'a str,
    params: &'a MiningParams,
    threads: usize,
    deadline_secs: Option<f64>,
    progress: bool,
    output: Option<&'a str>,
    impute: &'a str,
    stats: bool,
    store: Option<&'a str>,
    metrics: Option<&'a str>,
    metrics_json: Option<&'a str>,
    delta_from: &'a str,
}

/// `mine --delta-from <prev>`: re-mine only the enumeration subtrees whose
/// input rows changed since `prev` was mined, splicing every other
/// subtree's clusters out of the previous store verbatim. The result is
/// bit-identical to a full re-mine (see `crates/core/src/delta.rs` for the
/// soundness argument and `crates/core/tests/delta_golden.rs` for the
/// golden proof); on the store path the spliced records are copied as raw
/// bytes, never deserialized.
fn run_delta_mine(args: DeltaMineArgs<'_>) -> Result<String, CliError> {
    let registry = MetricsRegistry::new();
    let clock = MonotonicClock::new();
    let spans = PhaseSpans::new(&registry);
    let observer = MineRunObserver {
        metrics: MetricsObserver::register(&registry),
        progress: args.progress.then(ProgressObserver::default),
    };
    let engine_metrics = EngineMetrics::register(&registry, "reg-cluster");

    let m = spans.time(&clock, "load", || load_matrix(args.input, args.impute))?;
    let (prev, prev_path) = open_previous_store(args.delta_from)?;

    // A previous run is only reusable when it mined the same problem:
    // same engine, same parameters, same matrix shape — and it must carry
    // root fingerprints to diff against.
    if let Some(engine) = prev.engine() {
        if engine != "reg-cluster" {
            return Err(CliError::Format(format!(
                "{prev_path}: store was mined by engine {engine:?}; --delta-from \
                 needs a reg-cluster store"
            )));
        }
    }
    if (prev.n_genes() as usize, prev.n_conds() as usize) != (m.n_genes(), m.n_conditions()) {
        return Err(CliError::Format(format!(
            "{prev_path}: store covers {} genes × {} conditions but the matrix \
             has {} × {}; delta mining needs identical dimensions",
            prev.n_genes(),
            prev.n_conds(),
            m.n_genes(),
            m.n_conditions()
        )));
    }
    // The post-filters (--maximal-only / --max-clusters) act across root
    // boundaries, so they run as a post-pass over the spliced union: the
    // previous store must hold the *unfiltered* enumeration, and the
    // remaining parameters must match it exactly.
    let post_filtered = args.params.maximal_only || args.params.max_clusters.is_some();
    if prev.params().maximal_only || prev.params().max_clusters.is_some() {
        return Err(CliError::Format(format!(
            "{prev_path}: store is post-filtered (--maximal-only/--max-clusters); \
             delta mining splices per root and needs the unfiltered store — \
             re-run the full mine without post-filters to create one"
        )));
    }
    let mut base_params = args.params.clone();
    base_params.maximal_only = false;
    base_params.max_clusters = None;
    if prev.params() != &base_params {
        return Err(CliError::Format(format!(
            "{prev_path}: store was mined with different parameters; delta \
             mining requires the identical parameter set (store: {:?}, \
             requested: {:?})",
            prev.params(),
            base_params
        )));
    }
    let Some(prev_fps) = prev.root_fingerprints() else {
        return Err(CliError::Format(format!(
            "{prev_path}: store carries no root fingerprints (it predates delta \
             mining); run a full mine with --store to create a delta-capable one"
        )));
    };

    let miner = spans.time(&clock, "index_build", || Miner::new(&m, args.params))?;
    let new_fps = root_fingerprints(&miner);
    let plan = classify_roots(prev_fps, &new_fps)?;
    let unchanged = plan.unchanged_mask();

    // Clusters to carry over: everything rooted in an unchanged subtree.
    // `cluster_root` reads one u32 from the packed record — no decode.
    let mut spliced: Vec<u32> = Vec::new();
    for id in 0..prev.n_clusters() {
        if unchanged[prev.cluster_root(id)? as usize] {
            spliced.push(id);
        }
    }

    let control = match args.deadline_secs {
        Some(s) => MineControl::with_deadline(std::time::Duration::from_secs_f64(s)),
        None => MineControl::new(),
    };
    let config = EngineConfig::new(args.threads);
    let start = std::time::Instant::now();

    let (clusters, stat_counters, truncated, stopped_by_sink, store_note) = match args.store {
        None => {
            let sink = VecSink::new();
            let report = {
                let _span = spans.span(&clock, "enumeration");
                mine_prepared_roots_to_sink(
                    &miner,
                    &plan.dirty,
                    &config,
                    &control,
                    &observer,
                    &sink,
                )?
            };
            let mut clusters = sink.into_clusters();
            for &id in &spliced {
                clusters.push(prev.cluster(id)?);
            }
            spans.time(&clock, "postprocess", || {
                finalize_clusters(&mut clusters, args.params)
            });
            (
                clusters,
                report.stats,
                report.truncated,
                report.stopped_by_sink,
                None,
            )
        }
        Some(store_spec) => {
            let target = StoreTarget::resolve(store_spec)?;
            let provenance = StoreProvenance {
                engine: Some("reg-cluster".to_string()),
                engine_params: Some(serde_json::to_string(args.params)?),
                generation: target.generation(Some(prev.generation())),
                matrix_fingerprint: Some(matrix_fingerprint(&m)),
                root_fingerprints: Some(new_fps.clone()),
            };
            let write_path = target.write_path();
            let writer = StoreWriter::create_with_provenance(
                &write_path,
                m.gene_names(),
                m.condition_names(),
                args.params,
                &provenance,
            )?;
            let (clusters, report) = if post_filtered {
                // The post-filters see the whole spliced union, so the
                // store must hold the filtered set: collect fresh and
                // spliced clusters, filter, then write it out.
                let sink = VecSink::new();
                let report = {
                    let _span = spans.span(&clock, "enumeration");
                    mine_prepared_roots_to_sink(
                        &miner,
                        &plan.dirty,
                        &config,
                        &control,
                        &observer,
                        &sink,
                    )?
                };
                let mut clusters = sink.into_clusters();
                for &id in &spliced {
                    clusters.push(prev.cluster(id)?);
                }
                spans.time(&clock, "postprocess", || {
                    finalize_clusters(&mut clusters, args.params)
                });
                spans.time(&clock, "store_write", || {
                    clusters.iter().try_for_each(|c| writer.write_cluster(c))
                })?;
                (clusters, report)
            } else {
                // Splice first: raw packed records, straight from the old
                // file to the new one.
                spans.time(&clock, "store_write", || {
                    spliced
                        .iter()
                        .try_for_each(|&id| writer.write_raw_record(prev.record_bytes(id)?))
                })?;
                // Then stream the dirty subtrees' fresh clusters on top.
                let collected = VecSink::new();
                let tee = TeeSink {
                    store: &writer,
                    collected: &collected,
                };
                let report = {
                    let _span = spans.span(&clock, "enumeration");
                    mine_prepared_roots_to_sink(
                        &miner,
                        &plan.dirty,
                        &config,
                        &control,
                        &observer,
                        &tee,
                    )?
                };
                let mut clusters = collected.into_clusters();
                for &id in &spliced {
                    clusters.push(prev.cluster(id)?);
                }
                spans.time(&clock, "postprocess", || {
                    finalize_clusters(&mut clusters, args.params)
                });
                (clusters, report)
            };
            // Sealing canonicalizes ids, so splice order does not matter.
            let summary = spans.time(&clock, "store_write", || writer.finish())?;
            let mut note = format!(
                "store written to {} ({} clusters, {} bytes)\n",
                write_path.display(),
                summary.n_clusters,
                summary.file_bytes
            );
            if let Some(published) = target.publish()? {
                note.push_str(&published);
            }
            (
                clusters,
                report.stats,
                report.truncated,
                report.stopped_by_sink,
                Some(note),
            )
        }
    };
    engine_metrics.record(&EngineReport {
        n_emitted: stat_counters.emitted,
        truncated,
        stopped_by_sink,
        stats: None,
    });
    let elapsed = start.elapsed();

    let mut text = format!(
        "delta-mined {} reg-clusters from {} genes × {} conditions in {:.3}s on {} thread{}\n",
        clusters.len(),
        m.n_genes(),
        m.n_conditions(),
        elapsed.as_secs_f64(),
        args.threads,
        if args.threads == 1 { "" } else { "s" }
    );
    text.push_str(&format!(
        "{} of {} roots dirty: re-enumerated them, spliced {} clusters from \
         {} unchanged subtrees of {prev_path}\n",
        plan.dirty.len(),
        new_fps.len(),
        spliced.len(),
        plan.unchanged.len()
    ));
    if truncated {
        text.push_str("deadline expired: results are partial\n");
    }
    if args.stats {
        text.push_str(&stat_counters.summary());
        text.push('\n');
    }
    if !clusters.is_empty() {
        text.push_str(&report::overlap_summary(&clusters));
        text.push('\n');
    }
    if let Some(note) = store_note {
        text.push_str(&note);
    }
    for note in write_metric_snapshots(&registry, args.metrics, args.metrics_json)? {
        text.push_str(&note);
    }
    match args.output {
        Some(path) => {
            let doc = MineOutput {
                format_version: Some(MINE_OUTPUT_FORMAT_VERSION),
                engine: Some("reg-cluster".to_string()),
                params: args.params.clone(),
                n_genes: m.n_genes(),
                n_conds: m.n_conditions(),
                threads: Some(args.threads),
                elapsed_secs: Some(elapsed.as_secs_f64()),
                ns_per_node: ns_per_node(elapsed, Some(&stat_counters)),
                truncated: Some(truncated),
                stats: Some(stat_counters),
                resumed_from: None,
                checkpoint_written: None,
                clusters,
            };
            std::fs::write(path, serde_json::to_string_pretty(&doc)?)?;
            text.push_str(&format!("clusters written to {path}\n"));
        }
        None => {
            text.push_str(&report::cluster_table(&m, &clusters));
        }
    }
    Ok(text)
}

/// Executes a parsed command and returns the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] describing the failure; the binary prints it to
/// stderr and exits non-zero.
pub fn run(command: &Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Info { input } => {
            let m = io::read_matrix_file(input)?;
            let (lo, hi) = m
                .flat_values()
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
                    (l.min(v), h.max(v))
                });
            Ok(format!(
                "{}: {} genes × {} conditions, values in [{lo}, {hi}]\n",
                input,
                m.n_genes(),
                m.n_conditions()
            ))
        }
        Command::RWave { input, gene, gamma } => {
            let m = io::read_matrix_file(input)?;
            let Some(g) = m.gene_index(gene) else {
                return Err(CliError::Matrix(
                    regcluster_matrix::MatrixError::IndexOutOfBounds(format!(
                        "gene {gene:?} not found"
                    )),
                ));
            };
            let row = m.row(g);
            let threshold = regcluster_core::RegulationThreshold::FractionOfRange(*gamma);
            threshold.validate()?;
            let gamma_i = threshold.resolve(row);
            let model = regcluster_core::rwave::RWaveModel::build(row, gamma_i);
            let order: Vec<String> = (0..model.len())
                .map(|r| {
                    format!(
                        "{}({})",
                        m.condition_name(model.cond_at(r)),
                        model.value_at(r)
                    )
                })
                .collect();
            let pointers: Vec<String> = model
                .pointers()
                .iter()
                .map(|p| {
                    format!(
                        "{} ↰ {}",
                        m.condition_name(model.cond_at(p.lo as usize)),
                        m.condition_name(model.cond_at(p.hi as usize))
                    )
                })
                .collect();
            Ok(format!(
                "RWave^{gamma} model of {gene} (γ_i = {gamma_i}):\norder:    {}\npointers: {}\n",
                order.join(" ≤ "),
                if pointers.is_empty() {
                    "(none)".to_string()
                } else {
                    pointers.join(", ")
                }
            ))
        }
        Command::Mine {
            input,
            engine,
            params,
            delta,
            threads,
            deadline_secs,
            progress,
            output,
            impute,
            stats,
            store,
            metrics,
            metrics_json,
            checkpoint,
            checkpoint_every_secs,
            resume,
            delta_from,
        } => {
            // Non-default engines run through the BiclusterEngine registry:
            // same matrix loading, sinks, deadline control, observer,
            // metrics and store plumbing — no bespoke per-algorithm wiring.
            if engine != "reg-cluster" {
                return run_engine_mine(EngineMineArgs {
                    engine,
                    input,
                    params,
                    delta: *delta,
                    threads: *threads,
                    deadline_secs: *deadline_secs,
                    progress: *progress,
                    output: output.as_deref(),
                    impute,
                    stats: *stats,
                    store: store.as_deref(),
                    metrics: metrics.as_deref(),
                    metrics_json: metrics_json.as_deref(),
                });
            }
            // Incremental runs re-mine only the subtrees whose input
            // changed since a previous store; everything else (including
            // checkpointing, which the parser refuses alongside it) stays
            // on the full-mine path below.
            if let Some(prev) = delta_from {
                return run_delta_mine(DeltaMineArgs {
                    input,
                    params,
                    threads: *threads,
                    deadline_secs: *deadline_secs,
                    progress: *progress,
                    output: output.as_deref(),
                    impute,
                    stats: *stats,
                    store: store.as_deref(),
                    metrics: metrics.as_deref(),
                    metrics_json: metrics_json.as_deref(),
                    delta_from: prev,
                });
            }
            // One registry per run: phase spans + the mining observer feed
            // it, and --metrics/--metrics-json snapshot it at the end.
            let registry = MetricsRegistry::new();
            let clock = MonotonicClock::new();
            let spans = PhaseSpans::new(&registry);
            let observer = MineRunObserver {
                metrics: MetricsObserver::register(&registry),
                progress: progress.then(ProgressObserver::default),
            };
            let engine_metrics = EngineMetrics::register(&registry, "reg-cluster");

            let m = spans.time(&clock, "load", || load_matrix(input, impute))?;
            let start = std::time::Instant::now();
            let control = match deadline_secs {
                Some(s) => MineControl::with_deadline(std::time::Duration::from_secs_f64(*s)),
                None => MineControl::new(),
            };
            let config = EngineConfig::new(*threads);
            // Building the RWave^γ models is its own phase, so enter the
            // engine with a prepared miner instead of mine_engine_with.
            let miner = spans.time(&clock, "index_build", || Miner::new(&m, params))?;

            // Crash-safe runs: --checkpoint (or --resume, whose path then
            // doubles as the snapshot sink) persist the enumeration
            // frontier to a .rck file on any stop; --resume seeds the run
            // from one. See docs/ROBUSTNESS.md.
            let ck_path = checkpoint.as_deref().or(resume.as_deref());
            let ck_file = ck_path.map(CheckpointFile::new);
            let resume_ck = match resume {
                Some(path) => Some(read_checkpoint(path)?),
                None => None,
            };
            let run_engine =
                |sink: &dyn ClusterSink| -> Result<(StreamReport, CheckpointReport), CliError> {
                    match &ck_file {
                        Some(file) => {
                            let mut plan = CheckpointPlan::new(file);
                            if let Some(secs) = checkpoint_every_secs {
                                plan = plan.with_every(std::time::Duration::from_secs_f64(*secs));
                            }
                            if let Some(ck) = resume_ck.clone() {
                                plan = plan.with_resume(ck);
                            }
                            Ok(mine_prepared_to_sink_checkpointed(
                                &miner, &config, &control, &observer, sink, plan,
                            )?)
                        }
                        None => {
                            let report =
                                mine_prepared_to_sink(&miner, &config, &control, &observer, sink)?;
                            Ok((
                                report,
                                CheckpointReport {
                                    resumed: false,
                                    checkpoints_written: 0,
                                },
                            ))
                        }
                    }
                };

            let (clusters, stat_counters, truncated, stopped_by_sink, ck_report, store_note) =
                match store {
                    None => {
                        let sink = VecSink::new();
                        let (report, ck_report) = {
                            let _span = spans.span(&clock, "enumeration");
                            run_engine(&sink)?
                        };
                        let mut clusters = sink.into_clusters();
                        spans.time(&clock, "postprocess", || {
                            finalize_clusters(&mut clusters, params)
                        });
                        (
                            clusters,
                            report.stats,
                            report.truncated,
                            report.stopped_by_sink,
                            ck_report,
                            None,
                        )
                    }
                    Some(store_spec) => {
                        // Full mines stamp delta provenance (matrix + root
                        // fingerprints, generation) so a later
                        // `mine --delta-from` can diff against this store.
                        // A directory-valued --store writes the lineage's
                        // next generation and publishes it after sealing.
                        let target = StoreTarget::resolve(store_spec)?;
                        let write_path = target.write_path();
                        let writer = StoreWriter::create_with_provenance(
                            &write_path,
                            m.gene_names(),
                            m.condition_names(),
                            params,
                            &StoreProvenance {
                                engine: Some("reg-cluster".to_string()),
                                engine_params: Some(serde_json::to_string(params)?),
                                generation: target.generation(None),
                                matrix_fingerprint: Some(matrix_fingerprint(&m)),
                                root_fingerprints: Some(root_fingerprints(&miner)),
                            },
                        )?;
                        let post_filtered = params.maximal_only || params.max_clusters.is_some();
                        let (clusters, stats, truncated, stopped, ck_report) = if post_filtered {
                            // maximal-only / max-clusters prune *after* the full
                            // enumeration, so the store must hold the filtered
                            // set: collect first, then write it out.
                            let sink = VecSink::new();
                            let (report, ck_report) = {
                                let _span = spans.span(&clock, "enumeration");
                                run_engine(&sink)?
                            };
                            let mut clusters = sink.into_clusters();
                            spans.time(&clock, "postprocess", || {
                                finalize_clusters(&mut clusters, params)
                            });
                            spans.time(&clock, "store_write", || {
                                clusters.iter().try_for_each(|c| writer.write_cluster(c))
                            })?;
                            (
                                clusters,
                                report.stats,
                                report.truncated,
                                report.stopped_by_sink,
                                ck_report,
                            )
                        } else {
                            // Common case: clusters stream to disk as the engine
                            // finds them, composing with deadlines/cancellation.
                            // Store writes overlap enumeration here, so the
                            // store_write span covers only the final seal.
                            let collected = VecSink::new();
                            let tee = TeeSink {
                                store: &writer,
                                collected: &collected,
                            };
                            let (report, ck_report) = {
                                let _span = spans.span(&clock, "enumeration");
                                run_engine(&tee)?
                            };
                            let mut clusters = collected.into_clusters();
                            spans.time(&clock, "postprocess", || {
                                finalize_clusters(&mut clusters, params)
                            });
                            (
                                clusters,
                                report.stats,
                                report.truncated,
                                report.stopped_by_sink,
                                ck_report,
                            )
                        };
                        // finish() seals the file and surfaces any write error
                        // that made the sink refuse clusters mid-run.
                        let summary = spans.time(&clock, "store_write", || writer.finish())?;
                        let mut note = format!(
                            "store written to {} ({} clusters, {} bytes)\n",
                            write_path.display(),
                            summary.n_clusters,
                            summary.file_bytes
                        );
                        if let Some(published) = target.publish()? {
                            note.push_str(&published);
                        }
                        (clusters, stats, truncated, stopped, ck_report, Some(note))
                    }
                };
            engine_metrics.record(&EngineReport {
                n_emitted: stat_counters.emitted,
                truncated,
                stopped_by_sink,
                stats: None,
            });
            let elapsed = start.elapsed();
            let mut text = format!(
                "mined {} reg-clusters from {} genes × {} conditions in {:.3}s on {} thread{}\n",
                clusters.len(),
                m.n_genes(),
                m.n_conditions(),
                elapsed.as_secs_f64(),
                threads,
                if *threads == 1 { "" } else { "s" }
            );
            if truncated {
                text.push_str("deadline expired: results are partial\n");
            }
            let resumed_from = ck_report
                .resumed
                .then(|| resume.clone().unwrap_or_default());
            let checkpoint_written = (ck_report.checkpoints_written > 0)
                .then(|| ck_path.unwrap_or_default().to_string());
            if let Some(path) = &resumed_from {
                text.push_str(&format!("resumed from checkpoint {path}\n"));
            }
            if let Some(path) = &checkpoint_written {
                text.push_str(&format!(
                    "checkpoint written to {path} ({} snapshot{})\n",
                    ck_report.checkpoints_written,
                    if ck_report.checkpoints_written == 1 {
                        ""
                    } else {
                        "s"
                    }
                ));
            }
            if *stats {
                text.push_str(&stat_counters.summary());
                text.push('\n');
            }
            if !clusters.is_empty() {
                text.push_str(&report::overlap_summary(&clusters));
                text.push('\n');
            }
            if let Some(note) = store_note {
                text.push_str(&note);
            }
            for note in
                write_metric_snapshots(&registry, metrics.as_deref(), metrics_json.as_deref())?
            {
                text.push_str(&note);
            }
            match output {
                Some(path) => {
                    let doc = MineOutput {
                        format_version: Some(MINE_OUTPUT_FORMAT_VERSION),
                        engine: Some("reg-cluster".to_string()),
                        params: params.clone(),
                        n_genes: m.n_genes(),
                        n_conds: m.n_conditions(),
                        threads: Some(*threads),
                        elapsed_secs: Some(elapsed.as_secs_f64()),
                        ns_per_node: ns_per_node(elapsed, Some(&stat_counters)),
                        truncated: Some(truncated),
                        stats: Some(stat_counters),
                        resumed_from: resumed_from.clone(),
                        checkpoint_written: checkpoint_written.clone(),
                        clusters,
                    };
                    std::fs::write(path, serde_json::to_string_pretty(&doc)?)?;
                    text.push_str(&format!("clusters written to {path}\n"));
                }
                None => {
                    text.push_str(&report::cluster_table(&m, &clusters));
                }
            }
            Ok(text)
        }
        Command::Generate {
            output,
            config,
            ground_truth,
        } => {
            let data = generate(config)?;
            io::write_matrix_file(&data.matrix, output)?;
            let mut text = format!(
                "wrote {} genes × {} conditions with {} embedded clusters to {output}\n",
                config.n_genes,
                config.n_conds,
                data.planted.len()
            );
            if let Some(path) = ground_truth {
                std::fs::write(path, serde_json::to_string_pretty(&data.planted)?)?;
                text.push_str(&format!("ground truth written to {path}\n"));
            }
            Ok(text)
        }
        Command::GenerateYeast {
            output,
            go,
            modules,
            seed,
        } => {
            let cfg = regcluster_datagen::YeastConfig {
                seed: *seed,
                ..Default::default()
            };
            let data = regcluster_datagen::yeast_like(&cfg)?;
            io::write_matrix_file(&data.matrix, output)?;
            let mut text = format!(
                "wrote simulated yeast benchmark ({} genes × {} conditions, {} modules) to {output}\n",
                cfg.n_genes,
                cfg.n_conds,
                data.modules.len()
            );
            if let Some(path) = go {
                std::fs::write(path, serde_json::to_string_pretty(&data.go)?)?;
                text.push_str(&format!("GO database written to {path}\n"));
            }
            if let Some(path) = modules {
                std::fs::write(path, serde_json::to_string_pretty(&data.modules)?)?;
                text.push_str(&format!("module ground truth written to {path}\n"));
            }
            Ok(text)
        }
        Command::Enrich { clusters, go, top } => {
            let found = read_mine_output(clusters)?;
            let db: regcluster_datagen::GoDatabase =
                serde_json::from_str(&std::fs::read_to_string(go)?)?;
            let mut ordered: Vec<&RegCluster> = found.clusters.iter().collect();
            ordered.sort_by_key(|c| std::cmp::Reverse(c.n_cells()));
            ordered.truncate(*top);
            let rows: Vec<(String, Vec<regcluster_eval::Enrichment>)> = ordered
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let enr = regcluster_eval::enrich(&db, &c.genes());
                    let tops = regcluster_eval::top_terms_by_category(&enr)
                        .into_iter()
                        .cloned()
                        .collect();
                    (
                        format!("cluster {i} ({}×{})", c.n_genes(), c.n_conditions()),
                        tops,
                    )
                })
                .collect();
            Ok(report::go_table(&rows))
        }
        Command::Eval {
            clusters,
            ground_truth,
        } => {
            // Either a `mine --output` JSON document or a `.rcs` store from
            // any engine scores the same way.
            let found: Vec<RegCluster> = if clusters.ends_with(".rcs") {
                let cs = ClusterStore::open(clusters)?;
                cs.iter().collect::<Result<_, _>>()?
            } else {
                read_mine_output(clusters)?.clusters
            };
            let truth: Vec<PlantedCluster> =
                serde_json::from_str(&std::fs::read_to_string(ground_truth)?)?;
            let found_shapes: Vec<ClusterShape> = found.iter().map(ClusterShape::from).collect();
            let truth_shapes: Vec<ClusterShape> = truth.iter().map(ClusterShape::from).collect();
            let rec = recovery(&truth_shapes, &found_shapes);
            let rel = relevance(&found_shapes, &truth_shapes);
            let stats = overlap::overlap_stats(&found);
            Ok(format!(
                "found {} clusters vs {} planted\nrecovery  {rec:.4}\nrelevance {rel:.4}\nmax pairwise cell overlap {:.1}%\n",
                found.len(),
                truth.len(),
                stats.max_percent
            ))
        }
        Command::Query {
            store,
            genes,
            conds,
            min_genes,
            min_conds,
            top,
            json,
        } => {
            let cs = ClusterStore::open(store)?;
            let mut q = regcluster_store::Query::new();
            if let Some(specs) = genes {
                q.genes = serve::resolve_genes(&cs, specs).map_err(CliError::Format)?;
            }
            if let Some(specs) = conds {
                q.conds = serve::resolve_conds(&cs, specs).map_err(CliError::Format)?;
            }
            q.min_genes = *min_genes;
            q.min_conds = *min_conds;
            q.top_k = *top;
            let ids = cs.query(&q)?;
            if *json {
                let clusters: Vec<serve::ClusterDoc> = ids
                    .iter()
                    .map(|&id| serve::cluster_doc(&cs, id))
                    .collect::<Result<_, _>>()?;
                // Wrapped in an object so consumers see where the clusters
                // came from: mining engine and store generation ride along
                // with every export.
                #[derive(Serialize)]
                struct QueryOutput {
                    engine: Option<String>,
                    generation: u64,
                    total: usize,
                    clusters: Vec<serve::ClusterDoc>,
                }
                let doc = QueryOutput {
                    engine: cs.engine().map(str::to_string),
                    generation: cs.generation(),
                    total: clusters.len(),
                    clusters,
                };
                Ok(format!("{}\n", serde_json::to_string_pretty(&doc)?))
            } else {
                let mut text = format!("{} of {} clusters match\n", ids.len(), cs.n_clusters());
                if !ids.is_empty() {
                    text.push_str("id\tgenes\tconds\tchain\n");
                }
                for &id in &ids {
                    let c = cs.cluster(id)?;
                    let chain: Vec<&str> = c
                        .chain
                        .iter()
                        .map(|&i| cs.cond_names()[i].as_str())
                        .collect();
                    text.push_str(&format!(
                        "{id}\t{}\t{}\t{}\n",
                        c.n_genes(),
                        c.n_conditions(),
                        chain.join(" < ")
                    ));
                }
                Ok(text)
            }
        }
        Command::Serve {
            store,
            watch,
            port,
            threads,
            requests,
            queue,
            watch_interval_ms,
        } => {
            // --watch serves a generations directory: open the published
            // generation now, let the server's watcher hot-swap to later
            // ones as `mine --store <dir>` publishes them.
            let (cs, source) = if *watch {
                let gens = Generations::open(store)?;
                let Some(path) = gens.current_path()? else {
                    return Err(CliError::Format(format!(
                        "{store}: generations directory has no published generation \
                         to serve (run `mine --store {store}` first)"
                    )));
                };
                (
                    ClusterStore::open(&path)?,
                    format!("{} (watching for new generations)", path.display()),
                )
            } else {
                (ClusterStore::open(store)?, store.clone())
            };
            let cs = std::sync::Arc::new(cs);
            let config = serve::ServeConfig {
                port: *port,
                threads: *threads,
                max_requests: *requests,
                queue_capacity: *queue,
                watch: watch.then(|| std::path::PathBuf::from(store)),
                watch_poll: std::time::Duration::from_millis(*watch_interval_ms),
                ..serve::ServeConfig::default()
            };
            let n_clusters = cs.n_clusters();
            let server = serve::Server::start(cs, &config)?;
            // Announced on stderr so it shows before the blocking wait.
            eprintln!(
                "serving {n_clusters} clusters from {source} on http://127.0.0.1:{}/ \
                 ({} worker thread{})",
                server.port(),
                config.threads.max(1),
                if config.threads.max(1) == 1 { "" } else { "s" }
            );
            let report = server.wait();
            Ok(format!("served {} requests\n", report.requests))
        }
        Command::Coordinator {
            input,
            params,
            store,
            work_dir,
            port,
            leases,
            lease_ttl_ms,
            linger,
        } => {
            let report =
                regcluster_cluster::run_coordinator(&regcluster_cluster::CoordinatorConfig {
                    matrix_path: input.into(),
                    params: params.clone(),
                    store_dir: store.into(),
                    work_dir: work_dir.into(),
                    port: *port,
                    n_leases: *leases,
                    lease_ttl: std::time::Duration::from_millis(*lease_ttl_ms),
                    linger: *linger,
                })?;
            Ok(format!(
                "generation {} published in {store} ({} clusters merged from \
                 {} leases, {} reassignment{})\n",
                report.generation,
                report.n_clusters,
                report.n_leases,
                report.reassignments,
                if report.reassignments == 1 { "" } else { "s" }
            ))
        }
        Command::Worker {
            input,
            coordinator,
            work_dir,
            threads,
            worker_id,
            poll_ms,
            checkpoint_every_secs,
        } => {
            let worker_id = worker_id
                .clone()
                .unwrap_or_else(|| format!("worker-{}", std::process::id()));
            let report = regcluster_cluster::run_worker(&regcluster_cluster::WorkerConfig {
                coordinator: coordinator.clone(),
                matrix_path: input.into(),
                work_dir: work_dir.into(),
                worker_id,
                threads: *threads,
                checkpoint_every: std::time::Duration::from_secs_f64(*checkpoint_every_secs),
                poll: std::time::Duration::from_millis(*poll_ms),
            })?;
            Ok(format!(
                "mined {} lease{} ({} resumed from checkpoints), uploaded {} \
                 shard{}, lost {} (upload retries: {} conn-refused, {} shed)\n",
                report.leases_mined,
                if report.leases_mined == 1 { "" } else { "s" },
                report.leases_resumed,
                report.shards_uploaded,
                if report.shards_uploaded == 1 { "" } else { "s" },
                report.leases_lost,
                report.upload_conn_refused,
                report.upload_retry_after
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("regcluster-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&Command::Help).unwrap();
        assert!(out.contains("regcluster mine"));
    }

    #[test]
    fn generate_mine_eval_roundtrip() {
        let dir = tmpdir();
        let matrix = dir.join("m.tsv");
        let truth = dir.join("gt.json");
        let found = dir.join("found.json");

        let cmd = parse_args(&sv(&[
            "generate",
            "--output",
            matrix.to_str().unwrap(),
            "--genes",
            "200",
            "--conds",
            "14",
            "--clusters",
            "2",
            "--gene-frac",
            "0.05",
            "--seed",
            "5",
            "--ground-truth",
            truth.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("2 embedded clusters"), "{out}");

        let cmd = parse_args(&sv(&[
            "mine",
            "--input",
            matrix.to_str().unwrap(),
            "--min-genes",
            "3",
            "--min-conds",
            "4",
            "--gamma",
            "0.1",
            "--epsilon",
            "0.01",
            "--output",
            found.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("mined"), "{out}");

        let cmd = parse_args(&sv(&[
            "eval",
            "--clusters",
            found.to_str().unwrap(),
            "--ground-truth",
            truth.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("recovery"), "{out}");
        // The planted clusters should be fully recovered.
        let rec_line = out.lines().find(|l| l.starts_with("recovery")).unwrap();
        let rec: f64 = rec_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(rec > 0.99, "recovery {rec} too low:\n{out}");
    }

    #[test]
    fn mine_prints_table_without_output_file() {
        let dir = tmpdir();
        let matrix = dir.join("running.tsv");
        let m = regcluster_datagen::running_example();
        regcluster_matrix::io::write_matrix_file(&m, &matrix).unwrap();
        let cmd = parse_args(&sv(&[
            "mine",
            "--input",
            matrix.to_str().unwrap(),
            "--min-genes",
            "3",
            "--min-conds",
            "5",
            "--gamma",
            "0.15",
            "--epsilon",
            "0.1",
            "--stats",
        ]))
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("mined 1 reg-clusters"), "{out}");
        assert!(out.contains("c7 < c9 < c5 < c1 < c3"), "{out}");
        assert!(out.contains("nodes"), "stats requested: {out}");
    }

    #[test]
    fn mine_with_imputation_handles_missing_values() {
        let dir = tmpdir();
        let path = dir.join("holes.tsv");
        std::fs::write(&path, "GENE\tc1\tc2\tc3\ng1\t1\tNA\t3\ng2\t2\t2.5\t4\n").unwrap();
        let cmd = parse_args(&sv(&[
            "mine",
            "--input",
            path.to_str().unwrap(),
            "--min-genes",
            "2",
            "--min-conds",
            "2",
            "--gamma",
            "0.1",
            "--epsilon",
            "1.0",
            "--impute",
            "row-mean",
        ]))
        .unwrap();
        assert!(run(&cmd).is_ok());
        // Without imputation the same file must fail.
        let cmd = parse_args(&sv(&["mine", "--input", path.to_str().unwrap()])).unwrap();
        assert!(run(&cmd).is_err());
    }

    #[test]
    fn info_reports_dimensions() {
        let dir = tmpdir();
        let path = dir.join("info.tsv");
        let m = regcluster_datagen::running_example();
        regcluster_matrix::io::write_matrix_file(&m, &path).unwrap();
        let out = run(&Command::Info {
            input: path.to_str().unwrap().into(),
        })
        .unwrap();
        assert!(out.contains("3 genes × 10 conditions"), "{out}");
        assert!(out.contains("[-15, 45]"), "{out}");
    }

    #[test]
    fn yeast_generate_mine_enrich_pipeline() {
        let dir = tmpdir();
        let matrix = dir.join("yeast.tsv");
        let go = dir.join("go.json");
        let found = dir.join("yfound.json");

        // Small seed-controlled run would still be 2884 genes; use the
        // library directly for a small dataset but exercise the CLI
        // round-trip for enrich on its files.
        let cfg = regcluster_datagen::YeastConfig {
            n_genes: 400,
            n_modules: 3,
            genes_per_module: (20, 25),
            ..Default::default()
        };
        let data = regcluster_datagen::yeast_like(&cfg).unwrap();
        regcluster_matrix::io::write_matrix_file(&data.matrix, &matrix).unwrap();
        std::fs::write(&go, serde_json::to_string(&data.go).unwrap()).unwrap();

        let cmd = parse_args(&sv(&[
            "mine",
            "--input",
            matrix.to_str().unwrap(),
            "--min-genes",
            "20",
            "--min-conds",
            "6",
            "--gamma",
            "0.05",
            "--epsilon",
            "1.0",
            "--output",
            found.to_str().unwrap(),
        ]))
        .unwrap();
        run(&cmd).unwrap();

        let cmd = parse_args(&sv(&[
            "enrich",
            "--clusters",
            found.to_str().unwrap(),
            "--go",
            go.to_str().unwrap(),
            "--top",
            "2",
        ]))
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("cluster 0"), "{out}");
        assert!(out.contains("p="), "{out}");
    }

    #[test]
    fn generate_yeast_writes_all_artifacts() {
        // The full 2884×17 generation is fast; exercise the real subcommand.
        let dir = tmpdir();
        let matrix = dir.join("full-yeast.tsv");
        let go = dir.join("full-go.json");
        let modules = dir.join("full-modules.json");
        let cmd = parse_args(&sv(&[
            "generate-yeast",
            "--output",
            matrix.to_str().unwrap(),
            "--go",
            go.to_str().unwrap(),
            "--modules",
            modules.to_str().unwrap(),
            "--seed",
            "9",
        ]))
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("2884 genes × 17 conditions"), "{out}");
        assert!(go.exists() && modules.exists());
        let m = regcluster_matrix::io::read_matrix_file(&matrix).unwrap();
        assert_eq!(m.n_genes(), 2884);
    }

    #[test]
    fn baseline_subcommand_runs_each_algorithm() {
        let dir = tmpdir();
        let path = dir.join("baseline.tsv");
        // A matrix with a clear shifting family so pcluster finds something.
        let base = [1.0f64, 4.0, 2.0, 8.0, 5.0];
        let rows: Vec<Vec<f64>> = (0..5)
            .map(|i| base.iter().map(|v| v + i as f64).collect())
            .collect();
        let genes = (0..5).map(|i| format!("g{i}")).collect();
        let conds = (0..5).map(|i| format!("c{i}")).collect();
        let m = regcluster_matrix::ExpressionMatrix::from_rows(genes, conds, rows).unwrap();
        regcluster_matrix::io::write_matrix_file(&m, &path).unwrap();

        for algo in [
            "pcluster",
            "scaling",
            "opsm",
            "op-cluster",
            "cheng-church",
            "floc",
        ] {
            let cmd = parse_args(&sv(&[
                "baseline",
                "--input",
                path.to_str().unwrap(),
                "--algorithm",
                algo,
                "--delta",
                "0.2",
                "--min-genes",
                "3",
                "--min-conds",
                "3",
            ]))
            .unwrap();
            let out = run(&cmd).unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert!(out.contains(algo), "{out}");
        }
        // pcluster specifically must find the 5-gene shifting family.
        let cmd = parse_args(&sv(&[
            "baseline",
            "--input",
            path.to_str().unwrap(),
            "--algorithm",
            "pcluster",
            "--delta",
            "0.001",
            "--min-genes",
            "5",
            "--min-conds",
            "5",
        ]))
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("1 biclusters"), "{out}");
        // Unknown algorithm is a parse error.
        assert!(parse_args(&sv(&["baseline", "--input", "x", "--algorithm", "magic"])).is_err());
    }

    #[test]
    fn rwave_prints_model() {
        let dir = tmpdir();
        let path = dir.join("rwave.tsv");
        let m = regcluster_datagen::running_example();
        regcluster_matrix::io::write_matrix_file(&m, &path).unwrap();
        let cmd = parse_args(&sv(&[
            "rwave",
            "--input",
            path.to_str().unwrap(),
            "--gene",
            "g1",
            "--gamma",
            "0.15",
        ]))
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("γ_i = 4.5"), "{out}");
        assert!(out.contains("c2 ↰ c9"), "{out}");
        assert!(out.contains("c1 ↰ c3"), "{out}");
        // Unknown gene errors cleanly.
        let cmd = parse_args(&sv(&[
            "rwave",
            "--input",
            path.to_str().unwrap(),
            "--gene",
            "nope",
        ]))
        .unwrap();
        assert!(run(&cmd).is_err());
    }

    /// `mine --output` stamps a format version; readers accept current and
    /// legacy documents and reject ones from the future.
    #[test]
    fn mine_output_version_roundtrip_and_future_rejection() {
        let dir = tmpdir();
        let matrix = dir.join("ver.tsv");
        let found = dir.join("ver-found.json");
        let m = regcluster_datagen::running_example();
        regcluster_matrix::io::write_matrix_file(&m, &matrix).unwrap();
        let cmd = parse_args(&sv(&[
            "mine",
            "--input",
            matrix.to_str().unwrap(),
            "--min-genes",
            "3",
            "--min-conds",
            "5",
            "--gamma",
            "0.15",
            "--epsilon",
            "0.1",
            "--output",
            found.to_str().unwrap(),
        ]))
        .unwrap();
        run(&cmd).unwrap();

        // Round-trip: the stamp is written and read back.
        let doc = read_mine_output(found.to_str().unwrap()).unwrap();
        assert_eq!(doc.format_version, Some(MINE_OUTPUT_FORMAT_VERSION));
        assert_eq!(doc.clusters.len(), 1);

        // A document from a future release is refused with a clear error.
        let raw = std::fs::read_to_string(&found).unwrap();
        let needle = format!("\"format_version\": {MINE_OUTPUT_FORMAT_VERSION}");
        let future = raw.replacen(&needle, "\"format_version\": 99", 1);
        assert_ne!(future, raw, "format_version must appear in the JSON");
        let future_path = dir.join("ver-future.json");
        std::fs::write(&future_path, &future).unwrap();
        let err = read_mine_output(future_path.to_str().unwrap()).unwrap_err();
        assert!(matches!(err, CliError::Format(_)), "{err}");
        assert!(err.to_string().contains("format_version 99"), "{err}");

        // eval and enrich go through the same gate.
        let eval_cmd = Command::Eval {
            clusters: future_path.to_str().unwrap().into(),
            ground_truth: found.to_str().unwrap().into(),
        };
        assert!(matches!(run(&eval_cmd), Err(CliError::Format(_))));

        // A pre-versioning document (field null/absent) still reads.
        let legacy = raw.replacen(&needle, "\"format_version\": null", 1);
        let legacy_path = dir.join("ver-legacy.json");
        std::fs::write(&legacy_path, &legacy).unwrap();
        let doc = read_mine_output(legacy_path.to_str().unwrap()).unwrap();
        assert_eq!(doc.format_version, None);
    }

    /// `mine --metrics` / `--metrics-json` snapshot the run's registry:
    /// phase timings plus per-`PruneRule` subtree-kill counters for the
    /// paper's running example (Figure 6 annotates exactly which rules
    /// fire on that tree).
    #[test]
    fn mine_metrics_snapshot_has_phases_and_prune_counters() {
        let dir = tmpdir();
        let matrix = dir.join("metrics.tsv");
        let prom = dir.join("metrics.prom");
        let json = dir.join("metrics.json");
        let m = regcluster_datagen::running_example();
        regcluster_matrix::io::write_matrix_file(&m, &matrix).unwrap();
        let cmd = parse_args(&sv(&[
            "mine",
            "--input",
            matrix.to_str().unwrap(),
            "--min-genes",
            "3",
            "--min-conds",
            "5",
            "--gamma",
            "0.15",
            "--epsilon",
            "0.1",
            "--metrics",
            prom.to_str().unwrap(),
            "--metrics-json",
            json.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("metrics written to"), "{out}");
        assert!(out.contains("metrics JSON written to"), "{out}");

        let text = std::fs::read_to_string(&prom).unwrap();
        // Every pruning rule gets a series, whether or not it fired.
        for rule in regcluster_core::PruneRule::ALL {
            assert!(
                text.contains(&format!(
                    "regcluster_mine_pruned_subtrees_total{{rule=\"{}\"}}",
                    rule.as_label()
                )),
                "missing {rule:?} series:\n{text}"
            );
        }
        // Figure 6: coherence pruning fires on the running example.
        let coherence = text
            .lines()
            .find(|l| l.contains("rule=\"coherence\""))
            .unwrap();
        let count: u64 = coherence.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(count > 0, "coherence pruning must fire: {coherence}");
        assert!(
            text.contains("regcluster_mine_clusters_emitted_total 1"),
            "{text}"
        );
        // All five pipeline phases ran (no store → store_write has 0 runs
        // but its series still exists).
        for phase in regcluster_obs::span::PHASES {
            assert!(
                text.contains(&format!(
                    "regcluster_phase_duration_seconds_total{{phase=\"{phase}\"}}"
                )),
                "missing phase {phase:?}:\n{text}"
            );
        }
        assert!(text.contains("regcluster_phase_runs_total{phase=\"enumeration\"} 1"));
        assert!(text.contains("regcluster_phase_runs_total{phase=\"store_write\"} 0"));

        // The JSON twin is stamped with the snapshot schema version.
        let json_text = std::fs::read_to_string(&json).unwrap();
        assert!(
            json_text.contains(&format!(
                "\"format_version\": {}",
                regcluster_obs::SNAPSHOT_FORMAT_VERSION
            )),
            "{json_text}"
        );
        assert!(json_text.contains("regcluster_mine_pruned_subtrees_total"));
        serde_json::parse_value_str(&json_text).expect("metrics JSON must be valid JSON");
    }

    /// `mine --store` streams the clusters into a queryable store whose
    /// contents match the JSON output exactly.
    #[test]
    fn mine_store_writes_queryable_store_matching_output() {
        let dir = tmpdir();
        let matrix = dir.join("store.tsv");
        let found = dir.join("store-found.json");
        let store = dir.join("store.rcs");
        let m = regcluster_datagen::running_example();
        regcluster_matrix::io::write_matrix_file(&m, &matrix).unwrap();
        let cmd = parse_args(&sv(&[
            "mine",
            "--input",
            matrix.to_str().unwrap(),
            "--min-genes",
            "3",
            "--min-conds",
            "5",
            "--gamma",
            "0.15",
            "--epsilon",
            "0.1",
            "--threads",
            "2",
            "--output",
            found.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("store written to"), "{out}");

        let doc = read_mine_output(found.to_str().unwrap()).unwrap();
        let cs = ClusterStore::open(&store).unwrap();
        let stored: Vec<RegCluster> = cs.iter().collect::<Result<_, _>>().unwrap();
        assert_eq!(stored, doc.clusters, "store and JSON output agree");
        assert_eq!(cs.params(), &doc.params, "provenance params survive");

        // The offline query subcommand works against it.
        let cmd = parse_args(&sv(&[
            "query",
            "--store",
            store.to_str().unwrap(),
            "--gene",
            "g1",
            "--min-conds",
            "5",
        ]))
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("1 of 1 clusters match"), "{out}");
        // JSON mode resolves names.
        let cmd = parse_args(&sv(&[
            "query",
            "--store",
            store.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("\"chain_names\""), "{out}");
        // Unknown gene is a clean error.
        let cmd = parse_args(&sv(&[
            "query",
            "--store",
            store.to_str().unwrap(),
            "--gene",
            "nope",
        ]))
        .unwrap();
        assert!(matches!(run(&cmd), Err(CliError::Format(_))));
    }

    /// `mine --store --maximal-only` must store the filtered set, not the
    /// raw emission set.
    #[test]
    fn mine_store_respects_post_filters() {
        let dir = tmpdir();
        let matrix = dir.join("postf.tsv");
        let store = dir.join("postf.rcs");
        let m = regcluster_datagen::running_example();
        regcluster_matrix::io::write_matrix_file(&m, &matrix).unwrap();
        let cmd = parse_args(&sv(&[
            "mine",
            "--input",
            matrix.to_str().unwrap(),
            "--min-genes",
            "2",
            "--min-conds",
            "3",
            "--gamma",
            "0.15",
            "--epsilon",
            "0.1",
            "--maximal-only",
            "--store",
            store.to_str().unwrap(),
        ]))
        .unwrap();
        run(&cmd).unwrap();
        let cs = ClusterStore::open(&store).unwrap();
        let stored: Vec<RegCluster> = cs.iter().collect::<Result<_, _>>().unwrap();
        // Recompute the reference with the same post-filter applied.
        let mut params = regcluster_core::MiningParams::new(2, 3, 0.15, 0.1)
            .unwrap()
            .with_maximal_only();
        params = params
            .with_threshold(regcluster_core::RegulationThreshold::FractionOfRange(0.15))
            .unwrap();
        let expected = regcluster_core::mine(&m, &params).unwrap();
        assert_eq!(stored, expected);
        for c in &stored {
            assert!(
                !stored
                    .iter()
                    .any(|other| other != c && c.is_subcluster_of(other)),
                "non-maximal cluster leaked into the store"
            );
        }
    }

    /// Writes a synthetic matrix, returning its path; `tweak` lets a test
    /// re-measure one gene before writing.
    fn write_delta_matrix(path: &std::path::Path, tweak: bool) {
        let cfg = regcluster_datagen::SyntheticConfig {
            n_genes: 60,
            n_conds: 12,
            n_clusters: 2,
            cluster_gene_frac: 0.1,
            noise_sigma: 0.0,
            seed: 11,
            ..Default::default()
        };
        let data = regcluster_datagen::generate(&cfg).unwrap();
        let mut rows: Vec<Vec<f64>> = (0..data.matrix.n_genes())
            .map(|g| data.matrix.row(g).to_vec())
            .collect();
        if tweak {
            for v in &mut rows[7] {
                *v = *v * 1.05 + 0.25;
            }
        }
        let genes = data.matrix.gene_names().to_vec();
        let conds = data.matrix.condition_names().to_vec();
        let m = regcluster_matrix::ExpressionMatrix::from_rows(genes, conds, rows).unwrap();
        regcluster_matrix::io::write_matrix_file(&m, path).unwrap();
    }

    const DELTA_MINE_FLAGS: [&str; 8] = [
        "--min-genes",
        "4",
        "--min-conds",
        "4",
        "--gamma",
        "0.1",
        "--epsilon",
        "0.05",
    ];

    fn mine_cmd(extra: &[&str]) -> Command {
        let mut argv = vec!["mine"];
        argv.extend_from_slice(&DELTA_MINE_FLAGS);
        argv.extend_from_slice(extra);
        parse_args(&sv(&argv)).unwrap()
    }

    /// `mine --delta-from` against a previous store is bit-identical to a
    /// full re-mine of the new matrix, and the generations-directory flow
    /// (full mine → gen-0, delta mine → gen-1, CURRENT swung) works
    /// end-to-end through the CLI layer.
    #[test]
    fn delta_mine_matches_full_remine_and_publishes_generations() {
        let dir = tmpdir().join(format!("delta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let before = dir.join("before.tsv");
        let after = dir.join("after.tsv");
        write_delta_matrix(&before, false);
        write_delta_matrix(&after, true);
        let gens_dir = dir.join("lineage");
        std::fs::create_dir_all(&gens_dir).unwrap();
        let full_after = dir.join("full-after.rcs");

        // Full mine of the old matrix into the lineage → generation 0.
        let out = run(&mine_cmd(&[
            "--input",
            before.to_str().unwrap(),
            "--store",
            gens_dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("generation 0 published"), "{out}");
        let gens = Generations::open(&gens_dir).unwrap();
        assert_eq!(gens.current().unwrap(), Some(0));

        // Delta mine of the re-measured matrix against the lineage → gen-1.
        let out = run(&mine_cmd(&[
            "--input",
            after.to_str().unwrap(),
            "--delta-from",
            gens_dir.to_str().unwrap(),
            "--store",
            gens_dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("delta-mined"), "{out}");
        assert!(out.contains("generation 1 published"), "{out}");
        assert_eq!(gens.current().unwrap(), Some(1));

        // Reference: a from-scratch mine of the new matrix.
        run(&mine_cmd(&[
            "--input",
            after.to_str().unwrap(),
            "--store",
            full_after.to_str().unwrap(),
        ]))
        .unwrap();

        let delta_store = ClusterStore::open(gens.path_for(1)).unwrap();
        let full_store = ClusterStore::open(&full_after).unwrap();
        let delta: Vec<RegCluster> = delta_store.iter().collect::<Result<_, _>>().unwrap();
        let full: Vec<RegCluster> = full_store.iter().collect::<Result<_, _>>().unwrap();
        assert!(!full.is_empty(), "reference mine found nothing");
        assert_eq!(delta, full, "delta mine must equal a full re-mine");
        assert_eq!(delta_store.generation(), 1);
        assert!(delta_store.root_fingerprints().is_some());
        assert_eq!(
            delta_store.root_fingerprints(),
            full_store.root_fingerprints(),
            "both stores fingerprint the same matrix"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The delta path refuses stores it cannot soundly splice from:
    /// foreign engines, different parameters, different dimensions.
    #[test]
    fn delta_mine_rejects_incompatible_previous_stores() {
        let dir = tmpdir().join(format!("delta-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let matrix = dir.join("m.tsv");
        write_delta_matrix(&matrix, false);
        let store = dir.join("prev.rcs");
        run(&mine_cmd(&[
            "--input",
            matrix.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
        ]))
        .unwrap();

        // Different parameters.
        let cmd = parse_args(&sv(&[
            "mine",
            "--input",
            matrix.to_str().unwrap(),
            "--min-genes",
            "5",
            "--delta-from",
            store.to_str().unwrap(),
        ]))
        .unwrap();
        let err = run(&cmd).unwrap_err();
        assert!(matches!(err, CliError::Format(_)), "{err}");
        assert!(err.to_string().contains("parameters"), "{err}");

        // A store from another engine.
        let foreign = dir.join("foreign.rcs");
        let cmd = parse_args(&sv(&[
            "mine",
            "--input",
            matrix.to_str().unwrap(),
            "--engine",
            "pcluster",
            "--min-genes",
            "3",
            "--min-conds",
            "3",
            "--store",
            foreign.to_str().unwrap(),
        ]))
        .unwrap();
        run(&cmd).unwrap();
        let err = run(&mine_cmd(&[
            "--input",
            matrix.to_str().unwrap(),
            "--delta-from",
            foreign.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("reg-cluster"), "{err}");

        // An empty lineage has nothing to delta against.
        let empty = dir.join("empty-lineage");
        std::fs::create_dir_all(&empty).unwrap();
        let err = run(&mine_cmd(&[
            "--input",
            matrix.to_str().unwrap(),
            "--delta-from",
            empty.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("no published generation"), "{err}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `query --json` wraps the matches in an object carrying the store's
    /// provenance: engine and generation.
    #[test]
    fn query_json_carries_engine_and_generation() {
        let dir = tmpdir().join(format!("queryjson-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let matrix = dir.join("m.tsv");
        write_delta_matrix(&matrix, false);
        let store = dir.join("q.rcs");
        run(&mine_cmd(&[
            "--input",
            matrix.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
        ]))
        .unwrap();
        let cmd = parse_args(&sv(&[
            "query",
            "--store",
            store.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("\"engine\": \"reg-cluster\""), "{out}");
        assert!(out.contains("\"generation\": 0"), "{out}");
        assert!(out.contains("\"total\""), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_files_error_cleanly() {
        let err = run(&Command::Info {
            input: "/nonexistent/m.tsv".into(),
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Matrix(_)));
    }
}
