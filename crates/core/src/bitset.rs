//! Packed `u64` bitsets over condition ids — the CandiSet representation.
//!
//! The enumeration hot path marks candidate extension conditions in a
//! [`BitMask`]: one bit per condition, packed 64 to a `u64` word. Set
//! algebra then runs word-at-a-time — candidate accumulation is
//! `mask |= suffix[s] & !suffix[k]` over word lanes (see
//! [`BitMask::or_range_masked`]), membership is a shift-and-test, and
//! iteration walks set bits in ascending order via
//! [`u64::trailing_zeros`], which is what keeps the bitset path's output
//! byte-identical to the old `Vec<bool>` scan (same candidate order, same
//! downstream arithmetic).
//!
//! The word layout is the conventional little-endian-in-words one: bit `i`
//! lives in word `i / 64` at position `i % 64`. Helper free functions
//! ([`intersect_into`], [`popcount`], [`from_indices`], [`indices`]) expose
//! the same layout for tests and benches; the property tests assert
//! [`intersect_into`] agrees with a sorted-`Vec` merge intersection on
//! random sets, including at the 63/64/65 and 127/128/129 word boundaries.

/// Bits per storage word.
pub const WORD_BITS: usize = 64;

/// Number of `u64` words needed to cover `n_bits` bits.
#[inline]
pub const fn words_for(n_bits: usize) -> usize {
    n_bits.div_ceil(WORD_BITS)
}

/// A grow-only packed bitset keyed by condition id.
///
/// Buffers are sized by [`BitMask::prepare`] and never shrink, so reusing
/// one mask across every node of a traversal allocates nothing in the
/// steady state (asserted by the workspace allocation tests).
#[derive(Debug, Default, Clone)]
pub struct BitMask {
    words: Vec<u64>,
}

impl BitMask {
    /// A mask already covering `n_bits` bits, all zero.
    pub fn with_bits(n_bits: usize) -> Self {
        BitMask {
            words: vec![0; words_for(n_bits)],
        }
    }

    /// Grows the mask to cover `n_bits` bits (never shrinks).
    pub fn prepare(&mut self, n_bits: usize) {
        let need = words_for(n_bits);
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
    }

    /// Zeroes every word (capacity retained).
    #[inline]
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Sets bit `i`. The mask must already cover `i` (see
    /// [`BitMask::prepare`]).
    #[inline]
    pub fn set(&mut self, i: usize) {
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// True when bit `i` is set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// True when any bit is set.
    #[inline]
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> usize {
        popcount(&self.words)
    }

    /// The backing words (low bit of word 0 is bit 0).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Word-parallel accumulate of a rank range: `self |= lo & !hi`, where
    /// `lo` and `hi` are suffix masks (`lo ⊇ hi`), so the contribution is
    /// exactly the bits in `lo` but not in `hi`. This is the CandiSet
    /// union-of-intersections kernel: one AND + ANDN + OR per word lane,
    /// no per-bit work. Slices may be shorter than the mask (missing
    /// words contribute nothing).
    #[inline]
    pub fn or_range_masked(&mut self, lo: &[u64], hi: &[u64]) {
        debug_assert!(lo.len() >= hi.len());
        for (i, w) in self.words.iter_mut().enumerate() {
            let l = lo.get(i).copied().unwrap_or(0);
            let h = hi.get(i).copied().unwrap_or(0);
            *w |= l & !h;
        }
    }

    /// Calls `f` for every set bit, in ascending order.
    #[inline]
    pub fn for_each(&self, mut f: impl FnMut(usize)) {
        for (w_idx, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                f(w_idx * WORD_BITS + bit);
                w &= w - 1;
            }
        }
    }
}

/// Word-wise intersection `out[i] = a[i] & b[i]`.
///
/// All three slices must have equal length. The property tests pin this to
/// the sorted-`Vec` merge intersection the pre-bitset code used.
#[inline]
pub fn intersect_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x & y;
    }
}

/// Total set bits across `words` (one `popcnt` per lane).
#[inline]
pub fn popcount(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Packs sorted-or-not indices `< n_bits` into a fresh word vector.
pub fn from_indices(n_bits: usize, indices: &[usize]) -> Vec<u64> {
    let mut words = vec![0u64; words_for(n_bits)];
    for &i in indices {
        assert!(i < n_bits, "index {i} out of range {n_bits}");
        words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }
    words
}

/// Unpacks a word vector into ascending indices.
pub fn indices(words: &[u64]) -> Vec<usize> {
    let mut out = Vec::with_capacity(popcount(words));
    for (w_idx, &word) in words.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            out.push(w_idx * WORD_BITS + w.trailing_zeros() as usize);
            w &= w - 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(63), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }

    #[test]
    fn set_contains_iterate_round_trip() {
        let mut m = BitMask::with_bits(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            m.set(i);
        }
        assert!(m.contains(63) && m.contains(64) && !m.contains(62));
        let mut seen = Vec::new();
        m.for_each(|i| seen.push(i));
        assert_eq!(seen, vec![0, 1, 63, 64, 65, 127, 128, 129]);
        assert_eq!(m.count(), 8);
        assert!(m.any());
        m.clear();
        assert!(!m.any());
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn or_range_masked_is_set_difference_of_suffixes() {
        // suffix(2) = {2..10}, suffix(7) = {7..10}: contribution {2..7}.
        let lo = from_indices(10, &[2, 3, 4, 5, 6, 7, 8, 9]);
        let hi = from_indices(10, &[7, 8, 9]);
        let mut m = BitMask::with_bits(10);
        m.or_range_masked(&lo, &hi);
        let mut got = Vec::new();
        m.for_each(|i| got.push(i));
        assert_eq!(got, vec![2, 3, 4, 5, 6]);
        // Accumulation ORs on top.
        m.or_range_masked(&from_indices(10, &[0, 9]), &from_indices(10, &[]));
        assert_eq!(m.count(), 7);
        assert!(m.contains(0) && m.contains(9));
    }

    #[test]
    fn prepare_grows_and_never_shrinks() {
        let mut m = BitMask::default();
        m.prepare(65);
        assert_eq!(m.words().len(), 2);
        m.prepare(10);
        assert_eq!(m.words().len(), 2);
        m.prepare(129);
        assert_eq!(m.words().len(), 3);
    }

    #[test]
    fn intersect_matches_indices() {
        let a = from_indices(129, &[0, 5, 63, 64, 100, 128]);
        let b = from_indices(129, &[5, 63, 65, 128]);
        let mut out = vec![0u64; a.len()];
        intersect_into(&a, &b, &mut out);
        assert_eq!(indices(&out), vec![5, 63, 128]);
        assert_eq!(popcount(&out), 3);
    }
}
