//! Wire types for the coordinator/worker control plane.
//!
//! All control messages are flat JSON structs (the vendored serde stub
//! derives structs and unit/tuple enum variants only, so polymorphism is
//! expressed with a `kind` discriminator field instead of tagged
//! enums). Shard uploads are the one non-JSON message: the sealed
//! `.rcs` bytes POSTed verbatim, with the lease identity in the path
//! (`/shard/<lease>/<epoch>`).
//!
//! # Lease protocol
//!
//! A lease is `(lease id, root range, epoch)`. The epoch is a
//! coordinator-global fencing token: every grant mints a fresh one, so
//! a lease that expires and is re-granted can never be confused with
//! its earlier incarnation — renewals and uploads carrying a stale
//! epoch are refused with 409, which is how a worker learns it lost
//! the lease.

use serde::{Deserialize, Serialize};

/// `GET /job` — everything a worker needs to mine compatibly with the
/// coordinator (it loads the matrix itself and must agree on the
/// fingerprint).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobInfo {
    /// Mining parameters as canonical JSON (the worker deserializes and
    /// re-serializes these; the round trip is deterministic, so shard
    /// provenance matches the coordinator's byte-for-byte).
    pub params_json: String,
    /// Engine name recorded in shard provenance.
    pub engine: String,
    /// Generation number the merged store will publish as.
    pub generation: u64,
    /// Fingerprint of the coordinator's matrix; a worker whose matrix
    /// disagrees must refuse to mine.
    pub matrix_fingerprint: u64,
    /// Total root conditions being partitioned.
    pub n_roots: u64,
}

/// `POST /lease/acquire` request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AcquireRequest {
    /// Caller's self-assigned worker id (diagnostics + renew fencing).
    pub worker: String,
}

/// `POST /lease/acquire` response. `kind` is `"grant"` (lease fields
/// valid), `"wait"` (all leases granted but the run isn't finished —
/// retry later; a lease may expire) or `"done"` (every shard is in,
/// the worker can exit).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AcquireResponse {
    /// `"grant"`, `"wait"` or `"done"`.
    pub kind: String,
    /// Lease id (slot index).
    pub lease: u64,
    /// First leased root (inclusive).
    pub start: u64,
    /// Past-the-end leased root.
    pub end: u64,
    /// Fencing epoch for this grant.
    pub epoch: u64,
    /// Milliseconds the lease stays valid without a renewal.
    pub ttl_ms: u64,
}

impl AcquireResponse {
    /// A non-grant response (`"wait"` / `"done"`).
    pub fn signal(kind: &str) -> Self {
        AcquireResponse {
            kind: kind.to_string(),
            lease: 0,
            start: 0,
            end: 0,
            epoch: 0,
            ttl_ms: 0,
        }
    }
}

/// `POST /lease/renew` request body; refreshes the lease deadline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RenewRequest {
    /// Worker id that was granted the lease.
    pub worker: String,
    /// Lease id being renewed.
    pub lease: u64,
    /// Epoch from the grant; stale epochs are refused with 409.
    pub epoch: u64,
}

/// `GET /status` — coordinator progress, polled by harnesses and
/// operators.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatusDoc {
    /// `"mining"`, `"merging"` or `"published"`.
    pub state: String,
    /// Generation the run will (or did) publish.
    pub generation: u64,
    /// Total leases in the partition.
    pub leases_total: u64,
    /// Leases whose shard has been accepted.
    pub leases_done: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_types_round_trip() {
        let job = JobInfo {
            params_json: r#"{"min_genes":2}"#.into(),
            engine: "reg-cluster".into(),
            generation: 3,
            matrix_fingerprint: 0xdead_beef,
            n_roots: 20,
        };
        let back: JobInfo = serde_json::from_str(&serde_json::to_string(&job).unwrap()).unwrap();
        assert_eq!(back.params_json, job.params_json);
        assert_eq!(back.matrix_fingerprint, job.matrix_fingerprint);

        let grant = AcquireResponse {
            kind: "grant".into(),
            lease: 1,
            start: 5,
            end: 10,
            epoch: 42,
            ttl_ms: 3000,
        };
        let back: AcquireResponse =
            serde_json::from_str(&serde_json::to_string(&grant).unwrap()).unwrap();
        assert_eq!(back.kind, "grant");
        assert_eq!((back.start, back.end, back.epoch), (5, 10, 42));

        let wait = AcquireResponse::signal("wait");
        assert_eq!(wait.kind, "wait");
        assert_eq!(wait.ttl_ms, 0);
    }
}
