//! End-to-end mining benchmarks: the paper's running example, a mid-sized
//! synthetic workload, and the thread-scaling ablation of the work-stealing
//! engine against the old static root split.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use regcluster_core::{
    mine, mine_engine, mine_parallel, EngineConfig, MiningParams, SplitStrategy,
};
use regcluster_datagen::{generate, running_example, SyntheticConfig};

fn bench_running_example(c: &mut Criterion) {
    let m = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).expect("valid");
    c.bench_function("mine_running_example", |b| {
        b.iter(|| black_box(mine(&m, &params).expect("mining succeeds")));
    });
}

fn bench_synthetic(c: &mut Criterion) {
    let mut group = c.benchmark_group("mine_synthetic");
    group.sample_size(10);
    for n_genes in [500usize, 1500, 3000] {
        let cfg = SyntheticConfig {
            n_genes,
            ..SyntheticConfig::default()
        };
        let data = generate(&cfg).expect("feasible");
        let min_g = ((0.01 * n_genes as f64) as usize).max(2);
        let params = MiningParams::new(min_g, 6, 0.1, 0.01).expect("valid");
        group.bench_with_input(BenchmarkId::from_parameter(n_genes), &n_genes, |b, _| {
            b.iter(|| black_box(mine(&data.matrix, &params).expect("mining succeeds")));
        });
    }
    group.finish();
}

/// Thread-scaling ablation on a Figure-7-scale workload, one benchmark per
/// (split strategy × thread count) point:
///
/// * `stealing/N` — the work-stealing engine, which re-balances subtrees
///   spilled from busy workers at any enumeration depth;
/// * `static/N` — `SplitStrategy::StaticRoots`, reproducing the old
///   `mine_parallel` behaviour of distributing only root subtrees, whose
///   speedup is bounded by the largest root subtree.
fn bench_thread_scaling(c: &mut Criterion) {
    let cfg = SyntheticConfig {
        n_genes: 3000,
        ..SyntheticConfig::default()
    };
    let data = generate(&cfg).expect("feasible");
    let params = MiningParams::new(30, 6, 0.1, 0.01).expect("valid");
    let mut group = c.benchmark_group("mine_parallel_3000");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        for (label, split) in [
            ("stealing", SplitStrategy::WorkStealing),
            ("static", SplitStrategy::StaticRoots),
        ] {
            let config = EngineConfig::new(threads).with_split(split);
            group.bench_with_input(BenchmarkId::new(label, threads), &config, |b, config| {
                b.iter(|| {
                    black_box(mine_engine(&data.matrix, &params, config).expect("mining succeeds"))
                });
            });
        }
    }
    // The public façade, for continuity with pre-engine measurements.
    group.bench_function("mine_parallel_facade/4", |b| {
        b.iter(|| black_box(mine_parallel(&data.matrix, &params, 4).expect("mining succeeds")));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_running_example,
    bench_synthetic,
    bench_thread_scaling
);
criterion_main!(benches);
