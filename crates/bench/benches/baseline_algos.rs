//! Benchmarks of the baseline algorithms on the comparison workload, so the
//! runtime column of the comparison experiment has a tracked counterpart.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use regcluster_baselines::{
    cheng_church, floc, op_cluster, opsm, pcluster, ChengChurchParams, FlocParams, OpClusterParams,
    OpsmParams, PClusterParams,
};
use regcluster_core::{mine, MiningParams};
use regcluster_datagen::{generate, PatternKind, SyntheticConfig};
use regcluster_matrix::ExpressionMatrix;

fn workload() -> ExpressionMatrix {
    let cfg = SyntheticConfig {
        n_genes: 300,
        n_conds: 15,
        n_clusters: 3,
        cluster_gene_frac: 0.04,
        neg_fraction: 0.0,
        plant_gamma: 0.08,
        pattern: PatternKind::ShiftOnly,
        ..SyntheticConfig::default()
    };
    generate(&cfg).expect("feasible").matrix
}

fn bench_all(c: &mut Criterion) {
    let m = workload();
    let mut group = c.benchmark_group("baselines_300x15");
    group.sample_size(10);

    let params = MiningParams::new(8, 4, 0.05, 0.02).expect("valid");
    group.bench_function("reg_cluster", |b| {
        b.iter(|| black_box(mine(&m, &params).expect("mining succeeds")));
    });

    let pc = PClusterParams {
        delta: 0.15,
        min_genes: 8,
        min_conds: 4,
        ..Default::default()
    };
    group.bench_function("pcluster", |b| {
        b.iter(|| black_box(pcluster(&m, &pc)));
    });

    let op = OpsmParams {
        size: 4,
        beam_width: 100,
        min_genes: 8,
        max_models: 5,
    };
    group.bench_function("opsm", |b| {
        b.iter(|| black_box(opsm(&m, &op)));
    });

    let cc = ChengChurchParams {
        delta: 0.2,
        n_clusters: 3,
        ..ChengChurchParams::default()
    };
    group.bench_function("cheng_church", |b| {
        b.iter(|| black_box(cheng_church(&m, &cc)));
    });

    let oc = OpClusterParams {
        group_multiplier: 0.25,
        min_genes: 8,
        min_conds: 4,
        max_clusters: 20,
    };
    group.bench_function("op_cluster", |b| {
        b.iter(|| black_box(op_cluster(&m, &oc)));
    });

    let fl = FlocParams {
        delta: 0.2,
        min_genes: 8,
        min_conds: 4,
        ..FlocParams::default()
    };
    group.bench_function("floc", |b| {
        b.iter(|| black_box(floc(&m, &fl)));
    });

    group.finish();
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
