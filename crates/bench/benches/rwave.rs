//! Micro-benchmarks of the `RWave^γ` model — construction cost and the
//! ablation justifying it: answering "is this condition pair regulated?"
//! through the pointer index versus rescanning the raw profile.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use regcluster_core::rwave::RWaveModel;
use regcluster_datagen::{generate, SyntheticConfig};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("rwave_build");
    for n_conds in [17usize, 30, 60] {
        let cfg = SyntheticConfig {
            n_genes: 1000,
            n_conds,
            n_clusters: 10,
            ..SyntheticConfig::default()
        };
        let data = generate(&cfg).expect("feasible");
        group.bench_with_input(BenchmarkId::new("1000_genes", n_conds), &n_conds, |b, _| {
            b.iter(|| {
                for (_, row) in data.matrix.rows() {
                    let (lo, hi) = row
                        .iter()
                        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
                            (l.min(v), h.max(v))
                        });
                    black_box(RWaveModel::build(row, 0.1 * (hi - lo)));
                }
            });
        });
    }
    group.finish();
}

/// Ablation: the two exactly-equivalent implementations of the regulation
/// query — the O(1) direct value comparison `is_up_regulated` (what the
/// miner uses in its innermost loop) vs the pointer-index binary search
/// `is_up_regulated_via_pointers` (the paper's Lemma 3.1 device, still used
/// for successor *ranges* and the max-chain tables).
fn bench_query(c: &mut Criterion) {
    let cfg = SyntheticConfig {
        n_genes: 1,
        n_conds: 60,
        n_clusters: 0,
        ..Default::default()
    };
    let data = generate(&cfg).expect("feasible");
    let row = data.matrix.row(0).to_vec();
    let (lo, hi) = row
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
    let gamma = 0.1 * (hi - lo);
    let model = RWaveModel::build(&row, gamma);
    let n = model.len();

    let mut group = c.benchmark_group("regulation_query");
    group.bench_function("value_compare", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for a in 0..n {
                for bb in a..n {
                    acc += usize::from(model.is_up_regulated(black_box(a), black_box(bb)));
                }
            }
            acc
        });
    });
    group.bench_function("pointer_search", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for a in 0..n {
                for bb in a..n {
                    acc += usize::from(
                        model.is_up_regulated_via_pointers(black_box(a), black_box(bb)),
                    );
                }
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_query);
criterion_main!(benches);
