//! Instrumentation hooks for the enumeration tree.
//!
//! The paper's Figure 6 annotates every edge of the representative-chain
//! enumeration tree with the pruning strategy applied. [`MineObserver`]
//! exposes those events so tests can reproduce the tree exactly and so users
//! can trace why a parameter setting returns nothing.

use regcluster_matrix::CondId;
use serde::{Deserialize, Serialize};

use crate::cluster::RegCluster;

/// The pruning strategies of §4 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneRule {
    /// (1) MinG pruning — fewer than `MinG` member genes remain.
    MinGenes,
    /// (2) MinC pruning is applied per gene while generating candidates, so
    /// it surfaces as a node event only when it empties a candidate set; the
    /// variant exists for completeness of traces produced by custom tooling.
    MinConds,
    /// (3)(a) Redundant pruning — fewer than `MinG / 2` p-members, so the
    /// chain cannot be representative.
    FewPMembers,
    /// (3)(b) Redundant pruning — the validated cluster was already emitted
    /// (overlapping sliding windows), so the subtree is redundant.
    Duplicate,
    /// (4) Coherence pruning — no sliding window of `MinG` coherent genes.
    Coherence,
}

impl PruneRule {
    /// Every rule, in paper order. The canonical iteration order for
    /// per-rule metric registration and reporting.
    pub const ALL: [PruneRule; 5] = [
        PruneRule::MinGenes,
        PruneRule::MinConds,
        PruneRule::FewPMembers,
        PruneRule::Duplicate,
        PruneRule::Coherence,
    ];

    /// The stable snake_case name used as the `rule` label value on
    /// exported metrics (see `docs/OBSERVABILITY.md`).
    pub fn as_label(self) -> &'static str {
        match self {
            PruneRule::MinGenes => "min_genes",
            PruneRule::MinConds => "min_conds",
            PruneRule::FewPMembers => "few_p_members",
            PruneRule::Duplicate => "duplicate",
            PruneRule::Coherence => "coherence",
        }
    }

    /// The position of this rule in [`PruneRule::ALL`]; used to index
    /// pre-registered per-rule instrument arrays without a lookup.
    pub fn index(self) -> usize {
        match self {
            PruneRule::MinGenes => 0,
            PruneRule::MinConds => 1,
            PruneRule::FewPMembers => 2,
            PruneRule::Duplicate => 3,
            PruneRule::Coherence => 4,
        }
    }
}

/// Receiver for enumeration-tree events. All methods default to no-ops.
pub trait MineObserver {
    /// A node (partial representative chain) was entered with `n_p`
    /// p-members and `n_n` n-members.
    fn node_entered(&mut self, _chain: &[CondId], _n_p: usize, _n_n: usize) {}
    /// The subtree at `chain` was pruned by `rule`.
    fn pruned(&mut self, _chain: &[CondId], _rule: PruneRule) {}
    /// A validated reg-cluster was emitted.
    fn cluster_emitted(&mut self, _cluster: &RegCluster) {}
}

/// Receiver for enumeration-tree events from concurrent workers.
///
/// The thread-safe counterpart of [`MineObserver`], used by the parallel
/// [`engine`](crate::engine): methods take `&self` and implementations must
/// be [`Sync`] because every worker reports through the same instance.
/// Events from different workers interleave arbitrarily; only the per-worker
/// sub-streams are in depth-first order. For aggregate counters prefer the
/// per-worker [`MiningStats`] that the engine accumulates lock-free and
/// merges at join.
pub trait SyncMineObserver: Sync {
    /// A node (partial representative chain) was entered with `n_p`
    /// p-members and `n_n` n-members.
    fn node_entered(&self, _chain: &[CondId], _n_p: usize, _n_n: usize) {}
    /// The subtree at `chain` was pruned by `rule`.
    fn pruned(&self, _chain: &[CondId], _rule: PruneRule) {}
    /// A validated reg-cluster was emitted.
    fn cluster_emitted(&self, _cluster: &RegCluster) {}
}

/// The default, zero-cost observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl MineObserver for NoopObserver {}

impl SyncMineObserver for NoopObserver {}

/// A recorded enumeration event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Node entered: chain, p-member count, n-member count.
    Node(Vec<CondId>, usize, usize),
    /// Subtree pruned at `chain` by the given rule.
    Pruned(Vec<CondId>, PruneRule),
    /// Cluster emitted.
    Emitted(RegCluster),
}

/// An observer that records every event, for tests and debugging.
#[derive(Debug, Default)]
pub struct TraceObserver {
    /// The events, in depth-first order.
    pub events: Vec<TraceEvent>,
}

impl TraceObserver {
    /// All chains at which a given rule fired.
    pub fn pruned_by(&self, rule: PruneRule) -> Vec<&[CondId]> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Pruned(chain, r) if *r == rule => Some(chain.as_slice()),
                _ => None,
            })
            .collect()
    }

    /// All node chains entered, in DFS order.
    pub fn nodes(&self) -> Vec<&[CondId]> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Node(chain, _, _) => Some(chain.as_slice()),
                _ => None,
            })
            .collect()
    }

    /// Number of emitted clusters.
    pub fn n_emitted(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Emitted(_)))
            .count()
    }
}

/// Aggregate search-effort counters — the cheap observer for production
/// runs that want to know *why* a parameter setting is slow or empty
/// without paying for a full trace.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiningStats {
    /// Enumeration-tree nodes entered.
    pub nodes: usize,
    /// Deepest chain reached.
    pub max_depth: usize,
    /// Clusters emitted.
    pub emitted: usize,
    /// Subtrees cut by pruning (1) — MinG.
    pub pruned_min_genes: usize,
    /// Subtrees cut by pruning (3)(a) — too few p-members.
    pub pruned_few_p: usize,
    /// Subtrees cut by pruning (3)(b) — duplicate clusters.
    pub pruned_duplicate: usize,
    /// Candidates cut by pruning (4) — no coherent window.
    pub pruned_coherence: usize,
}

impl MiningStats {
    /// Folds another accumulator into this one: counters add, `max_depth`
    /// takes the maximum. Used by the parallel engine to combine per-worker
    /// statistics at join; because workers partition the enumeration tree,
    /// the merged totals equal a sequential run's.
    pub fn merge(&mut self, other: &MiningStats) {
        self.nodes += other.nodes;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.emitted += other.emitted;
        self.pruned_min_genes += other.pruned_min_genes;
        self.pruned_few_p += other.pruned_few_p;
        self.pruned_duplicate += other.pruned_duplicate;
        self.pruned_coherence += other.pruned_coherence;
    }

    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{} nodes (max depth {}), {} clusters; pruned: {} MinG, {} few-p, {} duplicate, {} coherence",
            self.nodes,
            self.max_depth,
            self.emitted,
            self.pruned_min_genes,
            self.pruned_few_p,
            self.pruned_duplicate,
            self.pruned_coherence
        )
    }
}

impl MineObserver for MiningStats {
    fn node_entered(&mut self, chain: &[CondId], _n_p: usize, _n_n: usize) {
        self.nodes += 1;
        self.max_depth = self.max_depth.max(chain.len());
    }
    fn pruned(&mut self, _chain: &[CondId], rule: PruneRule) {
        match rule {
            PruneRule::MinGenes => self.pruned_min_genes += 1,
            PruneRule::FewPMembers => self.pruned_few_p += 1,
            PruneRule::Duplicate => self.pruned_duplicate += 1,
            PruneRule::Coherence => self.pruned_coherence += 1,
            // Not counted here: adding a field would change this struct's
            // serialized shape (it rides in `mine --stats` JSON). Rule-2
            // cuts are exported via `MetricsObserver` instead.
            PruneRule::MinConds => {}
        }
    }
    fn cluster_emitted(&mut self, _cluster: &RegCluster) {
        self.emitted += 1;
    }
}

impl MineObserver for TraceObserver {
    fn node_entered(&mut self, chain: &[CondId], n_p: usize, n_n: usize) {
        self.events.push(TraceEvent::Node(chain.to_vec(), n_p, n_n));
    }
    fn pruned(&mut self, chain: &[CondId], rule: PruneRule) {
        self.events.push(TraceEvent::Pruned(chain.to_vec(), rule));
    }
    fn cluster_emitted(&mut self, cluster: &RegCluster) {
        self.events.push(TraceEvent::Emitted(cluster.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_observer_records_and_filters() {
        let mut t = TraceObserver::default();
        t.node_entered(&[1], 2, 1);
        t.pruned(&[1, 2], PruneRule::MinGenes);
        t.pruned(&[1, 3], PruneRule::Coherence);
        let c = RegCluster {
            chain: vec![1, 3, 4],
            p_members: vec![0],
            n_members: vec![],
        };
        t.cluster_emitted(&c);
        assert_eq!(t.nodes(), vec![&[1usize][..]]);
        assert_eq!(t.pruned_by(PruneRule::MinGenes), vec![&[1usize, 2][..]]);
        assert_eq!(t.pruned_by(PruneRule::Duplicate).len(), 0);
        assert_eq!(t.n_emitted(), 1);
    }

    #[test]
    fn stats_observer_counts_everything() {
        let mut s = MiningStats::default();
        s.node_entered(&[1], 2, 1);
        s.node_entered(&[1, 2, 3], 2, 0);
        s.pruned(&[1, 2], PruneRule::MinGenes);
        s.pruned(&[1, 3], PruneRule::Coherence);
        s.pruned(&[2], PruneRule::FewPMembers);
        s.pruned(&[3], PruneRule::Duplicate);
        let c = RegCluster {
            chain: vec![1, 2, 3],
            p_members: vec![0],
            n_members: vec![],
        };
        s.cluster_emitted(&c);
        assert_eq!(s.nodes, 2);
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.emitted, 1);
        assert_eq!(s.pruned_min_genes, 1);
        assert_eq!(s.pruned_coherence, 1);
        assert_eq!(s.pruned_few_p, 1);
        assert_eq!(s.pruned_duplicate, 1);
        let txt = s.summary();
        assert!(txt.contains("2 nodes"));
        assert!(txt.contains("max depth 3"));
    }

    #[test]
    fn stats_merge_adds_counters_and_maxes_depth() {
        let mut a = MiningStats {
            nodes: 3,
            max_depth: 2,
            emitted: 1,
            pruned_min_genes: 4,
            pruned_few_p: 0,
            pruned_duplicate: 1,
            pruned_coherence: 2,
        };
        let b = MiningStats {
            nodes: 5,
            max_depth: 6,
            emitted: 0,
            pruned_min_genes: 1,
            pruned_few_p: 3,
            pruned_duplicate: 0,
            pruned_coherence: 1,
        };
        a.merge(&b);
        assert_eq!(a.nodes, 8);
        assert_eq!(a.max_depth, 6);
        assert_eq!(a.emitted, 1);
        assert_eq!(a.pruned_min_genes, 5);
        assert_eq!(a.pruned_few_p, 3);
        assert_eq!(a.pruned_duplicate, 1);
        assert_eq!(a.pruned_coherence, 3);
    }

    #[test]
    fn noop_observer_is_silent() {
        let o = NoopObserver;
        o.node_entered(&[0], 0, 0);
        o.pruned(&[0], PruneRule::MinGenes);
    }
}
