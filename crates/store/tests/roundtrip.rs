//! Lossless round-trip guarantees of the store: write → read reproduces the
//! golden cluster sets bit-identically, sequentially and streamed from the
//! engine at 1–8 threads, and every index agrees with a linear scan.

use std::path::PathBuf;

use regcluster_core::{
    mine, mine_to_sink, ClusterSink, EngineConfig, MineControl, MiningParams, NoopObserver,
    RegCluster, SplitStrategy,
};
use regcluster_datagen::{generate, running_example, PatternKind, SyntheticConfig};
use regcluster_matrix::ExpressionMatrix;
use regcluster_store::{ClusterStore, Query, StoreWriter};
use serde::{Serialize as _, Value};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("regcluster-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn golden(name: &str) -> Vec<RegCluster> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name);
    serde_json::from_str(&std::fs::read_to_string(&path).expect("golden file readable"))
        .expect("golden file parses")
}

/// The same seeded 100×30 workload the golden-output tests mine.
fn synthetic_100x30() -> (ExpressionMatrix, MiningParams) {
    let cfg = SyntheticConfig {
        n_genes: 100,
        n_conds: 30,
        n_clusters: 6,
        avg_cluster_dims: 6,
        cluster_gene_frac: 0.06,
        neg_fraction: 0.3,
        plant_gamma: 0.15,
        pattern: PatternKind::ShiftScale,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed: 7,
    };
    let matrix = generate(&cfg).expect("config is feasible").matrix;
    let params = MiningParams::new(4, 4, 0.1, 0.05).expect("valid");
    (matrix, params)
}

fn write_store(
    path: &PathBuf,
    m: &ExpressionMatrix,
    params: &MiningParams,
    clusters: &[RegCluster],
) {
    let w = StoreWriter::create(path, m.gene_names(), m.condition_names(), params).unwrap();
    for c in clusters {
        w.write_cluster(c).unwrap();
    }
    w.finish().unwrap();
}

fn read_all(store: &ClusterStore) -> Vec<RegCluster> {
    store.iter().collect::<Result<_, _>>().unwrap()
}

#[test]
fn running_example_roundtrips_bit_identically_to_golden() {
    let m = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    let mined = mine(&m, &params).unwrap();
    let path = tmp("running.rcs");
    write_store(&path, &m, &params, &mined);

    let store = ClusterStore::open(&path).unwrap();
    let read = read_all(&store);
    assert_eq!(read, golden("running_example.json"));
    assert_eq!(read, mined);
    assert_eq!(store.params(), &params, "γ/ε provenance survives");
    assert_eq!(store.gene_names(), m.gene_names());
    assert_eq!(store.cond_names(), m.condition_names());
    assert_eq!(store.n_genes() as usize, m.n_genes());
    assert_eq!(store.n_conds() as usize, m.n_conditions());
}

#[test]
fn synthetic_roundtrips_bit_identically_to_golden() {
    let (m, params) = synthetic_100x30();
    let mined = mine(&m, &params).unwrap();
    let path = tmp("synthetic.rcs");
    write_store(&path, &m, &params, &mined);
    let store = ClusterStore::open(&path).unwrap();
    assert_eq!(read_all(&store), golden("synthetic_100x30.json"));
}

#[test]
fn engine_streamed_store_matches_vecsink_at_every_thread_count() {
    let (m, params) = synthetic_100x30();
    // The canonical collect-path result (== finalized VecSink output).
    let expected = mine(&m, &params).unwrap();
    for threads in 1..=8usize {
        for split in [SplitStrategy::WorkStealing, SplitStrategy::StaticRoots] {
            let path = tmp(&format!("stream-{threads}-{split:?}.rcs"));
            let writer =
                StoreWriter::create(&path, m.gene_names(), m.condition_names(), &params).unwrap();
            let config = EngineConfig::new(threads).with_split(split);
            let report = mine_to_sink(
                &m,
                &params,
                &config,
                &MineControl::new(),
                &NoopObserver,
                &writer,
            )
            .unwrap();
            assert!(!report.truncated && !report.stopped_by_sink);
            writer.finish().unwrap();

            let store = ClusterStore::open(&path).unwrap();
            assert_eq!(
                read_all(&store),
                expected,
                "store drifted from collect path (threads = {threads}, {split:?})"
            );
        }
    }
}

#[test]
fn indexes_agree_with_linear_scan() {
    let (m, params) = synthetic_100x30();
    let mined = mine(&m, &params).unwrap();
    let path = tmp("indexes.rcs");
    write_store(&path, &m, &params, &mined);
    let store = ClusterStore::open(&path).unwrap();

    for g in 0..store.n_genes() {
        let from_index: Vec<u32> = store.clusters_with_gene(g).collect();
        let from_scan: Vec<u32> = mined
            .iter()
            .enumerate()
            .filter(|(_, c)| c.genes_iter().any(|x| x == g as usize))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(from_index, from_scan, "gene {g} postings");
    }
    for c in 0..store.n_conds() {
        let from_index: Vec<u32> = store.clusters_with_cond(c).collect();
        let from_scan: Vec<u32> = mined
            .iter()
            .enumerate()
            .filter(|(_, cl)| cl.chain.contains(&(c as usize)))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(from_index, from_scan, "cond {c} postings");
    }
    // Size table matches the records.
    for (i, c) in mined.iter().enumerate() {
        assert_eq!(
            store.cluster_dims(i as u32).unwrap(),
            (c.n_genes() as u32, c.n_conditions() as u32)
        );
    }
}

#[test]
fn queries_match_reference_filters() {
    let (m, params) = synthetic_100x30();
    let mined = mine(&m, &params).unwrap();
    let path = tmp("queries.rcs");
    write_store(&path, &m, &params, &mined);
    let store = ClusterStore::open(&path).unwrap();

    // Conjunctive gene+cond+size query vs. brute force.
    let probe = &mined[0];
    let g = probe.p_members[0] as u32;
    let c = probe.chain[0] as u32;
    let q = Query::new()
        .with_gene(g)
        .with_cond(c)
        .with_min_genes(params.min_genes as u32)
        .with_min_conds((params.min_conds + 1) as u32);
    let got = store.query(&q).unwrap();
    let want: Vec<u32> = mined
        .iter()
        .enumerate()
        .filter(|(_, cl)| {
            cl.genes_iter().any(|x| x == g as usize)
                && cl.chain.contains(&(c as usize))
                && cl.n_genes() >= params.min_genes
                && cl.n_conditions() > params.min_conds
        })
        .map(|(i, _)| i as u32)
        .collect();
    assert_eq!(got, want);

    // Top-k keeps the k largest by covered cells.
    let top = store.query(&Query::new().with_top_k(3)).unwrap();
    assert_eq!(top.len(), 3.min(mined.len()));
    let mut cells: Vec<u64> = mined.iter().map(|c| c.n_cells() as u64).collect();
    cells.sort_unstable_by(|a, b| b.cmp(a));
    for (rank, id) in top.iter().enumerate() {
        assert_eq!(mined[*id as usize].n_cells() as u64, cells[rank]);
    }

    // Overlap: shares ≥1 listed gene and ≥1 listed condition.
    let genes: Vec<u32> = probe.p_members.iter().map(|&x| x as u32).collect();
    let conds: Vec<u32> = probe.chain.iter().map(|&x| x as u32).collect();
    let got = store.overlapping(&genes, &conds);
    let want: Vec<u32> = mined
        .iter()
        .enumerate()
        .filter(|(_, cl)| {
            cl.genes_iter().any(|x| genes.contains(&(x as u32)))
                && cl.chain.iter().any(|&x| conds.contains(&(x as u32)))
        })
        .map(|(i, _)| i as u32)
        .collect();
    assert_eq!(got, want);

    // Containment: superclusters of a stored cluster include itself.
    let supers = store.superclusters_of(probe);
    assert!(supers.contains(&0));
    let want: Vec<u32> = mined
        .iter()
        .enumerate()
        .filter(|&(_, cl)| probe.is_subcluster_of(cl))
        .map(|(i, _)| i as u32)
        .collect();
    assert_eq!(supers, want);

    // Out-of-dictionary query ids are a typed error, not a panic.
    assert!(store.query(&Query::new().with_gene(u32::MAX)).is_err());
    assert!(store.query(&Query::new().with_cond(u32::MAX)).is_err());
}

#[test]
fn empty_store_roundtrips() {
    let m = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    let path = tmp("empty.rcs");
    write_store(&path, &m, &params, &[]);
    let store = ClusterStore::open(&path).unwrap();
    assert_eq!(store.n_clusters(), 0);
    assert_eq!(read_all(&store), Vec::<RegCluster>::new());
    assert_eq!(store.query(&Query::new()).unwrap(), Vec::<u32>::new());
    assert!(matches!(
        store.cluster(0),
        Err(regcluster_store::StoreError::ClusterOutOfBounds { .. })
    ));
}

#[test]
fn writer_rejects_out_of_dictionary_ids_and_poisons() {
    let m = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    let path = tmp("poison.rcs");
    let w = StoreWriter::create(&path, m.gene_names(), m.condition_names(), &params).unwrap();
    let bad = RegCluster {
        chain: vec![0, 99],
        p_members: vec![0],
        n_members: vec![],
    };
    // As a sink: refuses the cluster (cooperative engine stop)…
    assert!(!w.accept(bad));
    // …and keeps refusing afterwards, reporting the failure from finish.
    let ok = RegCluster {
        chain: vec![0, 1],
        p_members: vec![0],
        n_members: vec![],
    };
    assert!(!w.accept(ok));
    assert!(w.finish().is_err());
}

/// A tiny deterministic xorshift64 generator — enough randomness for a
/// property sweep without pulling in a proptest dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random JSON value of bounded depth, covering every [`Value`] arm the
/// vendored serde implements, including strings that need escaping.
fn random_value(rng: &mut Rng, depth: u32) -> Value {
    let arm = if depth == 0 {
        rng.below(5)
    } else {
        rng.below(7)
    };
    match arm {
        0 => Value::Null,
        1 => Value::Bool(rng.below(2) == 0),
        2 => Value::Int(rng.next() as i64 as i128),
        3 => Value::Float(rng.below(1000) as f64 * 0.25),
        4 => {
            let tricky = [
                "plain",
                "quote \" inside",
                "back\\slash",
                "line\nbreak",
                "tab\there",
            ];
            Value::Str(format!(
                "{}-{}",
                tricky[rng.below(tricky.len() as u64) as usize],
                rng.below(100)
            ))
        }
        5 => Value::Array(
            (0..rng.below(4))
                .map(|_| random_value(rng, depth - 1))
                .collect(),
        ),
        _ => Value::Object(
            (0..rng.below(4))
                .map(|i| (format!("k{i}"), random_value(rng, depth - 1)))
                .collect(),
        ),
    }
}

#[test]
fn unknown_meta_keys_roundtrip_untouched_and_never_fail_open() {
    // The forward-compatibility property `create_with_meta_json`'s docs
    // promise: META keys this build does not understand are preserved
    // verbatim — value and key order — through a write → open →
    // re-render cycle, and never make a store fail to open.
    let m = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    let cluster = RegCluster {
        chain: vec![0, 1],
        p_members: vec![0],
        n_members: vec![],
    };
    let Value::Object(params_pairs) = params.to_json_value() else {
        panic!("params serialize to an object");
    };

    let mut rng = Rng(0x5eed_cafe_d00d_0001);
    for case in 0..64 {
        // Unknown keys both before and after the known params keys, so
        // ordering is exercised on both sides.
        let mut pairs: Vec<(String, Value)> = Vec::new();
        for i in 0..rng.below(3) {
            pairs.push((format!("future_pre_{i}"), random_value(&mut rng, 2)));
        }
        pairs.extend(params_pairs.iter().cloned());
        for i in 0..1 + rng.below(3) {
            pairs.push((format!("future_post_{i}"), random_value(&mut rng, 2)));
        }
        let doc = Value::Object(pairs);
        let rendered = serde_json::to_string(&doc).unwrap();

        let path = tmp(&format!("future-meta-{case}.rcs"));
        let w = StoreWriter::create_with_meta_json(
            &path,
            m.gene_names(),
            m.condition_names(),
            &rendered,
        )
        .unwrap_or_else(|e| panic!("case {case}: doc {rendered} refused: {e}"));
        w.write_cluster(&cluster).unwrap();
        w.finish().unwrap();

        let store = ClusterStore::open(&path)
            .unwrap_or_else(|e| panic!("case {case}: store with unknown keys failed open: {e}"));
        let reread = serde_json::parse_value_str(&store.meta_json()).unwrap();
        assert_eq!(
            reread, doc,
            "case {case}: META drifted through the round trip"
        );
        assert_eq!(store.params(), &params);
        assert_eq!(read_all(&store), vec![cluster.clone()]);
    }
}

#[test]
fn v1_headers_are_migrated_in_memory_on_open() {
    // A version-1 store (before generation/fingerprint provenance) opens
    // under this build with the v1→v2 migration applied in memory: a
    // zero generation is injected, params and unknown keys survive, and
    // the file on disk is never rewritten. The header version field is
    // outside the section-table checksum, so a sealed v2 file patched to
    // claim v1 is a faithful stand-in for a store an old build wrote.
    let m = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    let mined = mine(&m, &params).unwrap();
    let path = tmp("v1-migrate.rcs");
    let meta = format!(
        r#"{{"vintage_note":"pre-generation era",{}}}"#,
        serde_json::to_string(&params.to_json_value())
            .unwrap()
            .trim_start_matches('{')
            .trim_end_matches('}')
    );
    let w = StoreWriter::create_with_meta_json(&path, m.gene_names(), m.condition_names(), &meta)
        .unwrap();
    for c in &mined {
        w.write_cluster(c).unwrap();
    }
    w.finish().unwrap();

    let mut bytes = std::fs::read(&path).unwrap();
    assert_eq!(
        u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        regcluster_store::FORMAT_VERSION,
        "sealed header carries the current version"
    );
    bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    let store = ClusterStore::open(&path).expect("v1 store must still open");
    assert_eq!(store.generation(), 0, "migration injects generation 0");
    assert!(store.matrix_fingerprint().is_none());
    assert!(store.root_fingerprints().is_none());
    assert_eq!(store.params(), &params);
    assert_eq!(read_all(&store), mined);
    let reread = serde_json::parse_value_str(&store.meta_json()).unwrap();
    assert_eq!(
        reread.field("vintage_note"),
        Ok(&Value::Str("pre-generation era".into())),
        "unknown v1 keys survive the migration"
    );
    assert_eq!(reread.field("generation"), Ok(&Value::Int(0)));
    // The disk file is untouched: still claiming v1.
    let after = std::fs::read(&path).unwrap();
    assert_eq!(after, bytes, "open must never rewrite the store");

    // A version above this build is a typed refusal, not a panic.
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        ClusterStore::open(&path),
        Err(regcluster_store::StoreError::Version { found: 99, .. })
    ));
}

#[test]
fn engine_provenance_roundtrips_and_pre_engine_stores_read_as_none() {
    let m = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    let cluster = RegCluster {
        chain: vec![0, 1],
        p_members: vec![0],
        n_members: vec![],
    };

    // A store written with engine provenance reports it back verbatim —
    // including an engine params string that itself needs JSON escaping.
    let engine_params = r#"{"delta":0.1,"note":"quote \" inside"}"#;
    let path = tmp("provenance.rcs");
    let w = StoreWriter::create_with_engine(
        &path,
        m.gene_names(),
        m.condition_names(),
        &params,
        "pcluster",
        engine_params,
    )
    .unwrap();
    w.write_cluster(&cluster).unwrap();
    w.finish().unwrap();
    let store = ClusterStore::open(&path).unwrap();
    assert_eq!(store.engine(), Some("pcluster"));
    assert_eq!(store.engine_params_json(), Some(engine_params));
    assert_eq!(store.params(), &params);
    assert_eq!(store.stats().engine.as_deref(), Some("pcluster"));

    // A store written through the pre-engine entry point reads back with no
    // engine recorded (the reg-cluster-only era).
    let legacy = tmp("provenance-legacy.rcs");
    let w = StoreWriter::create(&legacy, m.gene_names(), m.condition_names(), &params).unwrap();
    w.write_cluster(&cluster).unwrap();
    w.finish().unwrap();
    let store = ClusterStore::open(&legacy).unwrap();
    assert_eq!(store.engine(), None);
    assert_eq!(store.engine_params_json(), None);
    assert_eq!(store.params(), &params);
    assert_eq!(store.stats().engine, None);
}
