//! Large-scale smoke tests, ignored by default (run with
//! `cargo test --release -- --ignored`). These exercise the sizes the
//! paper's Figure 7 sweeps at their upper ends and the memory behaviour of
//! the parallel driver.

use regcluster::core::{mine, mine_parallel, MiningParams};
use regcluster::datagen::{generate, SyntheticConfig};

#[test]
#[ignore = "multi-second release-mode scale test"]
fn ten_thousand_genes_mine_in_reasonable_time() {
    let cfg = SyntheticConfig {
        n_genes: 10_000,
        ..SyntheticConfig::default()
    };
    let data = generate(&cfg).unwrap();
    let params = MiningParams::new(100, 6, 0.1, 0.01).unwrap();
    let start = std::time::Instant::now();
    let clusters = mine(&data.matrix, &params).unwrap();
    let secs = start.elapsed().as_secs_f64();
    assert!(secs < 120.0, "mining took {secs}s");
    for c in clusters.iter().take(5) {
        c.validate(&data.matrix, &params).unwrap();
    }
}

#[test]
#[ignore = "multi-second release-mode scale test"]
fn parallel_matches_sequential_at_scale() {
    let cfg = SyntheticConfig {
        n_genes: 4000,
        ..SyntheticConfig::default()
    };
    let data = generate(&cfg).unwrap();
    let params = MiningParams::new(40, 6, 0.1, 0.01).unwrap();
    let seq = mine(&data.matrix, &params).unwrap();
    let par = mine_parallel(&data.matrix, &params, 8).unwrap();
    assert_eq!(seq, par);
}

#[test]
#[ignore = "multi-second release-mode scale test"]
fn wide_matrix_many_conditions() {
    let cfg = SyntheticConfig {
        n_conds: 60,
        ..SyntheticConfig::default()
    };
    let data = generate(&cfg).unwrap();
    let params = MiningParams::new(30, 6, 0.1, 0.01).unwrap();
    let start = std::time::Instant::now();
    let clusters = mine(&data.matrix, &params).unwrap();
    assert!(start.elapsed().as_secs_f64() < 120.0);
    for c in clusters.iter().take(5) {
        c.validate(&data.matrix, &params).unwrap();
    }
}
