//! Optional cluster post-processing.
//!
//! §5.2 of the paper notes that the reported yeast clusters overlap by up
//! to 85% and that "we did not perform any splitting and merging of
//! clusters" — implying such post-processing is the standard next step.
//! This module provides it as an *optional* stage, clearly separated from
//! the mining algorithm:
//!
//! * [`merge_overlapping`] greedily merges clusters whose cell-level
//!   Jaccard similarity exceeds a threshold, unioning genes (per
//!   orientation) and intersecting chains so the merged object remains a
//!   plain [`RegCluster`]. The merged cluster is *not* guaranteed to
//!   satisfy Definition 3.2 for the original ε (union of windows can
//!   exceed the spread), so callers who need the guarantee should
//!   re-validate and keep only conforming results —
//!   [`merge_overlapping_validated`] does exactly that.
//! * [`deduplicate_by_genes`] keeps, per distinct gene set, only the
//!   cluster with the longest chain — a lighter-weight way to shrink the
//!   subchain redundancy of strongly structured data.

use regcluster_matrix::{CondId, ExpressionMatrix};

use crate::{MiningParams, RegCluster};

fn jaccard_cells(a: &RegCluster, b: &RegCluster) -> f64 {
    let inter = a.cell_overlap(b);
    let union = a.n_cells() + b.n_cells() - inter;
    if union == 0 {
        return 0.0;
    }
    inter as f64 / union as f64
}

fn merge_pair(a: &RegCluster, b: &RegCluster) -> Option<RegCluster> {
    // Chains must be consistently ordered on their shared conditions; the
    // merged chain is `a`'s chain restricted to conditions present in both
    // (intersection keeps every member gene monotone).
    let shared: Vec<CondId> = a
        .chain
        .iter()
        .copied()
        .filter(|c| b.chain.contains(c))
        .collect();
    if shared.len() < 2 {
        return None;
    }
    let b_order: Vec<usize> = shared
        .iter()
        .map(|c| b.chain.iter().position(|x| x == c).expect("shared"))
        .collect();
    let same_direction = b_order.windows(2).all(|w| w[0] < w[1]);
    let inverted = b_order.windows(2).all(|w| w[0] > w[1]);
    if !same_direction && !inverted {
        return None;
    }
    let mut p = a.p_members.clone();
    let mut n = a.n_members.clone();
    // If b follows the shared conditions in the opposite direction, its
    // orientations flip relative to a's chain.
    let (b_p, b_n) = if same_direction {
        (&b.p_members, &b.n_members)
    } else {
        (&b.n_members, &b.p_members)
    };
    p.extend(b_p.iter().copied());
    n.extend(b_n.iter().copied());
    p.sort_unstable();
    p.dedup();
    n.sort_unstable();
    n.dedup();
    // A gene claimed by both orientations is contradictory; refuse to merge.
    if p.iter().any(|g| n.binary_search(g).is_ok()) {
        return None;
    }
    Some(RegCluster {
        chain: shared,
        p_members: p,
        n_members: n,
    })
}

/// Greedily merges cluster pairs whose cell-level Jaccard similarity is at
/// least `min_jaccard` (processing the most similar pair first), until no
/// pair qualifies. Merged clusters may violate the mining ε; see
/// [`merge_overlapping_validated`].
pub fn merge_overlapping(clusters: &[RegCluster], min_jaccard: f64) -> Vec<RegCluster> {
    assert!(
        (0.0..=1.0).contains(&min_jaccard),
        "min_jaccard must be a fraction"
    );
    let mut pool: Vec<RegCluster> = clusters.to_vec();
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..pool.len() {
            for j in i + 1..pool.len() {
                let sim = jaccard_cells(&pool[i], &pool[j]);
                if sim >= min_jaccard && best.is_none_or(|(_, _, s)| sim > s) {
                    best = Some((i, j, sim));
                }
            }
        }
        let Some((i, j, _)) = best else { break };
        match merge_pair(&pool[i], &pool[j]) {
            Some(merged) => {
                pool.swap_remove(j);
                pool.swap_remove(i);
                pool.push(merged);
            }
            None => {
                // Incompatible chains: treat the pair as unmergeable by
                // removing the smaller of the two from further pairing…
                // keeping both in the output. Simplest correct behaviour:
                // stop trying (further best pairs would loop forever).
                break;
            }
        }
    }
    pool.sort_by(|a, b| {
        a.chain
            .cmp(&b.chain)
            .then_with(|| a.p_members.cmp(&b.p_members))
    });
    pool
}

/// Like [`merge_overlapping`], but a merge is only committed when the
/// merged cluster still satisfies Definition 3.2 (re-validated against the
/// matrix), so the output carries the same guarantees as the miner's.
pub fn merge_overlapping_validated(
    clusters: &[RegCluster],
    min_jaccard: f64,
    matrix: &ExpressionMatrix,
    params: &MiningParams,
) -> Vec<RegCluster> {
    assert!(
        (0.0..=1.0).contains(&min_jaccard),
        "min_jaccard must be a fraction"
    );
    let mut pool: Vec<RegCluster> = clusters.to_vec();
    let mut frozen: Vec<(usize, usize)> = Vec::new(); // unmergeable pairs by identity
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..pool.len() {
            for j in i + 1..pool.len() {
                if frozen.contains(&(i, j)) {
                    continue;
                }
                let sim = jaccard_cells(&pool[i], &pool[j]);
                if sim >= min_jaccard && best.is_none_or(|(_, _, s)| sim > s) {
                    best = Some((i, j, sim));
                }
            }
        }
        let Some((i, j, _)) = best else { break };
        let merged = merge_pair(&pool[i], &pool[j])
            .filter(|m| m.chain.len() >= params.min_conds)
            .filter(|m| m.validate(matrix, params).is_ok());
        match merged {
            Some(m) => {
                pool.swap_remove(j);
                pool.swap_remove(i);
                pool.push(m);
                frozen.clear(); // indices shifted; recompute lazily
            }
            None => frozen.push((i, j)),
        }
    }
    pool.sort_by(|a, b| {
        a.chain
            .cmp(&b.chain)
            .then_with(|| a.p_members.cmp(&b.p_members))
    });
    pool
}

/// Keeps one cluster per distinct (gene set, orientation split): the one
/// with the longest chain, ties broken lexicographically.
pub fn deduplicate_by_genes(clusters: &[RegCluster]) -> Vec<RegCluster> {
    use std::collections::HashMap;
    let mut best: HashMap<(Vec<usize>, Vec<usize>), RegCluster> = HashMap::new();
    for c in clusters {
        let key = (c.p_members.clone(), c.n_members.clone());
        match best.get(&key) {
            Some(prev)
                if prev.chain.len() > c.chain.len()
                    || (prev.chain.len() == c.chain.len() && prev.chain <= c.chain) => {}
            _ => {
                best.insert(key, c.clone());
            }
        }
    }
    let mut out: Vec<RegCluster> = best.into_values().collect();
    out.sort_by(|a, b| {
        a.chain
            .cmp(&b.chain)
            .then_with(|| a.p_members.cmp(&b.p_members))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(chain: Vec<usize>, p: Vec<usize>, n: Vec<usize>) -> RegCluster {
        RegCluster {
            chain,
            p_members: p,
            n_members: n,
        }
    }

    #[test]
    fn merges_highly_overlapping_pair() {
        let a = c(vec![0, 1, 2, 3], vec![0, 1, 2], vec![]);
        let b = c(vec![0, 1, 2, 3], vec![0, 1, 3], vec![]);
        let merged = merge_overlapping(&[a, b], 0.4);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].p_members, vec![0, 1, 2, 3]);
        assert_eq!(merged[0].chain, vec![0, 1, 2, 3]);
    }

    #[test]
    fn does_not_merge_disjoint() {
        let a = c(vec![0, 1], vec![0, 1], vec![]);
        let b = c(vec![4, 5], vec![7, 8], vec![]);
        let merged = merge_overlapping(&[a.clone(), b.clone()], 0.1);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn merge_respects_inverted_chains() {
        // b's chain runs the other way, so its p-members become n-members
        // relative to a's orientation.
        let a = c(vec![0, 1, 2], vec![0, 1], vec![5]);
        let b = c(vec![2, 1, 0], vec![5, 6], vec![0, 1]);
        let merged = merge_pair(&a, &b).expect("compatible chains");
        assert_eq!(merged.chain, vec![0, 1, 2]);
        assert_eq!(merged.p_members, vec![0, 1]);
        assert_eq!(merged.n_members, vec![5, 6]);
    }

    #[test]
    fn merge_refuses_contradictory_orientation() {
        let a = c(vec![0, 1, 2], vec![0], vec![1]);
        let b = c(vec![0, 1, 2], vec![1], vec![0]);
        assert!(merge_pair(&a, &b).is_none());
    }

    #[test]
    fn merge_refuses_incompatible_orders() {
        let a = c(vec![0, 1, 2], vec![0], vec![]);
        let b = c(vec![1, 0, 2], vec![1], vec![]);
        assert!(merge_pair(&a, &b).is_none());
    }

    #[test]
    fn merged_chain_is_shared_conditions_only() {
        let a = c(vec![0, 1, 2, 3], vec![0, 1], vec![]);
        let b = c(vec![1, 2, 3, 4], vec![2, 3], vec![]);
        let merged = merge_pair(&a, &b).unwrap();
        assert_eq!(merged.chain, vec![1, 2, 3]);
        assert_eq!(merged.p_members, vec![0, 1, 2, 3]);
    }

    #[test]
    fn validated_merge_only_keeps_conforming_results() {
        use regcluster_matrix::ExpressionMatrix;
        // Two perfectly coherent halves that merge into a coherent whole.
        let base = [0.0f64, 2.0, 4.0, 6.0];
        let rows: Vec<Vec<f64>> = (1..=4)
            .map(|k| base.iter().map(|&v| k as f64 * v).collect())
            .collect();
        let m =
            ExpressionMatrix::from_flat_unlabeled(4, 4, rows.iter().flatten().copied().collect())
                .unwrap();
        let params = MiningParams::new(2, 3, 0.1, 0.01).unwrap();
        let a = c(vec![0, 1, 2, 3], vec![0, 1], vec![]);
        let b = c(vec![0, 1, 2, 3], vec![1, 2, 3], vec![]);
        let merged = merge_overlapping_validated(&[a, b], 0.2, &m, &params);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].p_members, vec![0, 1, 2, 3]);
        merged[0].validate(&m, &params).unwrap();
    }

    #[test]
    fn validated_merge_keeps_pair_apart_when_result_invalid() {
        use regcluster_matrix::ExpressionMatrix;
        // g0/g1 coherent; g2 shares the order but with different ratios, so
        // the merged triple violates ε and the merge must be refused.
        let m = ExpressionMatrix::from_flat_unlabeled(
            3,
            4,
            vec![
                0.0, 2.0, 4.0, 6.0, //
                0.0, 4.0, 8.0, 12.0, //
                0.0, 5.0, 6.0, 11.0,
            ],
        )
        .unwrap();
        let params = MiningParams::new(2, 4, 0.1, 0.01).unwrap();
        let a = c(vec![0, 1, 2, 3], vec![0, 1], vec![]);
        let b = c(vec![0, 1, 2, 3], vec![1, 2], vec![]);
        let merged = merge_overlapping_validated(&[a.clone(), b.clone()], 0.2, &m, &params);
        assert_eq!(
            merged.len(),
            2,
            "incoherent merge must be rejected: {merged:?}"
        );
    }

    #[test]
    fn dedup_by_genes_keeps_longest_chain() {
        let a = c(vec![0, 1, 2], vec![0, 1], vec![]);
        let b = c(vec![0, 1], vec![0, 1], vec![]);
        let d = c(vec![5, 6], vec![3], vec![4]);
        let out = deduplicate_by_genes(&[a.clone(), b, d.clone()]);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&a));
        assert!(out.contains(&d));
    }
}
