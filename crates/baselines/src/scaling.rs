//! Pure *scaling*-pattern mining via pCluster in log space.
//!
//! Equation 1 of the paper: `d_ic = s1 · d_jc  ⇒  log d_ic = log d_jc +
//! log s1`, so a pure scaling pattern in the raw data is a pure shifting
//! pattern in log space. pCluster and δ-cluster rely on exactly this global
//! transform; Tricluster's 2D restriction is the same model mined natively.
//! This module is the workspace's stand-in for the "pure scaling" baseline
//! family (substitution S3 of DESIGN.md).

use regcluster_matrix::{transform, ExpressionMatrix, MatrixError};

use crate::pcluster::{pcluster, PClusterParams};
use crate::Bicluster;

/// Why the scaling miner could not run.
#[derive(Debug)]
pub enum ScalingError {
    /// The matrix contains non-positive values, so the log transform the
    /// prior work prescribes is undefined.
    NotPositive(MatrixError),
}

impl std::fmt::Display for ScalingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScalingError::NotPositive(e) => {
                write!(f, "scaling miner requires positive expression values: {e}")
            }
        }
    }
}

impl std::error::Error for ScalingError {}

/// Mines pure scaling patterns: `delta` is the maximum pScore in **log₂
/// space**, i.e. the allowed wobble of `log₂(d_i / d_j)` within a cluster.
///
/// # Errors
///
/// Returns [`ScalingError::NotPositive`] when any value is `≤ 0`.
pub fn scaling_pcluster(
    matrix: &ExpressionMatrix,
    params: &PClusterParams,
) -> Result<Vec<Bicluster>, ScalingError> {
    let logged = transform::log_transform(matrix, 2.0).map_err(ScalingError::NotPositive)?;
    Ok(pcluster(&logged, params))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: Vec<Vec<f64>>) -> ExpressionMatrix {
        let genes = (0..rows.len()).map(|i| format!("g{i}")).collect();
        let conds = (0..rows[0].len()).map(|i| format!("c{i}")).collect();
        ExpressionMatrix::from_rows(genes, conds, rows).unwrap()
    }

    #[test]
    fn finds_exact_scaling_family() {
        let base = [1.0f64, 4.0, 2.0, 8.0, 5.0];
        let rows = vec![
            base.to_vec(),
            base.iter().map(|v| v * 3.0).collect(),
            base.iter().map(|v| v * 0.5).collect(),
            vec![9.0, 1.0, 7.0, 2.0, 3.0], // noise
        ];
        let m = matrix(rows);
        let params = PClusterParams {
            delta: 1e-9,
            min_genes: 3,
            min_conds: 5,
            ..Default::default()
        };
        let found = scaling_pcluster(&m, &params).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].genes, vec![0, 1, 2]);
    }

    #[test]
    fn misses_shifting_family_in_raw_space() {
        // A pure SHIFT is not a scaling pattern: log(d + s) is not a shift
        // of log d.
        let base = [1.0f64, 4.0, 2.0, 8.0, 5.0];
        let rows = vec![base.to_vec(), base.iter().map(|v| v + 5.0).collect()];
        let m = matrix(rows);
        let params = PClusterParams {
            delta: 0.05,
            min_genes: 2,
            min_conds: 5,
            ..Default::default()
        };
        assert!(scaling_pcluster(&m, &params).unwrap().is_empty());
    }

    #[test]
    fn misses_shifting_and_scaling_patterns() {
        // The paper's motivating case: d1 = 2·d0 + 3 is neither pure shift
        // nor pure scale; the log trick does not rescue it.
        let g0 = [1.0f64, 4.0, 2.0, 8.0, 5.0];
        let rows = vec![g0.to_vec(), g0.iter().map(|v| 2.0 * v + 3.0).collect()];
        let m = matrix(rows);
        let params = PClusterParams {
            delta: 0.1,
            min_genes: 2,
            min_conds: 4,
            ..Default::default()
        };
        assert!(scaling_pcluster(&m, &params).unwrap().is_empty());
    }

    #[test]
    fn rejects_non_positive_values() {
        let m = matrix(vec![vec![1.0, -2.0], vec![3.0, 4.0]]);
        let params = PClusterParams::default();
        assert!(matches!(
            scaling_pcluster(&m, &params),
            Err(ScalingError::NotPositive(_))
        ));
    }
}
