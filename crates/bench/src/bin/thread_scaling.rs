//! Thread-scaling ablation of the work-stealing mining engine against the
//! old static root split.
//!
//! Two workloads:
//!
//! * `fig7` — the paper's Figure 7 default (3000 genes × 30 conditions,
//!   30 planted clusters), where root subtrees are roughly even;
//! * `skewed` — a single large planted cluster, concentrating most of the
//!   enumeration tree under a handful of roots, the case the static root
//!   split cannot balance.
//!
//! For every (strategy × thread count) point the binary reports wall-clock
//! time and, because wall-clock speedup is meaningless on single-CPU runners,
//! a hardware-independent **load-balance** metric: each worker's share of the
//! enumeration nodes it expanded. `max_share ≈ 1/threads` means the schedule
//! would scale on real cores; `max_share ≈ 1` means one worker did
//! everything. Results go to `results/thread_scaling.json`.

use std::collections::HashMap;
use std::sync::Mutex;
use std::thread::ThreadId;

use regcluster_bench::{quick_mode, time, write_json};
use regcluster_core::{
    mine_engine_with, EngineConfig, MineControl, MiningParams, SplitStrategy, SyncMineObserver,
};
use regcluster_datagen::{generate, SyntheticConfig};
use regcluster_matrix::ExpressionMatrix;
use serde::Serialize;

/// Counts enumeration nodes per worker thread.
#[derive(Default)]
struct PerWorkerNodes {
    counts: Mutex<HashMap<ThreadId, usize>>,
}

impl PerWorkerNodes {
    fn shares(&self) -> Vec<f64> {
        let counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
        let total: usize = counts.values().sum();
        let mut shares: Vec<f64> = counts
            .values()
            .map(|&n| n as f64 / total.max(1) as f64)
            .collect();
        shares.sort_by(|a, b| b.total_cmp(a));
        shares
    }
}

impl SyncMineObserver for PerWorkerNodes {
    fn node_entered(&self, _chain: &[usize], _n_p: usize, _n_n: usize) {
        *self
            .counts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(std::thread::current().id())
            .or_insert(0) += 1;
    }
}

#[derive(Serialize)]
struct Point {
    workload: &'static str,
    strategy: &'static str,
    threads: usize,
    runtime_s: f64,
    n_clusters: usize,
    /// Fraction of enumeration nodes expanded by the busiest worker
    /// (1/threads = perfectly balanced, 1.0 = serial).
    max_worker_share: f64,
}

#[derive(Serialize)]
struct Output {
    host_cpus: usize,
    repetitions: usize,
    points: Vec<Point>,
}

fn run_point(
    workload: &'static str,
    m: &ExpressionMatrix,
    params: &MiningParams,
    strategy: (&'static str, SplitStrategy),
    threads: usize,
    reps: usize,
) -> Point {
    let config = EngineConfig::new(threads).with_split(strategy.1);
    let mut total = 0.0;
    let mut n_clusters = 0;
    let mut max_share = 0.0f64;
    for _ in 0..reps {
        let observer = PerWorkerNodes::default();
        let (report, secs) = time(|| {
            mine_engine_with(m, params, &config, &MineControl::new(), &observer)
                .expect("mining succeeds")
        });
        total += secs;
        n_clusters = report.clusters.len();
        max_share = max_share.max(observer.shares().first().copied().unwrap_or(1.0));
    }
    Point {
        workload,
        strategy: strategy.0,
        threads,
        runtime_s: total / reps as f64,
        n_clusters,
        max_worker_share: max_share,
    }
}

fn sweep(
    workload: &'static str,
    m: &ExpressionMatrix,
    params: &MiningParams,
    reps: usize,
    points: &mut Vec<Point>,
) {
    println!(
        "\nworkload {workload}: {} genes × {} conditions",
        m.n_genes(),
        m.n_conditions()
    );
    println!(
        "{:>9}  {:>7}  {:>11}  {:>8}  {:>15}",
        "strategy", "threads", "runtime (s)", "clusters", "max node share"
    );
    for threads in [1usize, 2, 4, 8] {
        for strategy in [
            ("stealing", SplitStrategy::WorkStealing),
            ("static", SplitStrategy::StaticRoots),
        ] {
            let p = run_point(workload, m, params, strategy, threads, reps);
            println!(
                "{:>9}  {:>7}  {:>11.3}  {:>8}  {:>15.3}",
                p.strategy, p.threads, p.runtime_s, p.n_clusters, p.max_worker_share
            );
            points.push(p);
        }
    }
}

fn main() {
    let quick = quick_mode();
    let reps = if quick { 1 } else { 3 };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "thread-scaling ablation (host has {host_cpus} CPU(s); {reps} repetition(s) per point)"
    );

    let mut points = Vec::new();

    // Figure 7 default workload.
    let fig7 = generate(&SyntheticConfig {
        n_genes: if quick { 1000 } else { 3000 },
        ..SyntheticConfig::default()
    })
    .expect("feasible");
    let min_g = ((0.01 * fig7.matrix.n_genes() as f64).round() as usize).max(2);
    let params = MiningParams::new(min_g, 6, 0.1, 0.01).expect("valid");
    sweep("fig7", &fig7.matrix, &params, reps, &mut points);

    // Skewed workload: one dominant planted cluster with a deep chain plus
    // mild noise (which multiplies near-coherent windows, hence branching).
    // Measured root distribution: the top TWO roots hold ~98% of the ~135k
    // enumeration nodes — the shape a static root split cannot balance
    // beyond 2 effective workers.
    let skewed = generate(&SyntheticConfig {
        n_genes: if quick { 200 } else { 400 },
        n_conds: 16,
        n_clusters: 1,
        avg_cluster_dims: 12,
        cluster_gene_frac: 0.5,
        noise_sigma: 0.05,
        ..SyntheticConfig::default()
    })
    .expect("feasible");
    let params = MiningParams::new(8, 6, 0.1, 0.05).expect("valid");
    sweep("skewed", &skewed.matrix, &params, reps, &mut points);

    write_json(
        "thread_scaling.json",
        &Output {
            host_cpus,
            repetitions: reps,
            points,
        },
    );
}
