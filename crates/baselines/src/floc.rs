//! δ-clusters via FLOC-style iterative improvement (Yang, Wang, Wang & Yu,
//! ICDE 2002) — the paper's comparator \[25\].
//!
//! A δ-cluster is a submatrix whose mean squared residue (the same additive
//! coherence score as Cheng & Church's) is below δ; the original algorithm,
//! FLOC, maintains `k` candidate clusters simultaneously and repeatedly
//! applies the best **action** — toggling one row's or one column's
//! membership in one cluster — until no action lowers the average residue.
//! Unlike Cheng & Church's delete-then-mask loop, FLOC never masks the
//! matrix, so clusters may overlap.
//!
//! The reg-cluster paper groups δ-cluster with pCluster as the
//! pure-*shifting* family (§1.1, Equation 1): an additive-model residue
//! cannot represent scaling, let alone mixed shifting-and-scaling or
//! negative correlation. The tests verify both the improvement behaviour
//! and that planted shifting structure is found while scaling structure
//! scores poorly.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use regcluster_core::MineControl;
use regcluster_matrix::ExpressionMatrix;

use crate::bicluster::BaselineRun;
use crate::Bicluster;

/// Parameters of the FLOC search.
#[derive(Debug, Clone, PartialEq)]
pub struct FlocParams {
    /// Number of clusters maintained.
    pub n_clusters: usize,
    /// Target mean squared residue; clusters above δ at convergence are
    /// dropped.
    pub delta: f64,
    /// Probability that a row/column is seeded into a cluster.
    pub seed_prob: f64,
    /// Iteration cap (each iteration scans every row and column once).
    pub max_iterations: usize,
    /// Minimum rows/columns for a reported cluster.
    pub min_genes: usize,
    /// Minimum columns for a reported cluster.
    pub min_conds: usize,
    /// RNG seed for the initial assignment.
    pub seed: u64,
}

impl Default for FlocParams {
    fn default() -> Self {
        Self {
            n_clusters: 5,
            delta: 0.5,
            seed_prob: 0.3,
            max_iterations: 50,
            min_genes: 2,
            min_conds: 2,
            seed: 0,
        }
    }
}

/// One candidate cluster as membership bitmaps.
#[derive(Clone)]
struct Candidate {
    rows: Vec<bool>,
    cols: Vec<bool>,
}

impl Candidate {
    fn n_rows(&self) -> usize {
        self.rows.iter().filter(|&&b| b).count()
    }
    fn n_cols(&self) -> usize {
        self.cols.iter().filter(|&&b| b).count()
    }
}

/// Mean squared residue of a membership-bitmap cluster (additive model).
fn residue(matrix: &ExpressionMatrix, c: &Candidate) -> f64 {
    let rows: Vec<usize> = (0..matrix.n_genes()).filter(|&r| c.rows[r]).collect();
    let cols: Vec<usize> = (0..matrix.n_conditions()).filter(|&j| c.cols[j]).collect();
    if rows.len() < 2 || cols.len() < 2 {
        // Degenerate clusters are trivially coherent; give them a residue
        // of zero so actions that shrink below 2×2 are never attractive
        // (handled by the gain rule below).
        return 0.0;
    }
    let nr = rows.len() as f64;
    let nc = cols.len() as f64;
    let mut row_mean = vec![0.0f64; rows.len()];
    let mut col_mean = vec![0.0f64; cols.len()];
    let mut total = 0.0;
    for (ri, &r) in rows.iter().enumerate() {
        for (ci, &cj) in cols.iter().enumerate() {
            let v = matrix.value(r, cj);
            row_mean[ri] += v;
            col_mean[ci] += v;
            total += v;
        }
    }
    for m in &mut row_mean {
        *m /= nc;
    }
    for m in &mut col_mean {
        *m /= nr;
    }
    let overall = total / (nr * nc);
    let mut acc = 0.0;
    for (ri, &r) in rows.iter().enumerate() {
        for (ci, &cj) in cols.iter().enumerate() {
            let d = matrix.value(r, cj) - row_mean[ri] - col_mean[ci] + overall;
            acc += d * d;
        }
    }
    acc / (nr * nc)
}

/// Runs FLOC and returns the clusters whose residue converged below δ.
pub fn floc(matrix: &ExpressionMatrix, params: &FlocParams) -> Vec<Bicluster> {
    floc_with_control(matrix, params, &MineControl::new()).clusters
}

/// As [`floc`], polling `control` once per improvement iteration so a
/// deadline or cancellation bounds the run.
///
/// A tripped control stops iterating and reports whichever candidates have
/// *already* converged below δ (partial convergence still passes the final
/// residue filter, so every reported cluster is a valid δ-cluster), with
/// [`BaselineRun::truncated`] set. A pre-cancelled control skips even the
/// random seeding and returns an empty truncated run.
pub fn floc_with_control(
    matrix: &ExpressionMatrix,
    params: &FlocParams,
    control: &MineControl,
) -> BaselineRun {
    assert!(params.delta >= 0.0, "delta must be ≥ 0");
    assert!(
        (0.0..=1.0).contains(&params.seed_prob),
        "seed_prob must be a probability"
    );
    if control.is_cancelled() {
        return BaselineRun {
            clusters: Vec::new(),
            truncated: true,
        };
    }
    let mut truncated = false;
    let n_rows = matrix.n_genes();
    let n_cols = matrix.n_conditions();
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);

    // Seed candidates; force at least 2 rows and 2 columns each.
    let mut cands: Vec<Candidate> = (0..params.n_clusters)
        .map(|_| {
            let mut c = Candidate {
                rows: (0..n_rows)
                    .map(|_| rng.gen_bool(params.seed_prob))
                    .collect(),
                cols: (0..n_cols)
                    .map(|_| rng.gen_bool(params.seed_prob))
                    .collect(),
            };
            while c.n_rows() < 2 {
                c.rows[rng.gen_range(0..n_rows)] = true;
            }
            while c.n_cols() < 2 {
                c.cols[rng.gen_range(0..n_cols)] = true;
            }
            c
        })
        .collect();
    let mut residues: Vec<f64> = cands.iter().map(|c| residue(matrix, c)).collect();

    // FLOC's action gain balances residue and volume: while a cluster is
    // above δ, reducing the residue is the goal; once at or below δ, growth
    // (volume) is the goal, subject to staying below δ. Shrinking a
    // conforming cluster is never a gain, which prevents the degenerate
    // collapse onto trivial 2 × 2 blocks.
    let volume = |c: &Candidate| (c.n_rows() * c.n_cols()) as f64;
    let gain_of = |old_res: f64, old_vol: f64, new_res: f64, new_vol: f64, delta: f64| -> f64 {
        let old_ok = old_res <= delta;
        let new_ok = new_res <= delta;
        match (old_ok, new_ok) {
            (false, true) => 1e9 + (new_vol - old_vol),
            (true, true) => new_vol - old_vol,
            (false, false) => old_res - new_res,
            (true, false) => f64::NEG_INFINITY,
        }
    };

    for _ in 0..params.max_iterations {
        if control.is_cancelled() {
            truncated = true;
            break;
        }
        let mut improved = false;
        // Row actions: toggle row r in its best cluster.
        for r in 0..n_rows {
            let mut best: Option<(usize, f64)> = None;
            for (k, cand) in cands.iter().enumerate() {
                // Toggling off must not drop below 2 rows.
                if cand.rows[r] && cand.n_rows() <= 2 {
                    continue;
                }
                let mut trial = cand.clone();
                trial.rows[r] = !trial.rows[r];
                let new_res = residue(matrix, &trial);
                let gain = gain_of(
                    residues[k],
                    volume(cand),
                    new_res,
                    volume(&trial),
                    params.delta,
                );
                if gain > 1e-12 && best.is_none_or(|(_, g)| gain > g) {
                    best = Some((k, gain));
                }
            }
            if let Some((k, _)) = best {
                cands[k].rows[r] = !cands[k].rows[r];
                residues[k] = residue(matrix, &cands[k]);
                improved = true;
            }
        }
        // Column actions.
        for j in 0..n_cols {
            let mut best: Option<(usize, f64)> = None;
            for (k, cand) in cands.iter().enumerate() {
                if cand.cols[j] && cand.n_cols() <= 2 {
                    continue;
                }
                let mut trial = cand.clone();
                trial.cols[j] = !trial.cols[j];
                let new_res = residue(matrix, &trial);
                let gain = gain_of(
                    residues[k],
                    volume(cand),
                    new_res,
                    volume(&trial),
                    params.delta,
                );
                if gain > 1e-12 && best.is_none_or(|(_, g)| gain > g) {
                    best = Some((k, gain));
                }
            }
            if let Some((k, _)) = best {
                cands[k].cols[j] = !cands[k].cols[j];
                residues[k] = residue(matrix, &cands[k]);
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    let mut out: Vec<Bicluster> = Vec::new();
    for (k, cand) in cands.iter().enumerate() {
        if residues[k] <= params.delta
            && cand.n_rows() >= params.min_genes
            && cand.n_cols() >= params.min_conds
        {
            let rows: Vec<usize> = (0..n_rows).filter(|&r| cand.rows[r]).collect();
            let cols: Vec<usize> = (0..n_cols).filter(|&j| cand.cols[j]).collect();
            out.push(Bicluster::new(rows, cols));
        }
    }
    // The tie-break on conds makes the order total, so exact duplicates
    // (distinct candidates converging onto the same block) are adjacent
    // and dedup removes every one of them.
    out.sort_by(|a, b| {
        (b.n_genes() * b.n_conds())
            .cmp(&(a.n_genes() * a.n_conds()))
            .then_with(|| a.genes.cmp(&b.genes))
            .then_with(|| a.conds.cmp(&b.conds))
    });
    out.dedup();
    BaselineRun {
        clusters: out,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: Vec<Vec<f64>>) -> ExpressionMatrix {
        let genes = (0..rows.len()).map(|i| format!("g{i}")).collect();
        let conds = (0..rows[0].len()).map(|i| format!("c{i}")).collect();
        ExpressionMatrix::from_rows(genes, conds, rows).unwrap()
    }

    #[test]
    fn residue_zero_for_additive_block() {
        let m = matrix(vec![vec![1.0, 3.0], vec![2.0, 4.0], vec![0.0, 2.0]]);
        let c = Candidate {
            rows: vec![true; 3],
            cols: vec![true; 2],
        };
        assert!(residue(&m, &c) < 1e-12);
    }

    #[test]
    fn converges_on_planted_additive_cluster() {
        // 5 additive genes over 4 conditions + pseudo-noise rows.
        let base = [0.0f64, 4.0, 1.0, 6.0];
        let mut rows: Vec<Vec<f64>> = (0..5)
            .map(|i| base.iter().map(|&v| v + i as f64).collect())
            .collect();
        for i in 0..5 {
            rows.push(
                (0..4)
                    .map(|j| ((i * 47 + j * 31 + 11) % 29) as f64 / 2.9)
                    .collect(),
            );
        }
        let m = matrix(rows);
        let params = FlocParams {
            n_clusters: 3,
            delta: 0.05,
            seed_prob: 0.5,
            max_iterations: 60,
            min_genes: 4,
            min_conds: 3,
            seed: 3,
        };
        let found = floc(&m, &params);
        assert!(
            !found.is_empty(),
            "FLOC should converge onto the planted block"
        );
        let best = &found[0];
        let planted_hit = (0..5).filter(|g| best.genes.contains(g)).count();
        assert!(planted_hit >= 4, "found {:?}", best.genes);
    }

    #[test]
    fn reported_clusters_respect_delta() {
        let rows: Vec<Vec<f64>> = (0..8)
            .map(|i| (0..5).map(|j| ((i * 13 + j * 7 + 1) % 17) as f64).collect())
            .collect();
        let m = matrix(rows);
        let params = FlocParams {
            delta: 0.3,
            ..FlocParams::default()
        };
        for bc in floc(&m, &params) {
            let cand = Candidate {
                rows: (0..m.n_genes()).map(|r| bc.genes.contains(&r)).collect(),
                cols: (0..m.n_conditions())
                    .map(|c| bc.conds.contains(&c))
                    .collect(),
            };
            assert!(residue(&m, &cand) <= params.delta + 1e-9);
            assert!(bc.n_genes() >= params.min_genes);
            assert!(bc.n_conds() >= params.min_conds);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|i| (0..5).map(|j| ((i * 13 + j * 7 + 1) % 17) as f64).collect())
            .collect();
        let m = matrix(rows);
        let params = FlocParams::default();
        assert_eq!(floc(&m, &params), floc(&m, &params));
    }

    #[test]
    fn precancelled_control_returns_truncated_and_empty() {
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|i| (0..5).map(|j| ((i * 13 + j * 7 + 1) % 17) as f64).collect())
            .collect();
        let m = matrix(rows);
        let params = FlocParams::default();
        let control = MineControl::new();
        control.cancel();
        let run = floc_with_control(&m, &params, &control);
        assert!(run.truncated);
        assert!(run.clusters.is_empty());
        // An untripped control reproduces the plain entry point.
        let run = floc_with_control(&m, &params, &MineControl::new());
        assert!(!run.truncated);
        assert_eq!(run.clusters, floc(&m, &params));
    }

    #[test]
    fn scaling_patterns_have_high_residue() {
        // A clean multiplicative family: additive residue stays large, so
        // δ-clusters cannot represent it — the paper's Equation 1 point.
        let base = [1.0f64, 2.0, 4.0, 8.0];
        let rows: Vec<Vec<f64>> = (1..=4)
            .map(|k| base.iter().map(|&v| v * k as f64).collect())
            .collect();
        let m = matrix(rows);
        let c = Candidate {
            rows: vec![true; 4],
            cols: vec![true; 4],
        };
        assert!(residue(&m, &c) > 0.5);
        let params = FlocParams {
            delta: 0.05,
            n_clusters: 3,
            ..FlocParams::default()
        };
        let found = floc(&m, &params);
        // Whatever survives must be a trivial fragment, not the full family.
        assert!(found.iter().all(|b| b.n_genes() < 4 || b.n_conds() < 4));
    }
}
