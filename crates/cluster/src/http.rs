//! Dependency-free HTTP/1.1 plumbing for the cluster control plane.
//!
//! Unlike the serving layer's GET-only pool (`regcluster-cli::serve`),
//! the coordinator needs request bodies: shard uploads POST whole `.rcs`
//! files. Control-plane traffic is a handful of workers heartbeating, so
//! a thread-per-connection acceptor is plenty — the fixed-pool + shed
//! machinery of the read path would be over-engineering here.
//!
//! Every connection is one request/response exchange (`Connection:
//! close` semantics), which keeps both ends trivially correct across
//! coordinator restarts: a worker never has to reason about a half-dead
//! keep-alive socket.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Largest accepted request body (a shard upload), 256 MiB.
const MAX_BODY: usize = 256 << 20;

/// Per-socket read/write timeout, so a hung peer cannot wedge a
/// connection thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// One parsed inbound request.
pub struct Request {
    /// `GET` or `POST` (anything else is rejected with 405).
    pub method: String,
    /// Request path, e.g. `/lease/acquire`.
    pub path: String,
    /// Raw body bytes (empty for GET).
    pub body: Vec<u8>,
}

/// One outbound response.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from an already-encoded document.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// A running control-plane HTTP server. Dropping the handle does **not**
/// stop it; call [`shutdown`](HttpServer::shutdown).
pub struct HttpServer {
    port: u16,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `127.0.0.1:port` (0 picks an ephemeral port) and serves
    /// every connection on its own thread through `handler`.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the port cannot be bound.
    pub fn start<F>(port: u16, handler: F) -> std::io::Result<Self>
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let port = listener.local_addr()?.port();
        let stop = Arc::new(AtomicBool::new(false));
        let handler = Arc::new(handler);
        let stop_accept = Arc::clone(&stop);
        let acceptor = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &*handler);
                });
            }
        });
        Ok(HttpServer {
            port,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Stops accepting and joins the acceptor thread. In-flight
    /// connection threads finish on their own.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

fn serve_connection<F>(stream: TcpStream, handler: &F) -> std::io::Result<()>
where
    F: Fn(&Request) -> Response,
{
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let response = match read_request(&mut reader) {
        Ok(req) => handler(&req),
        Err(status) => Response::text(status, reason(status)),
    };
    write_response(stream, &response)
}

/// Parses one request off `reader`; `Err` carries the status to reject
/// with.
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, u16> {
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|_| 400u16)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(400u16)?.to_string();
    let path = parts.next().ok_or(400u16)?.to_string();
    if method != "GET" && method != "POST" {
        return Err(405u16);
    }
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(|_| 400u16)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().map_err(|_| 400u16)?;
        }
    }
    if content_length > MAX_BODY {
        return Err(413u16);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|_| 400u16)?;
    Ok(Request { method, path, body })
}

fn write_response(mut stream: TcpStream, response: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// Performs one blocking request against `addr` (`host:port`), returning
/// `(status, body)`. Bodies are sent as `application/octet-stream`; the
/// peer's declared `Content-Length` bounds the read.
///
/// # Errors
///
/// [`std::io::Error`] for connect/read/write failures or a malformed
/// response.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<(u16, Vec<u8>)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/octet-stream\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("malformed status line {status_line:?}")))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = Some(
                v.parse()
                    .map_err(|_| std::io::Error::other("bad content-length"))?,
            );
        }
    }
    let body = match content_length {
        Some(n) if n <= MAX_BODY => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            buf
        }
        Some(n) => {
            return Err(std::io::Error::other(format!(
                "response body {n} too large"
            )));
        }
        // Connection-close framing: read to EOF.
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_get_and_post() {
        let server = HttpServer::start(0, |req| match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/ping") => Response::text(200, "pong"),
            ("POST", "/echo") => Response {
                status: 200,
                content_type: "application/octet-stream",
                body: req.body.clone(),
            },
            _ => Response::text(404, "nope"),
        })
        .unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        let (status, body) = http_request(&addr, "GET", "/ping", &[]).unwrap();
        assert_eq!((status, body.as_slice()), (200, b"pong".as_slice()));
        let payload = vec![7u8; 100_000];
        let (status, body) = http_request(&addr, "POST", "/echo", &payload).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, payload);
        let (status, _) = http_request(&addr, "GET", "/missing", &[]).unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn rejects_unknown_methods() {
        let server = HttpServer::start(0, |_| Response::text(200, "ok")).unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        let (status, _) = http_request(&addr, "DELETE", "/x", &[]).unwrap();
        assert_eq!(status, 405);
        server.shutdown();
    }
}
