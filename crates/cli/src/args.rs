//! Command-line argument parsing.

use std::collections::HashMap;
use std::fmt;

use regcluster_core::{MiningParams, RegulationThreshold};
use regcluster_datagen::{PatternKind, SyntheticConfig};

/// A parsed invocation.
// One value of this type exists per process; variant size is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Mine clusters from a matrix file with any registered engine.
    Mine {
        /// Input matrix path.
        input: String,
        /// Engine name (see [`regcluster_engines::ENGINE_NAMES`]); the
        /// default `reg-cluster` is the paper's miner.
        engine: String,
        /// Mining parameters. For non-default engines only `min_genes` /
        /// `min_conds` (and the post-filters) apply; γ/ε are reg-cluster
        /// knobs.
        params: MiningParams,
        /// Baseline model tolerance (pScore δ, residue δ, ratio ε or
        /// quantization step, engine-dependent); `None` = the engine's
        /// conventional default. Ignored by `reg-cluster`.
        delta: Option<f64>,
        /// Worker threads (1 = a single engine worker).
        threads: usize,
        /// Wall-clock budget in seconds; the run stops cooperatively when it
        /// expires and reports partial, truncated results.
        deadline_secs: Option<f64>,
        /// Print a progress line to stderr as clusters stream in.
        progress: bool,
        /// Optional JSON output path (stdout table otherwise).
        output: Option<String>,
        /// Missing-value handling: `none`, `row-mean`, `col-mean`.
        impute: String,
        /// Print search-effort statistics (nodes, prunings) after mining.
        stats: bool,
        /// Also stream clusters into an indexed binary store (`.rcs`).
        store: Option<String>,
        /// Write a Prometheus text snapshot of the run's metrics here.
        metrics: Option<String>,
        /// Write a JSON snapshot of the run's metrics here (stamped with
        /// the snapshot `format_version`).
        metrics_json: Option<String>,
        /// Write crash-recovery snapshots (`.rck`) here: on deadline,
        /// cancellation or worker panic, and periodically when
        /// `checkpoint_every_secs` is set.
        checkpoint: Option<String>,
        /// Also snapshot roughly every this many seconds while mining.
        checkpoint_every_secs: Option<f64>,
        /// Resume an interrupted run from this `.rck` checkpoint.
        resume: Option<String>,
        /// Delta-mine against this previous `.rcs` store (or generations
        /// directory): re-enumerate only the subtrees whose input rows
        /// changed, splicing the rest from the previous run.
        delta_from: Option<String>,
    },
    /// Generate a synthetic dataset.
    Generate {
        /// Output matrix path.
        output: String,
        /// Generator configuration.
        config: SyntheticConfig,
        /// Optional ground-truth JSON path.
        ground_truth: Option<String>,
    },
    /// Generate the simulated yeast benchmark (matrix + GO annotations).
    GenerateYeast {
        /// Output matrix path.
        output: String,
        /// Path for the synthetic GO database (JSON).
        go: Option<String>,
        /// Path for the planted-module ground truth (JSON).
        modules: Option<String>,
        /// RNG seed.
        seed: u64,
    },
    /// GO-term enrichment of mined clusters against an annotation database.
    Enrich {
        /// Mined clusters (JSON, as written by `mine --output`).
        clusters: String,
        /// GO database (JSON, as written by `generate-yeast --go`).
        go: String,
        /// How many clusters to report (largest first).
        top: usize,
    },
    /// Score mined clusters against ground truth.
    Eval {
        /// Mined clusters (JSON, as written by `mine --output`).
        clusters: String,
        /// Ground truth (JSON, as written by `generate --ground-truth`).
        ground_truth: String,
    },
    /// Print matrix statistics.
    Info {
        /// Input matrix path.
        input: String,
    },
    /// Print a gene's RWave^γ model (ordering + regulation pointers).
    RWave {
        /// Input matrix path.
        input: String,
        /// Gene label to inspect.
        gene: String,
        /// Regulation threshold (fraction of the gene's range).
        gamma: f64,
    },
    /// Filter a `.rcs` cluster store offline.
    Query {
        /// Store path (as written by `mine --store`).
        store: String,
        /// Comma-separated gene names or ids; all must be members.
        genes: Option<String>,
        /// Comma-separated condition names or ids; all must be on the chain.
        conds: Option<String>,
        /// Minimum member genes.
        min_genes: u32,
        /// Minimum chain length.
        min_conds: u32,
        /// Keep only the N largest matches (by covered cells).
        top: Option<usize>,
        /// Print matches as JSON instead of a table.
        json: bool,
    },
    /// Serve a `.rcs` cluster store over HTTP.
    Serve {
        /// Store path (as written by `mine --store`), or — when `watch`
        /// is set — a generations directory (`serve --watch <dir>`).
        store: String,
        /// `store` is a generations directory: serve its published
        /// generation and hot-swap to new ones as `mine --store <dir>`
        /// publishes them, while in-flight readers drain off the old one.
        watch: bool,
        /// Port on 127.0.0.1 (0 = pick a free port, printed on startup).
        port: u16,
        /// Worker threads handling requests.
        threads: usize,
        /// Stop gracefully after this many requests (smoke-test hook).
        requests: Option<u64>,
        /// Accept-queue capacity; connections beyond it are shed with
        /// `503 + Retry-After` instead of piling up unboundedly.
        queue: usize,
        /// How often (milliseconds) the `--watch` poller re-reads the
        /// generations directory's `CURRENT` pointer.
        watch_interval_ms: u64,
    },
    /// Coordinate a distributed mining run: partition the root space,
    /// lease ranges to workers over HTTP, merge uploaded shards
    /// bit-identically to a single-node run and publish the result as the
    /// store directory's next generation.
    Coordinator {
        /// Input matrix path (workers must load a byte-identical copy).
        input: String,
        /// Mining parameters (reg-cluster engine; no post-filters — they
        /// act across root boundaries and would break merge identity).
        params: MiningParams,
        /// Generations directory the merged store is published into.
        store: String,
        /// Scratch directory for staged shards.
        work_dir: String,
        /// Control-plane port on 127.0.0.1 (0 = pick a free port).
        port: u16,
        /// Number of leases to slice the root space into.
        leases: usize,
        /// Lease time-to-live in milliseconds; a lease not renewed within
        /// this window is returned to the pool and re-granted.
        lease_ttl_ms: u64,
        /// Keep serving `/job`, `/status` and `/metrics` after publishing
        /// instead of exiting (for scripted harnesses).
        linger: bool,
    },
    /// Mine root ranges leased from a coordinator, uploading sealed
    /// shards and resuming interrupted leases from local checkpoints.
    Worker {
        /// Input matrix path (must match the coordinator's copy).
        input: String,
        /// Coordinator control-plane address, `host:port`.
        coordinator: String,
        /// Scratch directory for in-progress shards and checkpoints.
        work_dir: String,
        /// Mining threads for the leased subtrees.
        threads: usize,
        /// Worker name reported to the coordinator (default: pid-based).
        worker_id: Option<String>,
        /// Idle poll interval in milliseconds while waiting for a grant.
        poll_ms: u64,
        /// Snapshot the mining frontier about every this many seconds.
        checkpoint_every_secs: f64,
    },
    /// Print usage.
    Help,
}

impl Command {
    /// The subcommand keyword that parses to this variant.
    ///
    /// The match is exhaustive on purpose: adding a variant fails to
    /// compile until it is named here, and the USAGE test then requires
    /// the help text to document it.
    pub fn subcommand_name(&self) -> &'static str {
        match self {
            Command::Mine { .. } => "mine",
            Command::Generate { .. } => "generate",
            Command::GenerateYeast { .. } => "generate-yeast",
            Command::Enrich { .. } => "enrich",
            Command::Eval { .. } => "eval",
            Command::Info { .. } => "info",
            Command::RWave { .. } => "rwave",
            Command::Query { .. } => "query",
            Command::Serve { .. } => "serve",
            Command::Coordinator { .. } => "coordinator",
            Command::Worker { .. } => "worker",
            Command::Help => "help",
        }
    }
}

/// A parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text printed by `regcluster help`.
pub const USAGE: &str = "\
regcluster — mining shifting-and-scaling co-regulation patterns (ICDE 2006)

USAGE:
  regcluster mine --input <matrix.tsv> [options]
      --engine <NAME>        mining engine (default reg-cluster):
                             reg-cluster | pcluster | scaling | cheng-church |
                             floc | opsm | op-cluster | microcluster | boolean
      --min-genes <N>        minimum genes per cluster (default 20)
      --min-conds <N>        minimum chain length (default 6)
      --delta <F>            baseline model tolerance (pScore δ / residue δ /
                             ratio ε / quantization step, engine-dependent);
                             each engine has its own default; reg-cluster
                             ignores it
      --gamma <F>            regulation threshold, fraction of range (default 0.05)
      --gamma-absolute <F>   use an absolute regulation threshold instead
      --epsilon <F>          coherence threshold (default 1.0)
      --threads <N>          worker threads (default 1)
      --deadline-secs <F>    wall-clock budget; exceeding it yields partial,
                             truncated results instead of an error
      --max-clusters <N>     keep only the first N clusters (canonical order)
      --maximal-only         drop clusters contained in another
      --impute <MODE>        none | row-mean | col-mean (default none)
      --stats                print search-effort statistics (any thread count)
      --progress             print streaming progress to stderr
      --output <file.json>   write clusters as JSON instead of a table
      --store <file.rcs>     also stream clusters into an indexed binary
                             store for `query` and `serve`
      --metrics <file.prom>  write a Prometheus text snapshot of the run's
                             metrics (phase timings, per-rule prune counters;
                             see docs/OBSERVABILITY.md)
      --metrics-json <file.json>  the same snapshot as versioned JSON
      --checkpoint <file.rck>  write crash-recovery snapshots here: on
                             deadline/cancellation/worker panic, and
                             periodically with --checkpoint-every-secs
      --checkpoint-every-secs <F>  also snapshot about every F seconds
      --resume <file.rck>    resume an interrupted run from its checkpoint
                             (the result is bit-identical to an
                             uninterrupted run; see docs/ROBUSTNESS.md)
      --delta-from <prev>    delta-mine against a previous run: <prev> is
                             its .rcs store (or a generations directory),
                             only subtrees whose input rows changed are
                             re-enumerated, the rest is spliced from the
                             previous store; output is bit-identical to a
                             full re-mine (reg-cluster only; see
                             DESIGN.md §13); --maximal-only/--max-clusters
                             run as a post-pass over the spliced result
                             (the previous store must be unfiltered)
                             with --store <dir> the new store is published
                             as the directory's next generation

  regcluster generate --output <matrix.tsv> [options]
      --genes <N>            number of genes (default 3000)
      --conds <N>            number of conditions (default 30)
      --clusters <N>         embedded clusters (default 30)
      --pattern <KIND>       shift-scale | shift-only | scale-only | tendency
      --plant-gamma <F>      regulation margin of planted clusters (default 0.15)
      --neg-fraction <F>     fraction of negated member genes (default 0.25)
      --gene-frac <F>        average fraction of genes per cluster (default 0.01)
      --seed <N>             RNG seed (default 42)
      --ground-truth <file.json>  also write the planted clusters

  regcluster generate-yeast --output <matrix.tsv> [--go <go.json>]
      [--modules <modules.json>] [--seed <N>]
      writes the simulated 2884×17 yeast benchmark with its synthetic GO
      annotation database and planted-module ground truth

  regcluster enrich --clusters <found.json> --go <go.json> [--top <N>]
      prints the top GO term per category for each mined cluster
      (the paper's Table 2 layout)

  regcluster eval --clusters <found.json|store.rcs> --ground-truth <truth.json>
      scores mined clusters (a `mine --output` JSON or a `.rcs` store
      from any engine) against the planted ground truth

  regcluster info --input <matrix.tsv>

  regcluster baseline --input <matrix.tsv> --algorithm <NAME> [options]
      deprecated alias for `mine --engine <NAME>` with the historical
      defaults (--delta 0.1, --min-genes 5, --min-conds 3)
      NAME: pcluster | scaling | opsm | op-cluster | cheng-church | floc

  regcluster rwave --input <matrix.tsv> --gene <label> [--gamma <F>]
      prints the gene's RWave^γ model: the condition ordering and the
      bordering regulation pointers (default γ = 0.15)

  regcluster query --store <out.rcs> [options]
      --gene <LIST>          comma-separated gene names or ids; matches must
                             contain every listed gene
      --cond <LIST>          comma-separated condition names or ids; the
                             chain must span every listed condition
      --min-genes <N>        at least N member genes
      --min-conds <N>        chain at least N conditions long
      --top <N>              keep only the N largest matches (covered cells)
      --json                 print matching clusters as JSON

  regcluster serve --store <out.rcs> [--port <N>] [--threads <N>]
      [--requests <N>] [--queue <N>]
      serves the store over HTTP on 127.0.0.1 (port 0 = pick a free port,
      printed on startup); endpoints: /health, /stats,
      /clusters?gene=..&cond=..&min_genes=..&min_conds=..&top=..,
      /clusters/{id}; --requests N stops gracefully after N requests;
      --queue N bounds the accept queue (default 64) — overload beyond it
      is shed with 503 + Retry-After instead of queueing unboundedly;
      --watch <dir> (instead of --store) serves a generations directory's
      published generation and hot-swaps to new ones as they are
      published, without dropping in-flight requests;
      --watch-interval-ms N re-reads CURRENT about every N ms
      (default 100); unreadable CURRENT observations are counted on
      regcluster_store_watch_errors_total and retried

  regcluster coordinator --input <matrix.tsv> --store <gens-dir>
      --work-dir <dir> [--port <N>] [--leases <N>] [--lease-ttl-ms <N>]
      [--min-genes <N>] [--min-conds <N>] [--gamma <F>]
      [--gamma-absolute <F>] [--epsilon <F>] [--linger]
      coordinates a distributed mine: partitions the root space into
      --leases ranges, leases them to workers over HTTP on 127.0.0.1
      (port 0 = pick a free port, printed on startup), expires and
      re-grants leases not renewed within --lease-ttl-ms, merges the
      uploaded shards bit-identically to a single-node `mine --store`
      and publishes the result as <gens-dir>'s next generation;
      --linger keeps /job, /status and /metrics up after publishing

  regcluster worker --input <matrix.tsv> --coordinator <host:port>
      --work-dir <dir> [--threads <N>] [--worker-id <NAME>]
      [--poll-ms <N>] [--checkpoint-every-secs <F>]
      mines root ranges leased from a coordinator, checkpointing the
      frontier to --work-dir (crash-resumable per lease), heartbeating
      to keep its leases and uploading sealed shards; exits when the
      coordinator reports every lease done

  regcluster help
      prints this text
";

fn take_options(rest: &[String]) -> Result<HashMap<String, String>, ParseError> {
    let mut opts = HashMap::new();
    let mut i = 0;
    while i < rest.len() {
        let arg = &rest[i];
        let Some(stripped) = arg.strip_prefix("--") else {
            return Err(ParseError(format!(
                "unexpected argument {arg:?} (options start with --)"
            )));
        };
        if let Some((k, v)) = stripped.split_once('=') {
            opts.insert(k.to_string(), v.to_string());
            i += 1;
        } else if is_boolean_flag(stripped) {
            opts.insert(stripped.to_string(), "true".to_string());
            i += 1;
        } else {
            let v = rest
                .get(i + 1)
                .ok_or_else(|| ParseError(format!("option --{stripped} needs a value")))?;
            opts.insert(stripped.to_string(), v.clone());
            i += 2;
        }
    }
    Ok(opts)
}

fn is_boolean_flag(name: &str) -> bool {
    matches!(
        name,
        "maximal-only" | "help" | "stats" | "progress" | "json" | "linger"
    )
}

fn get<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, ParseError> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| ParseError(format!("cannot parse --{key} value {v:?}"))),
    }
}

fn require(opts: &HashMap<String, String>, key: &str) -> Result<String, ParseError> {
    opts.get(key)
        .cloned()
        .ok_or_else(|| ParseError(format!("missing required option --{key}")))
}

fn check_known(opts: &HashMap<String, String>, known: &[&str]) -> Result<(), ParseError> {
    for k in opts.keys() {
        if !known.contains(&k.as_str()) {
            return Err(ParseError(format!("unknown option --{k}")));
        }
    }
    Ok(())
}

/// Parses a full argument vector (excluding the program name).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first problem encountered.
pub fn parse_args(args: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "mine" => {
            let opts = take_options(rest)?;
            check_known(
                &opts,
                &[
                    "input",
                    "engine",
                    "delta",
                    "min-genes",
                    "min-conds",
                    "gamma",
                    "gamma-absolute",
                    "epsilon",
                    "threads",
                    "deadline-secs",
                    "max-clusters",
                    "maximal-only",
                    "impute",
                    "output",
                    "stats",
                    "progress",
                    "store",
                    "metrics",
                    "metrics-json",
                    "checkpoint",
                    "checkpoint-every-secs",
                    "resume",
                    "delta-from",
                ],
            )?;
            let input = require(&opts, "input")?;
            let engine = get(&opts, "engine", "reg-cluster".to_string())?;
            if !regcluster_engines::ENGINE_NAMES.contains(&engine.as_str()) {
                return Err(ParseError(format!(
                    "unknown engine {engine:?}; known engines: {}",
                    regcluster_engines::ENGINE_NAMES.join(", ")
                )));
            }
            let delta = match opts.get("delta") {
                Some(s) => {
                    let v: f64 = s
                        .parse()
                        .map_err(|_| ParseError(format!("cannot parse --delta {s:?}")))?;
                    if !v.is_finite() || v <= 0.0 {
                        return Err(ParseError(format!(
                            "--delta must be a positive number, got {s:?}"
                        )));
                    }
                    Some(v)
                }
                None => None,
            };
            let min_genes = get(&opts, "min-genes", 20usize)?;
            let min_conds = get(&opts, "min-conds", 6usize)?;
            let epsilon = get(&opts, "epsilon", 1.0f64)?;
            let mut params = MiningParams::new(min_genes, min_conds, 0.05, epsilon)
                .map_err(|e| ParseError(e.to_string()))?;
            if let Some(abs) = opts.get("gamma-absolute") {
                let v: f64 = abs
                    .parse()
                    .map_err(|_| ParseError(format!("cannot parse --gamma-absolute {abs:?}")))?;
                params = params
                    .with_threshold(RegulationThreshold::Absolute(v))
                    .map_err(|e| ParseError(e.to_string()))?;
            } else {
                let gamma = get(&opts, "gamma", 0.05f64)?;
                params = params
                    .with_threshold(RegulationThreshold::FractionOfRange(gamma))
                    .map_err(|e| ParseError(e.to_string()))?;
            }
            if let Some(cap) = opts.get("max-clusters") {
                let cap: usize = cap
                    .parse()
                    .map_err(|_| ParseError(format!("cannot parse --max-clusters {cap:?}")))?;
                params = params.with_max_clusters(cap);
            }
            if opts.contains_key("maximal-only") {
                params = params.with_maximal_only();
            }
            let impute = get(&opts, "impute", "none".to_string())?;
            if !["none", "row-mean", "col-mean"].contains(&impute.as_str()) {
                return Err(ParseError(format!(
                    "--impute must be none, row-mean or col-mean, got {impute:?}"
                )));
            }
            let deadline_secs = match opts.get("deadline-secs") {
                Some(s) => {
                    let v: f64 = s
                        .parse()
                        .map_err(|_| ParseError(format!("cannot parse --deadline-secs {s:?}")))?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(ParseError(format!(
                            "--deadline-secs must be a non-negative number, got {s:?}"
                        )));
                    }
                    Some(v)
                }
                None => None,
            };
            let checkpoint_every_secs = match opts.get("checkpoint-every-secs") {
                Some(s) => {
                    let v: f64 = s.parse().map_err(|_| {
                        ParseError(format!("cannot parse --checkpoint-every-secs {s:?}"))
                    })?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(ParseError(format!(
                            "--checkpoint-every-secs must be a non-negative number, got {s:?}"
                        )));
                    }
                    Some(v)
                }
                None => None,
            };
            let checkpoint = opts.get("checkpoint").cloned();
            let resume = opts.get("resume").cloned();
            if checkpoint_every_secs.is_some() && checkpoint.is_none() && resume.is_none() {
                return Err(ParseError(
                    "--checkpoint-every-secs needs --checkpoint (or --resume) \
                     to know where snapshots go"
                        .into(),
                ));
            }
            // Checkpoints snapshot the reg-cluster enumeration frontier; no
            // other engine has one, so refuse up front rather than silently
            // mining without crash safety.
            if engine != "reg-cluster" && (checkpoint.is_some() || resume.is_some()) {
                return Err(ParseError(format!(
                    "--checkpoint/--resume are only supported by the reg-cluster \
                     engine, not {engine:?}"
                )));
            }
            let delta_from = opts.get("delta-from").cloned();
            if delta_from.is_some() {
                // Per-root reuse leans on the reg-cluster enumeration
                // tree's root decomposition; no other engine has one.
                if engine != "reg-cluster" {
                    return Err(ParseError(format!(
                        "--delta-from is only supported by the reg-cluster \
                         engine, not {engine:?}"
                    )));
                }
                if checkpoint.is_some() || resume.is_some() {
                    return Err(ParseError(
                        "--delta-from cannot be combined with --checkpoint/--resume \
                         (a delta mine is already incremental)"
                            .into(),
                    ));
                }
                // maximal-only / max-clusters compose with --delta-from:
                // the splice produces the unfiltered union and the filters
                // run as a post-pass over it (the previous store must
                // itself be unfiltered; `run_delta_mine` checks that).
            }
            Ok(Command::Mine {
                input,
                engine,
                params,
                delta,
                threads: get(&opts, "threads", 1usize)?,
                deadline_secs,
                progress: opts.contains_key("progress"),
                output: opts.get("output").cloned(),
                impute,
                stats: opts.contains_key("stats"),
                store: opts.get("store").cloned(),
                metrics: opts.get("metrics").cloned(),
                metrics_json: opts.get("metrics-json").cloned(),
                checkpoint,
                checkpoint_every_secs,
                resume,
                delta_from,
            })
        }
        "generate" => {
            let opts = take_options(rest)?;
            check_known(
                &opts,
                &[
                    "output",
                    "genes",
                    "conds",
                    "clusters",
                    "pattern",
                    "plant-gamma",
                    "neg-fraction",
                    "gene-frac",
                    "seed",
                    "ground-truth",
                ],
            )?;
            let output = require(&opts, "output")?;
            let pattern = match opts.get("pattern").map(String::as_str).unwrap_or("shift-scale") {
                "shift-scale" => PatternKind::ShiftScale,
                "shift-only" => PatternKind::ShiftOnly,
                "scale-only" => PatternKind::ScaleOnly,
                "tendency" => PatternKind::Tendency,
                other => {
                    return Err(ParseError(format!(
                        "--pattern must be shift-scale, shift-only, scale-only or tendency, got {other:?}"
                    )))
                }
            };
            let defaults = SyntheticConfig::default();
            let config = SyntheticConfig {
                n_genes: get(&opts, "genes", defaults.n_genes)?,
                n_conds: get(&opts, "conds", defaults.n_conds)?,
                n_clusters: get(&opts, "clusters", defaults.n_clusters)?,
                plant_gamma: get(&opts, "plant-gamma", defaults.plant_gamma)?,
                neg_fraction: get(&opts, "neg-fraction", defaults.neg_fraction)?,
                cluster_gene_frac: get(&opts, "gene-frac", defaults.cluster_gene_frac)?,
                seed: get(&opts, "seed", defaults.seed)?,
                pattern,
                ..defaults
            };
            Ok(Command::Generate {
                output,
                config,
                ground_truth: opts.get("ground-truth").cloned(),
            })
        }
        "generate-yeast" => {
            let opts = take_options(rest)?;
            check_known(&opts, &["output", "go", "modules", "seed"])?;
            Ok(Command::GenerateYeast {
                output: require(&opts, "output")?,
                go: opts.get("go").cloned(),
                modules: opts.get("modules").cloned(),
                seed: get(&opts, "seed", 2006u64)?,
            })
        }
        "enrich" => {
            let opts = take_options(rest)?;
            check_known(&opts, &["clusters", "go", "top"])?;
            Ok(Command::Enrich {
                clusters: require(&opts, "clusters")?,
                go: require(&opts, "go")?,
                top: get(&opts, "top", 5usize)?,
            })
        }
        "eval" => {
            let opts = take_options(rest)?;
            check_known(&opts, &["clusters", "ground-truth"])?;
            Ok(Command::Eval {
                clusters: require(&opts, "clusters")?,
                ground_truth: require(&opts, "ground-truth")?,
            })
        }
        "info" => {
            let opts = take_options(rest)?;
            check_known(&opts, &["input"])?;
            Ok(Command::Info {
                input: require(&opts, "input")?,
            })
        }
        // Deprecated alias, kept for script compatibility: the historical
        // bespoke baselines subcommand is now `mine --engine <NAME>` with
        // the old defaults.
        "baseline" => {
            let opts = take_options(rest)?;
            check_known(
                &opts,
                &["input", "algorithm", "delta", "min-genes", "min-conds"],
            )?;
            let algorithm = require(&opts, "algorithm")?;
            const KNOWN: [&str; 6] = [
                "pcluster",
                "scaling",
                "opsm",
                "op-cluster",
                "cheng-church",
                "floc",
            ];
            if !KNOWN.contains(&algorithm.as_str()) {
                return Err(ParseError(format!(
                    "unknown algorithm {algorithm:?}; expected one of {KNOWN:?}"
                )));
            }
            let min_genes = get(&opts, "min-genes", 5usize)?;
            let min_conds = get(&opts, "min-conds", 3usize)?;
            let params = MiningParams::new(min_genes, min_conds, 0.05, 1.0)
                .map_err(|e| ParseError(e.to_string()))?;
            Ok(Command::Mine {
                input: require(&opts, "input")?,
                engine: algorithm,
                params,
                delta: Some(get(&opts, "delta", 0.1f64)?),
                threads: 1,
                deadline_secs: None,
                progress: false,
                output: None,
                impute: "none".to_string(),
                stats: false,
                store: None,
                metrics: None,
                metrics_json: None,
                checkpoint: None,
                checkpoint_every_secs: None,
                resume: None,
                delta_from: None,
            })
        }
        "rwave" => {
            let opts = take_options(rest)?;
            check_known(&opts, &["input", "gene", "gamma"])?;
            Ok(Command::RWave {
                input: require(&opts, "input")?,
                gene: require(&opts, "gene")?,
                gamma: get(&opts, "gamma", 0.15f64)?,
            })
        }
        "query" => {
            let opts = take_options(rest)?;
            check_known(
                &opts,
                &[
                    "store",
                    "gene",
                    "cond",
                    "min-genes",
                    "min-conds",
                    "top",
                    "json",
                ],
            )?;
            let top = match opts.get("top") {
                Some(v) => Some(
                    v.parse::<usize>()
                        .map_err(|_| ParseError(format!("cannot parse --top value {v:?}")))?,
                ),
                None => None,
            };
            Ok(Command::Query {
                store: require(&opts, "store")?,
                genes: opts.get("gene").cloned(),
                conds: opts.get("cond").cloned(),
                min_genes: get(&opts, "min-genes", 0u32)?,
                min_conds: get(&opts, "min-conds", 0u32)?,
                top,
                json: opts.contains_key("json"),
            })
        }
        "serve" => {
            let opts = take_options(rest)?;
            check_known(
                &opts,
                &[
                    "store",
                    "watch",
                    "port",
                    "threads",
                    "requests",
                    "queue",
                    "watch-interval-ms",
                ],
            )?;
            let requests = match opts.get("requests") {
                Some(v) => Some(
                    v.parse::<u64>()
                        .map_err(|_| ParseError(format!("cannot parse --requests value {v:?}")))?,
                ),
                None => None,
            };
            let queue = get(&opts, "queue", 64usize)?;
            if queue == 0 {
                return Err(ParseError(
                    "--queue must be at least 1 (a zero-capacity accept queue \
                     would shed every request)"
                        .into(),
                ));
            }
            // Exactly one of --store (a sealed .rcs file) and --watch (a
            // generations directory to hot-swap from) names what to serve.
            let (store, watch) = match (opts.get("store"), opts.get("watch")) {
                (Some(s), None) => (s.clone(), false),
                (None, Some(d)) => (d.clone(), true),
                (Some(_), Some(_)) => {
                    return Err(ParseError(
                        "--store and --watch are mutually exclusive (a file vs a \
                         generations directory)"
                            .into(),
                    ))
                }
                (None, None) => {
                    return Err(ParseError(
                        "serve needs --store <file.rcs> or --watch <dir>".into(),
                    ))
                }
            };
            let watch_interval_ms = get(&opts, "watch-interval-ms", 100u64)?;
            if watch_interval_ms == 0 {
                return Err(ParseError(
                    "--watch-interval-ms must be at least 1 (a zero interval \
                     would spin the watcher thread)"
                        .into(),
                ));
            }
            if opts.contains_key("watch-interval-ms") && !watch {
                return Err(ParseError(
                    "--watch-interval-ms only applies with --watch <dir>".into(),
                ));
            }
            Ok(Command::Serve {
                store,
                watch,
                port: get(&opts, "port", 7878u16)?,
                threads: get(&opts, "threads", 4usize)?,
                requests,
                queue,
                watch_interval_ms,
            })
        }
        "coordinator" => {
            let opts = take_options(rest)?;
            check_known(
                &opts,
                &[
                    "input",
                    "store",
                    "work-dir",
                    "port",
                    "leases",
                    "lease-ttl-ms",
                    "linger",
                    "min-genes",
                    "min-conds",
                    "gamma",
                    "gamma-absolute",
                    "epsilon",
                ],
            )?;
            let min_genes = get(&opts, "min-genes", 20usize)?;
            let min_conds = get(&opts, "min-conds", 6usize)?;
            let epsilon = get(&opts, "epsilon", 1.0f64)?;
            let mut params = MiningParams::new(min_genes, min_conds, 0.05, epsilon)
                .map_err(|e| ParseError(e.to_string()))?;
            if let Some(abs) = opts.get("gamma-absolute") {
                let v: f64 = abs
                    .parse()
                    .map_err(|_| ParseError(format!("cannot parse --gamma-absolute {abs:?}")))?;
                params = params
                    .with_threshold(RegulationThreshold::Absolute(v))
                    .map_err(|e| ParseError(e.to_string()))?;
            } else {
                let gamma = get(&opts, "gamma", 0.05f64)?;
                params = params
                    .with_threshold(RegulationThreshold::FractionOfRange(gamma))
                    .map_err(|e| ParseError(e.to_string()))?;
            }
            let leases = get(&opts, "leases", 8usize)?;
            if leases == 0 {
                return Err(ParseError("--leases must be at least 1".into()));
            }
            let lease_ttl_ms = get(&opts, "lease-ttl-ms", 10_000u64)?;
            if lease_ttl_ms == 0 {
                return Err(ParseError("--lease-ttl-ms must be at least 1".into()));
            }
            Ok(Command::Coordinator {
                input: require(&opts, "input")?,
                params,
                store: require(&opts, "store")?,
                work_dir: require(&opts, "work-dir")?,
                port: get(&opts, "port", 0u16)?,
                leases,
                lease_ttl_ms,
                linger: opts.contains_key("linger"),
            })
        }
        "worker" => {
            let opts = take_options(rest)?;
            check_known(
                &opts,
                &[
                    "input",
                    "coordinator",
                    "work-dir",
                    "threads",
                    "worker-id",
                    "poll-ms",
                    "checkpoint-every-secs",
                ],
            )?;
            let poll_ms = get(&opts, "poll-ms", 200u64)?;
            if poll_ms == 0 {
                return Err(ParseError("--poll-ms must be at least 1".into()));
            }
            let checkpoint_every_secs = get(&opts, "checkpoint-every-secs", 1.0f64)?;
            if !checkpoint_every_secs.is_finite() || checkpoint_every_secs < 0.0 {
                return Err(ParseError(
                    "--checkpoint-every-secs must be a non-negative number".into(),
                ));
            }
            Ok(Command::Worker {
                input: require(&opts, "input")?,
                coordinator: require(&opts, "coordinator")?,
                work_dir: require(&opts, "work-dir")?,
                threads: get(&opts, "threads", 1usize)?,
                worker_id: opts.get("worker-id").cloned(),
                poll_ms,
                checkpoint_every_secs,
            })
        }
        other => Err(ParseError(format!(
            "unknown subcommand {other:?}; try `regcluster help`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&sv(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&sv(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn mine_defaults_and_overrides() {
        let cmd = parse_args(&sv(&[
            "mine",
            "--input",
            "m.tsv",
            "--min-genes=5",
            "--gamma",
            "0.1",
            "--epsilon",
            "0.2",
            "--threads",
            "4",
            "--maximal-only",
        ]))
        .unwrap();
        match cmd {
            Command::Mine {
                input,
                engine,
                params,
                delta,
                threads,
                deadline_secs,
                progress,
                output,
                impute,
                stats,
                store,
                metrics,
                metrics_json,
                checkpoint,
                checkpoint_every_secs,
                resume,
                delta_from,
            } => {
                assert_eq!(input, "m.tsv");
                assert_eq!(engine, "reg-cluster");
                assert_eq!(delta, None);
                assert_eq!(store, None);
                assert_eq!(metrics, None);
                assert_eq!(metrics_json, None);
                assert_eq!(checkpoint, None);
                assert_eq!(checkpoint_every_secs, None);
                assert_eq!(resume, None);
                assert_eq!(delta_from, None);
                assert!(!stats);
                assert!(!progress);
                assert_eq!(params.min_genes, 5);
                assert_eq!(params.min_conds, 6);
                assert_eq!(params.gamma, RegulationThreshold::FractionOfRange(0.1));
                assert_eq!(params.epsilon, 0.2);
                assert!(params.maximal_only);
                assert_eq!(threads, 4);
                assert_eq!(deadline_secs, None);
                assert_eq!(output, None);
                assert_eq!(impute, "none");
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn mine_parses_deadline_and_progress() {
        let cmd = parse_args(&sv(&[
            "mine",
            "--input",
            "m.tsv",
            "--deadline-secs",
            "2.5",
            "--progress",
        ]))
        .unwrap();
        match cmd {
            Command::Mine {
                deadline_secs,
                progress,
                ..
            } => {
                assert_eq!(deadline_secs, Some(2.5));
                assert!(progress);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Negative, non-finite and non-numeric budgets are rejected.
        for bad in ["-1", "abc", "inf", "NaN"] {
            assert!(
                parse_args(&sv(&["mine", "--input", "m.tsv", "--deadline-secs", bad])).is_err(),
                "--deadline-secs {bad} should be rejected"
            );
        }
    }

    #[test]
    fn mine_with_absolute_gamma() {
        let cmd = parse_args(&sv(&[
            "mine",
            "--input",
            "m.tsv",
            "--gamma-absolute",
            "2.5",
        ]))
        .unwrap();
        match cmd {
            Command::Mine { params, .. } => {
                assert_eq!(params.gamma, RegulationThreshold::Absolute(2.5));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn mine_parses_engine_and_delta() {
        match parse_args(&sv(&[
            "mine", "--input", "m.tsv", "--engine", "pcluster", "--delta", "0.2",
        ]))
        .unwrap()
        {
            Command::Mine { engine, delta, .. } => {
                assert_eq!(engine, "pcluster");
                assert_eq!(delta, Some(0.2));
            }
            other => panic!("wrong command {other:?}"),
        }
        // Unknown engines and out-of-domain deltas fail at parse time.
        let err = parse_args(&sv(&["mine", "--input", "m", "--engine", "kmeans"])).unwrap_err();
        assert!(err.0.contains("known engines"), "{err}");
        for bad in ["0", "-1", "abc", "inf", "NaN"] {
            assert!(
                parse_args(&sv(&["mine", "--input", "m", "--delta", bad])).is_err(),
                "--delta {bad} should be rejected"
            );
        }
        // Checkpointing is a reg-cluster capability.
        let err = parse_args(&sv(&[
            "mine",
            "--input",
            "m",
            "--engine",
            "floc",
            "--checkpoint",
            "c.rck",
        ]))
        .unwrap_err();
        assert!(err.0.contains("reg-cluster"), "{err}");
        assert!(parse_args(&sv(&[
            "mine", "--input", "m", "--engine", "opsm", "--resume", "c.rck",
        ]))
        .is_err());
    }

    #[test]
    fn baseline_is_an_alias_for_mine_with_engine() {
        match parse_args(&sv(&[
            "baseline",
            "--input",
            "m.tsv",
            "--algorithm",
            "opsm",
        ]))
        .unwrap()
        {
            Command::Mine {
                input,
                engine,
                delta,
                params,
                threads,
                ..
            } => {
                assert_eq!(input, "m.tsv");
                assert_eq!(engine, "opsm");
                assert_eq!(delta, Some(0.1));
                assert_eq!(params.min_genes, 5);
                assert_eq!(params.min_conds, 3);
                assert_eq!(threads, 1);
            }
            other => panic!("wrong command {other:?}"),
        }
        // The alias keeps its historical algorithm catalogue.
        assert!(parse_args(&sv(&["baseline", "--input", "x", "--algorithm", "boolean"])).is_err());
        assert!(parse_args(&sv(&["baseline", "--input", "x", "--algorithm", "magic"])).is_err());
    }

    #[test]
    fn mine_requires_input() {
        let err = parse_args(&sv(&["mine", "--min-genes", "3"])).unwrap_err();
        assert!(err.0.contains("--input"));
    }

    #[test]
    fn rejects_unknown_options_and_bad_values() {
        assert!(parse_args(&sv(&["mine", "--input", "x", "--bogus", "1"])).is_err());
        assert!(parse_args(&sv(&["mine", "--input", "x", "--min-genes", "abc"])).is_err());
        assert!(parse_args(&sv(&["mine", "--input", "x", "--impute", "magic"])).is_err());
        assert!(parse_args(&sv(&["frobnicate"])).is_err());
        assert!(parse_args(&sv(&["mine", "positional"])).is_err());
    }

    #[test]
    fn generate_parses_pattern_and_seed() {
        let cmd = parse_args(&sv(&[
            "generate",
            "--output",
            "out.tsv",
            "--genes",
            "500",
            "--pattern",
            "scale-only",
            "--seed=7",
            "--ground-truth",
            "gt.json",
        ]))
        .unwrap();
        match cmd {
            Command::Generate {
                output,
                config,
                ground_truth,
            } => {
                assert_eq!(output, "out.tsv");
                assert_eq!(config.n_genes, 500);
                assert_eq!(config.pattern, PatternKind::ScaleOnly);
                assert_eq!(config.seed, 7);
                assert_eq!(ground_truth.as_deref(), Some("gt.json"));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse_args(&sv(&["generate", "--output", "x", "--pattern", "weird"])).is_err());
    }

    #[test]
    fn eval_and_info() {
        assert_eq!(
            parse_args(&sv(&[
                "eval",
                "--clusters",
                "a.json",
                "--ground-truth",
                "b.json"
            ]))
            .unwrap(),
            Command::Eval {
                clusters: "a.json".into(),
                ground_truth: "b.json".into()
            }
        );
        assert_eq!(
            parse_args(&sv(&["info", "--input", "m.tsv"])).unwrap(),
            Command::Info {
                input: "m.tsv".into()
            }
        );
        assert!(parse_args(&sv(&["eval", "--clusters", "a.json"])).is_err());
    }

    #[test]
    fn missing_value_for_option_errors() {
        let err = parse_args(&sv(&["mine", "--input"])).unwrap_err();
        assert!(err.0.contains("needs a value"));
    }

    #[test]
    fn query_and_serve_parse() {
        let cmd = parse_args(&sv(&[
            "query",
            "--store",
            "out.rcs",
            "--gene",
            "g1,g2",
            "--cond",
            "c3",
            "--min-genes",
            "4",
            "--top",
            "10",
            "--json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                store: "out.rcs".into(),
                genes: Some("g1,g2".into()),
                conds: Some("c3".into()),
                min_genes: 4,
                min_conds: 0,
                top: Some(10),
                json: true,
            }
        );
        let cmd = parse_args(&sv(&["serve", "--store", "out.rcs", "--port", "0"])).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                store: "out.rcs".into(),
                watch: false,
                port: 0,
                threads: 4,
                requests: None,
                queue: 64,
                watch_interval_ms: 100,
            }
        );
        // --watch <dir> names a generations directory instead of a file.
        match parse_args(&sv(&["serve", "--watch", "gens/"])).unwrap() {
            Command::Serve { store, watch, .. } => {
                assert_eq!(store, "gens/");
                assert!(watch);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Exactly one of --store / --watch.
        assert!(parse_args(&sv(&["serve"])).is_err());
        assert!(parse_args(&sv(&["serve", "--store", "a.rcs", "--watch", "gens/"])).is_err());
        assert!(parse_args(&sv(&["query"])).is_err(), "--store is required");
        assert!(parse_args(&sv(&["serve", "--store", "x", "--port", "high"])).is_err());
        assert!(parse_args(&sv(&["serve", "--store", "x", "--requests", "-1"])).is_err());
        // The accept queue must hold at least one connection.
        match parse_args(&sv(&["serve", "--store", "x", "--queue", "8"])).unwrap() {
            Command::Serve { queue, .. } => assert_eq!(queue, 8),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse_args(&sv(&["serve", "--store", "x", "--queue", "0"])).is_err());
    }

    #[test]
    fn mine_parses_checkpoint_flags() {
        let cmd = parse_args(&sv(&[
            "mine",
            "--input",
            "m.tsv",
            "--checkpoint",
            "run.rck",
            "--checkpoint-every-secs",
            "30",
        ]))
        .unwrap();
        match cmd {
            Command::Mine {
                checkpoint,
                checkpoint_every_secs,
                resume,
                ..
            } => {
                assert_eq!(checkpoint.as_deref(), Some("run.rck"));
                assert_eq!(checkpoint_every_secs, Some(30.0));
                assert_eq!(resume, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Resuming alone is fine; the resume path doubles as the sink.
        match parse_args(&sv(&["mine", "--input", "m.tsv", "--resume", "run.rck"])).unwrap() {
            Command::Mine { resume, .. } => assert_eq!(resume.as_deref(), Some("run.rck")),
            other => panic!("wrong command {other:?}"),
        }
        // A cadence with nowhere to write is rejected, as are bad values.
        assert!(parse_args(&sv(&[
            "mine",
            "--input",
            "m.tsv",
            "--checkpoint-every-secs",
            "5"
        ]))
        .is_err());
        for bad in ["-1", "abc", "inf", "NaN"] {
            assert!(
                parse_args(&sv(&[
                    "mine",
                    "--input",
                    "m.tsv",
                    "--checkpoint",
                    "c.rck",
                    "--checkpoint-every-secs",
                    bad
                ]))
                .is_err(),
                "--checkpoint-every-secs {bad} should be rejected"
            );
        }
    }

    #[test]
    fn mine_parses_delta_from_and_its_conflicts() {
        match parse_args(&sv(&[
            "mine",
            "--input",
            "m.tsv",
            "--delta-from",
            "prev.rcs",
        ]))
        .unwrap()
        {
            Command::Mine { delta_from, .. } => {
                assert_eq!(delta_from.as_deref(), Some("prev.rcs"));
            }
            other => panic!("wrong command {other:?}"),
        }
        // reg-cluster only.
        let err = parse_args(&sv(&[
            "mine",
            "--input",
            "m",
            "--engine",
            "opsm",
            "--delta-from",
            "p.rcs",
        ]))
        .unwrap_err();
        assert!(err.0.contains("reg-cluster"), "{err}");
        // No checkpointing on top of a delta mine.
        for conflict in [["--checkpoint", "c.rck"], ["--resume", "c.rck"]] {
            assert!(
                parse_args(&sv(&[
                    "mine",
                    "--input",
                    "m",
                    "--delta-from",
                    "p.rcs",
                    conflict[0],
                    conflict[1],
                ]))
                .is_err(),
                "{conflict:?} must conflict with --delta-from"
            );
        }
        // Cross-root post-filters compose with a delta mine: they run as
        // a post-pass over the spliced union.
        match parse_args(&sv(&[
            "mine",
            "--input",
            "m",
            "--delta-from",
            "p.rcs",
            "--maximal-only",
        ]))
        .unwrap()
        {
            Command::Mine { params, .. } => assert!(params.maximal_only),
            other => panic!("wrong command {other:?}"),
        }
        match parse_args(&sv(&[
            "mine",
            "--input",
            "m",
            "--delta-from",
            "p.rcs",
            "--max-clusters",
            "5",
        ]))
        .unwrap()
        {
            Command::Mine { params, .. } => assert_eq!(params.max_clusters, Some(5)),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn coordinator_and_worker_parse() {
        match parse_args(&sv(&[
            "coordinator",
            "--input",
            "m.tsv",
            "--store",
            "gens/",
            "--work-dir",
            "scratch/",
            "--leases",
            "4",
            "--lease-ttl-ms",
            "500",
            "--min-genes",
            "3",
            "--linger",
        ]))
        .unwrap()
        {
            Command::Coordinator {
                input,
                store,
                work_dir,
                leases,
                lease_ttl_ms,
                linger,
                params,
                port,
            } => {
                assert_eq!(input, "m.tsv");
                assert_eq!(store, "gens/");
                assert_eq!(work_dir, "scratch/");
                assert_eq!(leases, 4);
                assert_eq!(lease_ttl_ms, 500);
                assert!(linger);
                assert_eq!(params.min_genes, 3);
                assert_eq!(port, 0);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse_args(&sv(&[
            "worker",
            "--input",
            "m.tsv",
            "--coordinator",
            "127.0.0.1:7000",
            "--work-dir",
            "scratch/",
            "--threads",
            "2",
            "--worker-id",
            "w1",
        ]))
        .unwrap()
        {
            Command::Worker {
                input,
                coordinator,
                work_dir,
                threads,
                worker_id,
                poll_ms,
                ..
            } => {
                assert_eq!(input, "m.tsv");
                assert_eq!(coordinator, "127.0.0.1:7000");
                assert_eq!(work_dir, "scratch/");
                assert_eq!(threads, 2);
                assert_eq!(worker_id.as_deref(), Some("w1"));
                assert_eq!(poll_ms, 200);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Required options and degenerate values are rejected.
        assert!(parse_args(&sv(&["coordinator", "--input", "m"])).is_err());
        assert!(parse_args(&sv(&[
            "coordinator",
            "--input",
            "m",
            "--store",
            "g/",
            "--work-dir",
            "w/",
            "--leases",
            "0",
        ]))
        .is_err());
        // Post-filters are not accepted: they act across root boundaries.
        assert!(parse_args(&sv(&[
            "coordinator",
            "--input",
            "m",
            "--store",
            "g/",
            "--work-dir",
            "w/",
            "--maximal-only",
        ]))
        .is_err());
        assert!(parse_args(&sv(&["worker", "--input", "m", "--work-dir", "w/"])).is_err());
        assert!(parse_args(&sv(&[
            "worker",
            "--input",
            "m",
            "--coordinator",
            "c",
            "--work-dir",
            "w/",
            "--poll-ms",
            "0",
        ]))
        .is_err());
    }

    #[test]
    fn serve_parses_watch_interval() {
        match parse_args(&sv(&[
            "serve",
            "--watch",
            "gens/",
            "--watch-interval-ms",
            "25",
        ]))
        .unwrap()
        {
            Command::Serve {
                watch,
                watch_interval_ms,
                ..
            } => {
                assert!(watch);
                assert_eq!(watch_interval_ms, 25);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Zero would spin; the flag is watch-only.
        assert!(parse_args(&sv(&[
            "serve",
            "--watch",
            "gens/",
            "--watch-interval-ms",
            "0"
        ]))
        .is_err());
        assert!(parse_args(&sv(&[
            "serve",
            "--store",
            "s.rcs",
            "--watch-interval-ms",
            "25"
        ]))
        .is_err());
    }

    /// The USAGE-drift guard: every subcommand the parser accepts must be
    /// documented in the help text. `subcommand_name` is an exhaustive
    /// match, so a new `Command` variant cannot compile without joining
    /// this sample list's coverage contract.
    #[test]
    fn every_subcommand_appears_in_usage() {
        let samples = [
            parse_args(&sv(&["mine", "--input", "m.tsv"])).unwrap(),
            parse_args(&sv(&["generate", "--output", "m.tsv"])).unwrap(),
            parse_args(&sv(&["generate-yeast", "--output", "m.tsv"])).unwrap(),
            parse_args(&sv(&["enrich", "--clusters", "a", "--go", "b"])).unwrap(),
            parse_args(&sv(&["eval", "--clusters", "a", "--ground-truth", "b"])).unwrap(),
            parse_args(&sv(&["info", "--input", "m.tsv"])).unwrap(),
            parse_args(&sv(&["rwave", "--input", "m", "--gene", "g1"])).unwrap(),
            parse_args(&sv(&["query", "--store", "s.rcs"])).unwrap(),
            parse_args(&sv(&["serve", "--store", "s.rcs"])).unwrap(),
            parse_args(&sv(&[
                "coordinator",
                "--input",
                "m.tsv",
                "--store",
                "gens/",
                "--work-dir",
                "scratch/",
            ]))
            .unwrap(),
            parse_args(&sv(&[
                "worker",
                "--input",
                "m.tsv",
                "--coordinator",
                "127.0.0.1:7000",
                "--work-dir",
                "scratch/",
            ]))
            .unwrap(),
            Command::Help,
        ];
        let mut names: Vec<&str> = samples.iter().map(Command::subcommand_name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), samples.len(), "one sample per variant");
        for name in names {
            assert!(
                USAGE.contains(&format!("regcluster {name}")),
                "subcommand {name:?} is missing from USAGE"
            );
        }
    }
}
