//! Plant-and-recover: generate the paper's synthetic workload, mine it, and
//! score the result against the ground truth — then contrast reg-cluster
//! with the pattern-based baselines on the same data.
//!
//! Run with `cargo run --release --example synthetic_recovery`.

use regcluster::baselines::{pcluster, PClusterParams};
use regcluster::core::{mine, MiningParams};
use regcluster::datagen::{generate, PatternKind, SyntheticConfig};
use regcluster::eval::{recovery, relevance, ClusterShape};

fn main() {
    // A scaled-down version of the paper's default generator setting
    // (the full 3000 × 30 workload is exercised by the fig7 harness).
    let cfg = SyntheticConfig {
        n_genes: 600,
        n_conds: 20,
        n_clusters: 5,
        avg_cluster_dims: 6,
        cluster_gene_frac: 0.03,
        neg_fraction: 0.3,
        plant_gamma: 0.15,
        pattern: PatternKind::ShiftScale,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed: 2024,
    };
    let data = generate(&cfg).expect("configuration is feasible");
    println!(
        "synthetic dataset: {} genes × {} conditions with {} embedded shifting-and-scaling clusters",
        cfg.n_genes, cfg.n_conds, cfg.n_clusters
    );
    for (i, p) in data.planted.iter().enumerate() {
        let n_neg = p.negated.iter().filter(|&&n| n).count();
        println!(
            "  planted {i}: {} genes ({} negated) × {} conditions",
            p.n_genes(),
            n_neg,
            p.n_conditions()
        );
    }

    let truth: Vec<ClusterShape> = data.planted.iter().map(ClusterShape::from).collect();
    let min_g = data
        .planted
        .iter()
        .map(|p| p.n_genes())
        .min()
        .expect("clusters exist");
    let min_c = data
        .planted
        .iter()
        .map(|p| p.n_conditions())
        .min()
        .expect("clusters exist");

    // reg-cluster at the paper's efficiency-experiment parameters.
    let params = MiningParams::new(min_g, min_c, 0.1, 0.01)
        .expect("valid parameters")
        .with_maximal_only();
    let found = mine(&data.matrix, &params).expect("mining succeeds");
    let shapes: Vec<ClusterShape> = found.iter().map(ClusterShape::from).collect();
    println!(
        "\nreg-cluster: {} clusters, recovery {:.3}, relevance {:.3}",
        found.len(),
        recovery(&truth, &shapes),
        relevance(&shapes, &truth)
    );

    // pCluster on the same data: pure-shifting model, so the mixed
    // shifting-and-scaling clusters are invisible to it.
    let pc_params = PClusterParams {
        delta: 0.15,
        min_genes: min_g,
        min_conds: min_c,
        ..Default::default()
    };
    let pc_found = pcluster(&data.matrix, &pc_params);
    let pc_shapes: Vec<ClusterShape> = pc_found
        .iter()
        .map(|b| ClusterShape::new(b.genes.clone(), b.conds.clone()))
        .collect();
    println!(
        "pCluster:    {} clusters, recovery {:.3}, relevance {:.3}",
        pc_found.len(),
        recovery(&truth, &pc_shapes),
        relevance(&pc_shapes, &truth)
    );
    println!(
        "\nreg-cluster recovers the planted clusters (its model includes\n\
         shifting-and-scaling with negative scalings); pCluster finds none\n\
         of them, exactly as §1.1 of the paper argues. Run the `comparison`\n\
         harness binary for the full table across all pattern families."
    );
}
