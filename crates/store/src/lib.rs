#![warn(missing_docs)]

//! Indexed on-disk storage and querying for mined reg-clusters.
//!
//! Mining produces cluster *sets*; downstream analyses of co-regulated gene
//! sets (GO/TFBS follow-up, overlap inspection, serving query traffic) are
//! *lookups*: "which clusters contain gene g?", "which clusters span
//! conditions c₁..cₖ?". This crate gives those lookups an indexed,
//! durability-checked home — the `.rcs` store:
//!
//! * **[`StoreWriter`]** implements
//!   [`ClusterSink`](regcluster_core::ClusterSink), so the mining engine
//!   streams clusters straight to disk (`regcluster mine --store out.rcs`),
//!   composing with cancellation and truncated-run reporting. Sealing the
//!   file canonicalizes cluster ids, making stores reproducible across
//!   thread counts.
//! * **[`ClusterStore`]** opens a sealed store, verifies every section
//!   checksum up front, and answers by-gene / by-condition / min-size /
//!   top-k / overlap / containment queries ([`Query`],
//!   [`ClusterStore::overlapping`], [`ClusterStore::superclusters_of`])
//!   from two inverted indexes and a size table, decoding only the records
//!   a caller materializes.
//! * **[`StoreError`]** types every failure: corrupted or truncated files
//!   are rejected with checksum/format errors, never a panic and never
//!   garbage clusters.
//! * **[`CheckpointFile`]** persists engine crash-recovery snapshots as
//!   `.rck` files ([`read_checkpoint`] loads them back), reusing the same
//!   checksummed section format and the same atomic tmp + rename
//!   discipline, so `regcluster mine --checkpoint run.rck` survives
//!   crashes and resumes bit-identically.
//!
//! # Quick start
//!
//! ```
//! use regcluster_core::{mine, MiningParams};
//! use regcluster_datagen::running_example;
//! use regcluster_store::{ClusterStore, Query, StoreWriter};
//!
//! let matrix = running_example();
//! let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
//! let clusters = mine(&matrix, &params).unwrap();
//!
//! let path = std::env::temp_dir().join("regcluster-doc-example.rcs");
//! let writer = StoreWriter::create(
//!     &path,
//!     matrix.gene_names(),
//!     matrix.condition_names(),
//!     &params,
//! )
//! .unwrap();
//! for c in &clusters {
//!     writer.write_cluster(c).unwrap();
//! }
//! writer.finish().unwrap();
//!
//! let store = ClusterStore::open(&path).unwrap();
//! assert_eq!(store.n_clusters(), 1);
//! // Which clusters contain gene g1 (id 0)?
//! let hits = store.query(&Query::new().with_gene(0)).unwrap();
//! assert_eq!(store.cluster(hits[0]).unwrap(), clusters[0]);
//! # std::fs::remove_file(&path).ok();
//! ```

mod checkpoint;
mod error;
mod format;
mod generations;
mod journal;
mod merge;
pub mod migrations;
mod query;
mod reader;
mod writer;

pub use checkpoint::{read_checkpoint, CheckpointFile, CHECKPOINT_MAGIC, CHECKPOINT_VERSION};
pub use error::StoreError;
pub use format::{FORMAT_VERSION, MIN_SUPPORTED_VERSION};
pub use generations::{Generations, CURRENT_FILE};
pub use journal::{
    Journal, JournalRecord, JournalRecovery, JOURNAL_HEADER_LEN, JOURNAL_MAGIC, JOURNAL_VERSION,
};
pub use merge::merge_shards;
pub use query::Query;
pub use reader::{ClusterStore, PostingsIter, StoreStats};
pub use writer::{StoreProvenance, StoreSummary, StoreWriter};
