//! Model-comparison experiment — the paper's §1/§3.3 claims, quantified.
//!
//! The paper argues (Figures 1, 2, 4 and §3.3) that prior models each
//! capture only a slice of the co-regulation structure reg-cluster targets:
//! pCluster finds pure shifting patterns, the log-space variant finds pure
//! scaling patterns, OPSM accepts any shared ordering (no coherence), and
//! none of them handles mixed shifting-and-scaling or negative correlation.
//! This binary plants each pattern family with the §5 generator and reports
//! **recovery** (planted modules rediscovered) and **relevance** (reported
//! clusters that correspond to planted structure) for every engine:
//!
//! * reg-cluster should recover shift-scale, shift-only and scale-only
//!   (they are special cases of its model) and *reject* incoherent
//!   tendencies;
//! * pcluster and boolean should recover shift-only and miss shift-scale;
//! * the scaling and microcluster miners should recover scale-only and
//!   miss shift-scale;
//! * opsm should recover anything order-preserving — including the
//!   incoherent tendency clusters — illustrating the missing coherence
//!   guarantee.
//!
//! Every row is produced through the engine registry — the same
//! `build_engine` path `mine --engine <name>` uses — so the table doubles
//! as an end-to-end exercise of the `BiclusterEngine` contract. Rows are
//! keyed by registry engine name; rerun any cell by hand with
//! `regcluster mine --engine <name>`. `--quick` shrinks the datasets for
//! smoke testing in CI.
//!
//! Results are written to `results/comparison.json`.

use regcluster_bench::{quick_mode, time, write_json};
use regcluster_core::{MineControl, NoopObserver, VecSink};
use regcluster_datagen::{generate, PatternKind, SyntheticConfig, SyntheticDataset};
use regcluster_engines::{build_engine, EngineSpec};
use regcluster_eval::{recovery, relevance, ClusterShape};
use regcluster_matrix::ExpressionMatrix;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    engine: &'static str,
    pattern: String,
    recovery: f64,
    relevance: f64,
    n_found: usize,
    runtime_s: f64,
}

fn dataset(pattern: PatternKind, quick: bool) -> SyntheticDataset {
    let cfg = SyntheticConfig {
        n_genes: if quick { 120 } else { 500 },
        n_conds: if quick { 12 } else { 17 },
        n_clusters: if quick { 2 } else { 4 },
        avg_cluster_dims: 6,
        // ~15 genes per cluster at full scale, ~10 in quick mode.
        cluster_gene_frac: if quick { 0.08 } else { 0.03 },
        neg_fraction: if matches!(pattern, PatternKind::ShiftScale) {
            0.3
        } else {
            0.0
        },
        plant_gamma: 0.08,
        pattern,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed: 97,
    };
    generate(&cfg).expect("comparison config is feasible")
}

/// Runs a registry engine to completion on `matrix`, returning the found
/// cluster shapes and the wall-clock seconds. An engine that rejects the
/// matrix outright (e.g. the log-space miner on non-positive values)
/// contributes an empty result rather than aborting the sweep.
fn run_engine(
    name: &str,
    spec: &EngineSpec,
    matrix: &ExpressionMatrix,
) -> (Vec<ClusterShape>, f64) {
    let engine =
        build_engine(name, spec).unwrap_or_else(|e| panic!("engine {name} failed to build: {e}"));
    let sink = VecSink::new();
    let (result, secs) = time(|| engine.run(matrix, &sink, &MineControl::new(), &NoopObserver));
    match result {
        Ok(_) => (
            sink.into_clusters()
                .iter()
                .map(ClusterShape::from)
                .collect(),
            secs,
        ),
        Err(e) => {
            eprintln!("{name}: {e} (counted as zero clusters)");
            (Vec::new(), secs)
        }
    }
}

fn main() {
    let quick = quick_mode();
    let patterns = [
        (PatternKind::ShiftScale, "shift-scale"),
        (PatternKind::ShiftOnly, "shift-only"),
        (PatternKind::ScaleOnly, "scale-only"),
        (PatternKind::Tendency, "tendency"),
    ];
    let mut cells: Vec<Cell> = Vec::new();

    for (pattern, name) in patterns {
        let data = dataset(pattern, quick);
        let truth: Vec<ClusterShape> = data.planted.iter().map(ClusterShape::from).collect();
        let min_g = data.planted.iter().map(|p| p.n_genes()).min().unwrap();
        let min_c = data.planted.iter().map(|p| p.n_conditions()).min().unwrap();
        let max_c = data.planted.iter().map(|p| p.n_conditions()).max().unwrap();
        eprintln!(
            "{name}: {} planted clusters (≥{min_g} genes × ≥{min_c} conds)",
            truth.len()
        );

        let base = EngineSpec {
            min_genes: min_g,
            min_conds: min_c,
            ..EngineSpec::default()
        };

        // Per-engine tolerance choices, matched to the noise-free planting:
        // reg-cluster mines below the planting threshold with tight ε as the
        // paper's efficiency experiments do; each baseline gets the δ its
        // model convention suggests for near-exact patterns.
        let rows: [(&'static str, EngineSpec); 8] = [
            (
                "reg-cluster",
                EngineSpec {
                    gamma: 0.05,
                    epsilon: 0.02,
                    maximal_only: true,
                    ..base.clone()
                },
            ),
            (
                "pcluster",
                EngineSpec {
                    delta: Some(0.15),
                    ..base.clone()
                },
            ),
            (
                "scaling",
                EngineSpec {
                    delta: Some(0.05),
                    ..base.clone()
                },
            ),
            (
                "cheng-church",
                EngineSpec {
                    delta: Some(0.2),
                    seed: 5,
                    ..base.clone()
                },
            ),
            (
                "floc",
                EngineSpec {
                    delta: Some(0.2),
                    seed: 11,
                    ..base.clone()
                },
            ),
            (
                "op-cluster",
                EngineSpec {
                    delta: Some(0.25),
                    ..base.clone()
                },
            ),
            (
                "microcluster",
                EngineSpec {
                    delta: Some(0.05),
                    ..base.clone()
                },
            ),
            (
                "boolean",
                EngineSpec {
                    delta: Some(0.1),
                    ..base.clone()
                },
            ),
        ];
        for (engine, spec) in &rows {
            let (found, secs) = run_engine(engine, spec, &data.matrix);
            push_cell(&mut cells, engine, name, &truth, found, secs);
        }

        // OPSM mines one model size per run (as in the original algorithm);
        // sweep every planted dimensionality and merge the results.
        let mut found = Vec::new();
        let mut secs = 0.0;
        for size in min_c..=max_c {
            let spec = EngineSpec {
                min_conds: size,
                ..base.clone()
            };
            let (f, s) = run_engine("opsm", &spec, &data.matrix);
            found.extend(f);
            secs += s;
        }
        push_cell(&mut cells, "opsm", name, &truth, found, secs);
    }

    println!("\nrecovery / relevance by engine and planted pattern family");
    println!(
        "{:<22}{:<14}{:>9}{:>10}{:>8}{:>10}",
        "engine", "pattern", "recovery", "relevance", "found", "time(s)"
    );
    for c in &cells {
        println!(
            "{:<22}{:<14}{:>9.3}{:>10.3}{:>8}{:>10.3}",
            c.engine, c.pattern, c.recovery, c.relevance, c.n_found, c.runtime_s
        );
    }
    write_json("comparison.json", &cells);
}

fn push_cell(
    cells: &mut Vec<Cell>,
    engine: &'static str,
    pattern: &str,
    truth: &[ClusterShape],
    found: Vec<ClusterShape>,
    runtime_s: f64,
) {
    cells.push(Cell {
        engine,
        pattern: pattern.to_string(),
        recovery: recovery(truth, &found),
        relevance: relevance(&found, truth),
        n_found: found.len(),
        runtime_s,
    });
}
