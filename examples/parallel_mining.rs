//! Parallel mining with the work-stealing engine: deterministic multi-thread
//! output, a wall-clock deadline, and streaming progress through a
//! thread-safe observer.
//!
//! Mines a mid-sized synthetic dataset on four worker threads, shows that
//! the result is bit-identical to the sequential miner, and demonstrates the
//! cancellation path by re-running under an already-expired deadline.
//!
//! Run with `cargo run --release --example parallel_mining`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use regcluster::core::{
    mine, mine_engine, mine_engine_with, EngineConfig, MineControl, MiningParams, RegCluster,
    SyncMineObserver,
};
use regcluster::datagen::{generate, SyntheticConfig};

/// A shared observer: every worker thread reports through `&self`.
#[derive(Default)]
struct EmissionCounter {
    emitted: AtomicUsize,
}

impl SyncMineObserver for EmissionCounter {
    fn cluster_emitted(&self, _cluster: &RegCluster) {
        self.emitted.fetch_add(1, Ordering::Relaxed);
    }
}

fn main() {
    let data = generate(&SyntheticConfig {
        n_genes: 500,
        ..SyntheticConfig::default()
    })
    .expect("feasible configuration");
    let params = MiningParams::new(5, 6, 0.1, 0.01).expect("valid parameters");

    // The engine's output is bit-identical to the sequential miner at any
    // thread count, so parallelism is a pure implementation detail.
    let sequential = mine(&data.matrix, &params).expect("mining succeeds");
    let report =
        mine_engine(&data.matrix, &params, &EngineConfig::new(4)).expect("engine mining succeeds");
    assert_eq!(report.clusters, sequential);
    println!(
        "4 threads found the same {} reg-clusters as the sequential miner \
         ({} enumeration nodes)",
        report.clusters.len(),
        report.stats.nodes
    );

    // Observers are shared by all workers; per-worker statistics are merged
    // at join, so the report's totals match a sequential run.
    let counter = EmissionCounter::default();
    let report = mine_engine_with(
        &data.matrix,
        &params,
        &EngineConfig::new(4),
        &MineControl::new(),
        &counter,
    )
    .expect("engine mining succeeds");
    assert_eq!(
        counter.emitted.load(Ordering::Relaxed),
        report.stats.emitted
    );
    println!(
        "shared observer saw every emission: {} clusters",
        counter.emitted.load(Ordering::Relaxed)
    );

    // A wall-clock deadline stops the run cooperatively: the report is
    // flagged truncated instead of returning an error, and `into_result`
    // converts that flag into `CoreError::Cancelled` for callers that
    // require complete output.
    let control = MineControl::with_deadline(Duration::ZERO);
    let report = mine_engine_with(
        &data.matrix,
        &params,
        &EngineConfig::new(4),
        &control,
        &EmissionCounter::default(),
    )
    .expect("an expired deadline is not an engine error");
    assert!(report.truncated);
    println!(
        "expired deadline: truncated partial result with {} clusters, \
         into_result() = {:?}",
        report.clusters.len(),
        report.into_result().expect_err("truncated reports reject")
    );
}
