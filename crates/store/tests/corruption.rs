//! Durability tests: a corrupted or truncated `.rcs` file must be rejected
//! with a typed checksum/format error — never a panic, never garbage
//! clusters. Every byte of the file is covered by a checksum (header fields
//! feed the table check, the table covers the sections), so the exhaustive
//! flip test can demand an error for *any* single-byte corruption.

use std::path::PathBuf;

use regcluster_core::{mine, MiningParams};
use regcluster_datagen::running_example;
use regcluster_store::{ClusterStore, StoreError, StoreWriter, FORMAT_VERSION};

/// Builds a small valid store and returns its bytes.
fn valid_store_bytes() -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!("regcluster-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("victim.rcs");
    let m = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    let clusters = mine(&m, &params).unwrap();
    let w = StoreWriter::create(&path, m.gene_names(), m.condition_names(), &params).unwrap();
    for c in &clusters {
        w.write_cluster(c).unwrap();
    }
    w.finish().unwrap();
    std::fs::read(&path).unwrap()
}

#[test]
fn truncation_at_any_length_is_a_typed_error() {
    let bytes = valid_store_bytes();
    assert!(ClusterStore::from_bytes(bytes.clone()).is_ok());
    // Every proper prefix must fail cleanly — walk all of them (the file is
    // small) so no boundary case hides.
    for len in 0..bytes.len() {
        let err = ClusterStore::from_bytes(bytes[..len].to_vec())
            .err()
            .unwrap_or_else(|| panic!("truncation to {len} bytes must be rejected"));
        assert!(
            matches!(
                err,
                StoreError::Format(_) | StoreError::ChecksumMismatch { .. }
            ),
            "truncation to {len}: unexpected error {err:?}"
        );
    }
}

#[test]
fn every_single_byte_flip_is_detected() {
    let bytes = valid_store_bytes();
    for i in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[i] ^= 0x41;
        let result = ClusterStore::from_bytes(mutated);
        assert!(
            result.is_err(),
            "flipping byte {i} of {} was not detected",
            bytes.len()
        );
    }
}

#[test]
fn flipping_each_section_payload_reports_that_section() {
    let bytes = valid_store_bytes();
    // Parse the (valid) section table by hand: count at 12, offset at 16.
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let table_offset = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
    let mut seen = 0;
    for e in 0..count {
        let entry = &bytes[table_offset + e * 32..table_offset + (e + 1) * 32];
        let offset = u64::from_le_bytes(entry[8..16].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(entry[16..24].try_into().unwrap()) as usize;
        if len == 0 {
            continue;
        }
        let mut mutated = bytes.clone();
        mutated[offset + len / 2] ^= 0xff;
        match ClusterStore::from_bytes(mutated) {
            Err(StoreError::ChecksumMismatch { .. }) => seen += 1,
            other => panic!(
                "flipping section entry {e} payload: expected checksum mismatch, got {:?}",
                other.err()
            ),
        }
    }
    assert!(seen >= 6, "expected most sections non-empty, saw {seen}");
}

#[test]
fn foreign_and_future_files_are_rejected() {
    // Not a store at all.
    let err = ClusterStore::from_bytes(b"{\"clusters\": []}".to_vec()).unwrap_err();
    assert!(matches!(err, StoreError::Format(_)));
    // Empty file.
    assert!(matches!(
        ClusterStore::from_bytes(Vec::new()),
        Err(StoreError::Format(_))
    ));
    // Right magic, future version.
    let mut bytes = valid_store_bytes();
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match ClusterStore::from_bytes(bytes) {
        Err(StoreError::Version { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected version error, got {:?}", other.err()),
    }
}

#[test]
fn unsealed_writer_leaves_no_destination_and_its_tmp_is_rejected_then_cleared() {
    // A writer dropped without finish never touched the destination: all
    // streaming went to `<path>.tmp`, which still carries the zeroed
    // placeholder header.
    let dir = std::env::temp_dir().join(format!("regcluster-unsealed-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join("unsealed.rcs");
    let tmp = dir.join("unsealed.rcs.tmp");
    let m = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    {
        let w = StoreWriter::create(&path, m.gene_names(), m.condition_names(), &params).unwrap();
        let clusters = mine(&m, &params).unwrap();
        for c in &clusters {
            w.write_cluster(c).unwrap();
        }
        // dropped without finish()
    }
    assert!(!path.exists(), "destination must stay untouched");
    assert!(tmp.exists(), "streaming goes to the scratch file");
    // The scratch bytes themselves can never masquerade as a store.
    let err = ClusterStore::from_bytes(std::fs::read(&tmp).unwrap()).unwrap_err();
    assert!(matches!(err, StoreError::Format(_)), "{err}");
    assert!(err.to_string().contains("magic"), "{err}");
    // Opening the destination fails (nothing there) and clears the stale tmp.
    assert!(matches!(ClusterStore::open(&path), Err(StoreError::Io(_))));
    assert!(!tmp.exists(), "open clears stale .tmp leftovers");
}
