//! Phase timing: clocks, spans, and the pipeline phase-span set.
//!
//! Durations are accumulated as **integer microseconds** into
//! [`Unit::Micros`](crate::Unit::Micros) counters, so finishing a span is
//! one atomic add — no floats, no locks, no allocation. Encoders convert
//! to seconds at exposition time, which is why the phase metrics are
//! named `…_seconds_total` despite the integer cells underneath.

use crate::registry::{Counter, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic time source, abstracted so span arithmetic is testable
/// without sleeping.
pub trait Clock {
    /// Microseconds elapsed since an arbitrary fixed origin. Must be
    /// monotonically non-decreasing.
    fn now_micros(&self) -> u64;
}

/// The production clock: wraps [`Instant`], so it is monotonic and immune
/// to wall-clock steps (NTP, suspend).
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        let micros = self.origin.elapsed().as_micros();
        u64::try_from(micros).unwrap_or(u64::MAX)
    }
}

/// A hand-cranked clock for tests: time only moves when
/// [`advance`](ManualClock::advance) is called.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock starting at 0 µs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `micros`.
    pub fn advance(&self, micros: u64) {
        self.now.fetch_add(micros, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// A live measurement: started at construction, recorded into its
/// duration/runs counters when [`finish`](Span::finish)ed or dropped.
///
/// Dropping without calling `finish` still records — a span on a path
/// that early-returns with `?` is measured, not lost.
pub struct Span<'a> {
    clock: &'a dyn Clock,
    started_micros: u64,
    duration_micros: Counter,
    runs: Counter,
    finished: bool,
}

impl<'a> Span<'a> {
    /// Starts a span against explicit counters. Most callers go through
    /// [`PhaseSpans::span`] instead.
    pub fn start(clock: &'a dyn Clock, duration_micros: Counter, runs: Counter) -> Self {
        Self {
            clock,
            started_micros: clock.now_micros(),
            duration_micros,
            runs,
            finished: false,
        }
    }

    /// Stops the span and records elapsed time; returns the elapsed
    /// microseconds.
    pub fn finish(mut self) -> u64 {
        self.record()
    }

    fn record(&mut self) -> u64 {
        if self.finished {
            return 0;
        }
        self.finished = true;
        let elapsed = self.clock.now_micros().saturating_sub(self.started_micros);
        self.duration_micros.add(elapsed);
        self.runs.inc();
        elapsed
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.record();
    }
}

/// The named pipeline phases of a `mine` run, in execution order.
///
/// These strings are the `phase` label values on the phase metrics, and
/// the contract surface for `docs/OBSERVABILITY.md` (covered by the same
/// drift test as metric names).
pub const PHASES: [&str; 5] = [
    "load",
    "index_build",
    "enumeration",
    "postprocess",
    "store_write",
];

/// Per-phase timing instruments for the mining pipeline.
///
/// Registers, for every phase in [`PHASES`]:
///
/// * `regcluster_phase_duration_seconds_total{phase=…}` — cumulative time
///   spent in the phase (exported in seconds);
/// * `regcluster_phase_runs_total{phase=…}` — how many spans completed.
///
/// Handles are resolved once at construction; starting and finishing a
/// span afterwards performs no registry lookups.
pub struct PhaseSpans {
    duration: Vec<Counter>,
    runs: Vec<Counter>,
}

/// Name of the per-phase cumulative duration metric.
pub const PHASE_DURATION_METRIC: &str = "regcluster_phase_duration_seconds_total";
/// Name of the per-phase completed-span counter.
pub const PHASE_RUNS_METRIC: &str = "regcluster_phase_runs_total";

impl PhaseSpans {
    /// Registers the phase instruments in `registry` and returns the
    /// pre-resolved handle set.
    pub fn new(registry: &MetricsRegistry) -> Self {
        let mut duration = Vec::with_capacity(PHASES.len());
        let mut runs = Vec::with_capacity(PHASES.len());
        for phase in PHASES {
            duration.push(registry.counter_micros(
                PHASE_DURATION_METRIC,
                "Cumulative wall-clock time spent in each mining pipeline phase, in seconds.",
                &[("phase", phase)],
            ));
            runs.push(registry.counter(
                PHASE_RUNS_METRIC,
                "Completed timing spans per mining pipeline phase.",
                &[("phase", phase)],
            ));
        }
        Self { duration, runs }
    }

    /// Starts a span for `phase` (a name from [`PHASES`]).
    ///
    /// # Panics
    ///
    /// Panics if `phase` is not one of [`PHASES`] — phase names are a
    /// closed, documented set, not free-form strings.
    pub fn span<'a>(&self, clock: &'a dyn Clock, phase: &str) -> Span<'a> {
        let idx = PHASES
            .iter()
            .position(|p| *p == phase)
            .unwrap_or_else(|| panic!("unknown phase {phase:?}; expected one of {PHASES:?}"));
        Span::start(clock, self.duration[idx].clone(), self.runs[idx].clone())
    }

    /// Times `f` under a span for `phase` and returns its result.
    pub fn time<R>(&self, clock: &dyn Clock, phase: &str, f: impl FnOnce() -> R) -> R {
        let span = self.span(clock, phase);
        let result = f();
        span.finish();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_elapsed_micros() {
        let registry = MetricsRegistry::new();
        let clock = ManualClock::new();
        let spans = PhaseSpans::new(&registry);
        let span = spans.span(&clock, "load");
        clock.advance(1_500_000);
        assert_eq!(span.finish(), 1_500_000);
        let duration = registry.counter_micros(
            PHASE_DURATION_METRIC,
            "Cumulative wall-clock time spent in each mining pipeline phase, in seconds.",
            &[("phase", "load")],
        );
        assert_eq!(duration.get(), 1_500_000);
    }

    #[test]
    fn drop_records_once() {
        let registry = MetricsRegistry::new();
        let clock = ManualClock::new();
        let spans = PhaseSpans::new(&registry);
        {
            let _span = spans.span(&clock, "enumeration");
            clock.advance(250);
        } // dropped without finish()
        let runs = registry.counter(
            PHASE_RUNS_METRIC,
            "Completed timing spans per mining pipeline phase.",
            &[("phase", "enumeration")],
        );
        assert_eq!(runs.get(), 1, "drop records exactly one run");
    }

    #[test]
    fn time_helper_returns_value() {
        let registry = MetricsRegistry::new();
        let clock = ManualClock::new();
        let spans = PhaseSpans::new(&registry);
        let out = spans.time(&clock, "postprocess", || {
            clock.advance(42);
            7
        });
        assert_eq!(out, 7);
    }

    #[test]
    #[should_panic(expected = "unknown phase")]
    fn unknown_phase_panics() {
        let registry = MetricsRegistry::new();
        let clock = ManualClock::new();
        let spans = PhaseSpans::new(&registry);
        let _ = spans.span(&clock, "warp_drive");
    }

    #[test]
    fn monotonic_clock_advances() {
        let clock = MonotonicClock::new();
        let a = clock.now_micros();
        let b = clock.now_micros();
        assert!(b >= a);
    }
}
