//! Index-backed queries over an open [`ClusterStore`].
//!
//! Every query here is answered from the inverted indexes and the size
//! table; cluster records are decoded only when the caller materializes a
//! result id. The posting lists are sorted, so conjunctions are linear-time
//! sorted-merge intersections and disjunctions are k-way merges.

use regcluster_core::RegCluster;

use crate::error::StoreError;
use crate::reader::ClusterStore;

/// A conjunctive cluster query: *all* listed genes, *all* listed
/// conditions, and the size floors must hold (containment semantics).
///
/// An empty query matches every cluster. `top_k` keeps the k largest
/// matches by covered cells (`genes × conds`, ties broken by ascending id).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Query {
    /// Gene ids every match must contain.
    pub genes: Vec<u32>,
    /// Condition ids every match's chain must contain.
    pub conds: Vec<u32>,
    /// Minimum member-gene count.
    pub min_genes: u32,
    /// Minimum chain length.
    pub min_conds: u32,
    /// Keep only the k largest matches by covered cells.
    pub top_k: Option<usize>,
}

impl Query {
    /// The match-everything query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requires gene `g` to be a member of every match.
    #[must_use]
    pub fn with_gene(mut self, g: u32) -> Self {
        self.genes.push(g);
        self
    }

    /// Requires condition `c` on every match's chain.
    #[must_use]
    pub fn with_cond(mut self, c: u32) -> Self {
        self.conds.push(c);
        self
    }

    /// Sets the minimum member-gene count.
    #[must_use]
    pub fn with_min_genes(mut self, n: u32) -> Self {
        self.min_genes = n;
        self
    }

    /// Sets the minimum chain length.
    #[must_use]
    pub fn with_min_conds(mut self, n: u32) -> Self {
        self.min_conds = n;
        self
    }

    /// Keeps only the `k` largest matches by covered cells.
    #[must_use]
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }
}

impl ClusterStore {
    /// Runs a conjunctive query, returning matching cluster ids.
    ///
    /// Ids come back ascending (canonical order) unless `top_k` is set, in
    /// which case they are ordered largest-first by covered cells. No
    /// cluster record is decoded — only postings and the size table are
    /// touched.
    ///
    /// # Errors
    ///
    /// [`StoreError::IdOutOfRange`] when a queried gene or condition id is
    /// not in the store's dictionaries.
    pub fn query(&self, q: &Query) -> Result<Vec<u32>, StoreError> {
        for &g in &q.genes {
            if g >= self.n_genes() {
                return Err(StoreError::IdOutOfRange(format!(
                    "gene {g} not in store (dictionary size {})",
                    self.n_genes()
                )));
            }
        }
        for &c in &q.conds {
            if c >= self.n_conds() {
                return Err(StoreError::IdOutOfRange(format!(
                    "condition {c} not in store (dictionary size {})",
                    self.n_conds()
                )));
            }
        }

        // Conjunction of postings; `None` means "no term yet" (all ids).
        let mut candidates: Option<Vec<u32>> = None;
        for &g in &q.genes {
            candidates = Some(match candidates {
                None => self.clusters_with_gene(g).collect(),
                Some(cur) => intersect_sorted(&cur, self.clusters_with_gene(g)),
            });
            if candidates.as_ref().is_some_and(Vec::is_empty) {
                return Ok(Vec::new());
            }
        }
        for &c in &q.conds {
            candidates = Some(match candidates {
                None => self.clusters_with_cond(c).collect(),
                Some(cur) => intersect_sorted(&cur, self.clusters_with_cond(c)),
            });
            if candidates.as_ref().is_some_and(Vec::is_empty) {
                return Ok(Vec::new());
            }
        }

        let size_ok = |id: u32| {
            let (g, c) = self.cluster_dims(id).expect("candidate id in bounds");
            g >= q.min_genes && c >= q.min_conds
        };
        let mut ids: Vec<u32> = match candidates {
            Some(c) => c.into_iter().filter(|&id| size_ok(id)).collect(),
            None => (0..self.n_clusters()).filter(|&id| size_ok(id)).collect(),
        };

        if let Some(k) = q.top_k {
            ids.sort_by_key(|&id| {
                let (g, c) = self.cluster_dims(id).expect("id in bounds");
                (std::cmp::Reverse(u64::from(g) * u64::from(c)), id)
            });
            ids.truncate(k);
        }
        Ok(ids)
    }

    /// Ids of clusters **overlapping** the given gene/condition sets: at
    /// least one listed gene in common AND at least one listed condition on
    /// the chain (disjunction within each axis, conjunction across axes).
    /// An empty axis is unconstrained. Out-of-dictionary ids simply match
    /// nothing on that term.
    pub fn overlapping(&self, genes: &[u32], conds: &[u32]) -> Vec<u32> {
        let gene_union = (!genes.is_empty())
            .then(|| union_sorted(genes.iter().map(|&g| self.clusters_with_gene(g))));
        let cond_union = (!conds.is_empty())
            .then(|| union_sorted(conds.iter().map(|&c| self.clusters_with_cond(c))));
        match (gene_union, cond_union) {
            (Some(g), Some(c)) => intersect_sorted(&g, c.into_iter()),
            (Some(g), None) => g,
            (None, Some(c)) => c,
            (None, None) => (0..self.n_clusters()).collect(),
        }
    }

    /// Ids of stored clusters that **contain** `cluster` (all its member
    /// genes and all its chain conditions). The cluster itself matches if
    /// stored. Genes or conditions outside the dictionaries make the result
    /// empty (nothing can contain them).
    pub fn superclusters_of(&self, cluster: &RegCluster) -> Vec<u32> {
        let mut q = Query::new();
        for g in cluster.genes_iter() {
            match u32::try_from(g) {
                Ok(g) if g < self.n_genes() => q.genes.push(g),
                _ => return Vec::new(),
            }
        }
        for &c in &cluster.chain {
            match u32::try_from(c) {
                Ok(c) if c < self.n_conds() => q.conds.push(c),
                _ => return Vec::new(),
            }
        }
        self.query(&q)
            .expect("ids pre-checked against dictionaries")
    }
}

/// Intersection of a sorted slice with a sorted iterator.
fn intersect_sorted(a: &[u32], b: impl Iterator<Item = u32>) -> Vec<u32> {
    let mut out = Vec::new();
    let mut i = 0;
    for v in b {
        while i < a.len() && a[i] < v {
            i += 1;
        }
        if i == a.len() {
            break;
        }
        if a[i] == v {
            out.push(v);
            i += 1;
        }
    }
    out
}

/// K-way union of sorted iterators (result sorted, deduplicated).
fn union_sorted<'a>(lists: impl Iterator<Item = crate::reader::PostingsIter<'a>>) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    for list in lists {
        out.extend(list);
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_and_union_helpers() {
        let a = [1u32, 3, 5, 7];
        let b = [3u32, 4, 5, 9];
        let mut buf = Vec::new();
        for &v in &b {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(intersect_sorted(&a, b.iter().copied()), vec![3, 5]);
        assert_eq!(intersect_sorted(&[], b.iter().copied()), Vec::<u32>::new());
        assert_eq!(intersect_sorted(&a, std::iter::empty()), Vec::<u32>::new());
    }

    #[test]
    fn query_builder_composes() {
        let q = Query::new()
            .with_gene(3)
            .with_gene(5)
            .with_cond(1)
            .with_min_genes(4)
            .with_min_conds(2)
            .with_top_k(10);
        assert_eq!(q.genes, vec![3, 5]);
        assert_eq!(q.conds, vec![1]);
        assert_eq!(q.min_genes, 4);
        assert_eq!(q.min_conds, 2);
        assert_eq!(q.top_k, Some(10));
    }
}
