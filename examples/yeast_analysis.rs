//! A full expression-analysis pipeline on the simulated yeast benchmark:
//! mine reg-clusters with the paper's §5.2 parameters, summarize overlap,
//! pick showcase clusters, and score their GO-term enrichment — the
//! workflow behind the paper's Figure 8 and Table 2.
//!
//! The real Tavazoie/Church 2884 × 17 matrix and the online GO Term Finder
//! are not redistributable, so this example runs on the structured
//! simulation of `regcluster::datagen::yeast_like` (see DESIGN.md,
//! substitutions S1/S2). To analyze a real matrix instead, load it with
//! `regcluster::matrix::io::read_matrix_file` and supply your own
//! annotations.
//!
//! Run with `cargo run --release --example yeast_analysis`.

use regcluster::core::{mine, MiningParams};
use regcluster::datagen::yeast_like::{yeast_like, YeastConfig};
use regcluster::eval::{enrich, overlap, report, top_terms_by_category};

fn main() {
    let cfg = YeastConfig::default();
    let data = yeast_like(&cfg).expect("default configuration is feasible");
    println!(
        "simulated yeast dataset: {} genes × {} conditions, {} planted modules",
        data.matrix.n_genes(),
        data.matrix.n_conditions(),
        data.modules.len()
    );

    // The paper's §5.2 parameters: MinG = 20, MinC = 6, γ = 0.05, ε = 1.0.
    let params = MiningParams::new(20, 6, 0.05, 1.0).expect("paper parameters are valid");
    let start = std::time::Instant::now();
    let clusters = mine(&data.matrix, &params).expect("mining succeeds");
    println!(
        "mined {} bi-reg-clusters in {:.2}s",
        clusters.len(),
        start.elapsed().as_secs_f64()
    );
    println!("{}", report::overlap_summary(&clusters));

    // Three non-overlapping showcase clusters (Figure 8's selection).
    println!("\nshowcase clusters and their GO enrichment (Table 2 layout):");
    let mut rows = Vec::new();
    for (i, c) in overlap::select_disjoint(&clusters, 3).iter().enumerate() {
        println!(
            "  cluster {i}: {} p-members + {} n-members × {} conditions, chain {}",
            c.p_members.len(),
            c.n_members.len(),
            c.n_conditions(),
            c.regulation_chain()
                .display_with(data.matrix.condition_names())
        );
        // Show the crossover signature: a p-member and an n-member profile.
        if let (Some(&p), Some(&n)) = (c.p_members.first(), c.n_members.first()) {
            let pv: Vec<String> = c
                .chain
                .iter()
                .map(|&cond| format!("{:.1}", data.matrix.value(p, cond)))
                .collect();
            let nv: Vec<String> = c
                .chain
                .iter()
                .map(|&cond| format!("{:.1}", data.matrix.value(n, cond)))
                .collect();
            println!(
                "    p-member {}: [{}]",
                data.matrix.gene_name(p),
                pv.join(", ")
            );
            println!(
                "    n-member {}: [{}]",
                data.matrix.gene_name(n),
                nv.join(", ")
            );
        }
        let enrichments = enrich(&data.go, &c.genes());
        let tops: Vec<_> = top_terms_by_category(&enrichments)
            .into_iter()
            .cloned()
            .collect();
        rows.push((format!("cluster {i}"), tops));
    }
    println!("\n{}", report::go_table(&rows));
    println!(
        "Very low p-values (≪ 1e-10) mean the clusters align with the planted\n\
         functional modules, mirroring the paper's Table 2."
    );
}
