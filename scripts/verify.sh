#!/usr/bin/env bash
# Full verification: release build, tests, formatting, lints.
# Run from the repository root: scripts/verify.sh
#
# --quick trims the multi-process cluster chaos step to a subset cheap
# enough for shared runners (one golden smoke + the durable-control-plane
# scenarios); everything else runs identically.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "usage: scripts/verify.sh [--quick]" >&2; exit 2 ;;
  esac
done

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> store durability (round-trip + corruption)"
cargo test -q -p regcluster-store --test roundtrip --test corruption

echo "==> chaos (failpoint-injected faults: torn writes, crash checkpoints, worker panics)"
cargo test -q -p regcluster-store --test torn_write --test checkpoint_file
cargo test -q -p regcluster-store --test journal
cargo test -q -p regcluster-core --test fault --test checkpoint
cargo test -q -p regcluster-cli --test binary -- failpoints_env interrupted_mine
cargo test -q --test alloc disabled_failpoints

echo "==> serve smoke (concurrent clients, overload shedding, graceful shutdown)"
cargo test -q -p regcluster-cli --test serve_smoke

echo "==> cluster smoke (coordinator/worker/replica processes, SIGKILL + restart, torn uploads, journal replay, network faults, golden merges)"
if [[ "$QUICK" == 1 ]]; then
  # Shared-runner subset: one golden smoke plus the durable-control-plane
  # scenarios (journal replay after SIGKILL, renew storm through a delayed
  # link, garbled upload ack retried idempotently).
  cargo test -q -p regcluster-cli --test cluster_harness -- \
    smoke_two_workers_match_single_node_golden \
    coordinator_kill_mid_grant_replays_journal_without_fencing \
    renew_storm_survives_a_delayed_link \
    garbled_upload_response_is_retried_idempotently
else
  cargo test -q -p regcluster-cli --test cluster_harness
fi

echo "==> delta equivalence (mutated matrix delta-mined bit-identical to a full re-mine, 1-8 threads)"
cargo test -q -p regcluster-core --test delta_golden
cargo test -q -p regcluster-cli --test binary -- delta_mine_through_the_binary

echo "==> generations hot-swap (publish under 32 concurrent clients, zero failed requests)"
cargo test -q -p regcluster-cli --test serve_smoke -- watcher_hot_swaps
cargo test -q -p regcluster-store --test torn_write -- torn_publish

echo "==> engine matrix (every engine mines, stores, queries, exports metrics)"
cargo test -q -p regcluster-cli --test engines_matrix

echo "==> engine-comparison bench, smoke mode"
REGCLUSTER_RESULTS="$(mktemp -d)" \
  cargo run --release -q -p regcluster-bench --bin comparison -- --quick

echo "==> perf smoke (hot-path baseline sanity + quick sweep; no absolute-time assertions)"
# Shared runners are too noisy for wall-clock gates: --check-baseline only
# validates the committed BENCH_hotpath.json structurally, and the --quick
# sweep proves the harness itself still runs end to end. Regression gating
# against real numbers is scripts/perf.sh, for dedicated hardware.
cargo run --release -q -p regcluster-bench --bin hotpath -- --check-baseline
REGCLUSTER_RESULTS="$(mktemp -d)" \
  cargo run --release -q -p regcluster-bench --bin hotpath -- --quick

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "verify: OK"
