//! Micro-benchmarks of the coherence sliding window (the per-candidate inner
//! step of the miner: sort genes by H-score, emit maximal ε-windows).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use regcluster_core::coherence::maximal_windows;

/// Deterministic pseudo-random scores, pre-sorted as the miner would.
fn scores(n: usize) -> Vec<f64> {
    let mut v: Vec<f64> = (0..n)
        .map(|i| {
            let x = (i as u64).wrapping_mul(2654435761).wrapping_add(12345) % 100_000;
            x as f64 / 100_000.0
        })
        .collect();
    v.sort_by(f64::total_cmp);
    v
}

fn bench_windows(c: &mut Criterion) {
    let mut group = c.benchmark_group("maximal_windows");
    for n in [100usize, 1000, 10_000] {
        let s = scores(n);
        group.bench_with_input(BenchmarkId::new("eps_0.01", n), &n, |b, _| {
            b.iter(|| black_box(maximal_windows(black_box(&s), 0.01, 20)));
        });
        group.bench_with_input(BenchmarkId::new("eps_0.5", n), &n, |b, _| {
            b.iter(|| black_box(maximal_windows(black_box(&s), 0.5, 20)));
        });
    }
    group.finish();
}

fn bench_sort_plus_window(c: &mut Criterion) {
    // The full per-candidate cost: sorting members by score + windowing.
    let mut group = c.benchmark_group("sort_and_window");
    for n in [100usize, 1000, 10_000] {
        let mut raw: Vec<f64> = scores(n);
        // Deterministic shuffle-ish perturbation to undo the ordering.
        raw.reverse();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut v = raw.clone();
                v.sort_by(f64::total_cmp);
                black_box(maximal_windows(&v, 0.05, 20))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_windows, bench_sort_plus_window);
criterion_main!(benches);
