//! Human-readable and machine-readable cluster reports.

use regcluster_core::RegCluster;
use regcluster_matrix::ExpressionMatrix;

use crate::go::Enrichment;
use crate::overlap::overlap_stats;

/// Formats a summary table of mined clusters:
///
/// ```text
/// id  genes  p  n  conds  chain
/// 0   21     16 5  6      c4 ↰ c11 ↰ c2 ↰ ...
/// ```
pub fn cluster_table(matrix: &ExpressionMatrix, clusters: &[RegCluster]) -> String {
    let mut out = String::new();
    out.push_str("id\tgenes\tp\tn\tconds\tchain\n");
    for (i, c) in clusters.iter().enumerate() {
        let chain = c
            .chain
            .iter()
            .map(|&cond| matrix.condition_name(cond))
            .collect::<Vec<_>>()
            .join(" < ");
        out.push_str(&format!(
            "{i}\t{}\t{}\t{}\t{}\t{chain}\n",
            c.n_genes(),
            c.p_members.len(),
            c.n_members.len(),
            c.n_conditions(),
        ));
    }
    out
}

/// One-line overlap summary echoing the paper's §5.2 observation.
pub fn overlap_summary(clusters: &[RegCluster]) -> String {
    let s = overlap_stats(clusters);
    format!(
        "{} clusters; per-cluster max cell overlap: {:.0}%–{:.0}% (mean {:.0}%), {} fully disjoint",
        s.n_clusters, s.min_percent, s.max_percent, s.mean_percent, s.n_disjoint
    )
}

/// Per-cluster expression profiles in CSV form, one row per member gene in
/// **chain order** columns — the data behind a Figure 8-style plot. The
/// second column marks the orientation (`p` solid / `n` dashed in the
/// paper's figure).
pub fn profile_csv(matrix: &ExpressionMatrix, cluster: &RegCluster) -> String {
    let mut out = String::from("gene,role");
    for &c in &cluster.chain {
        out.push(',');
        out.push_str(matrix.condition_name(c));
    }
    out.push('\n');
    for (&g, role) in cluster
        .p_members
        .iter()
        .map(|g| (g, "p"))
        .chain(cluster.n_members.iter().map(|g| (g, "n")))
    {
        out.push_str(matrix.gene_name(g));
        out.push(',');
        out.push_str(role);
        for &c in &cluster.chain {
            out.push_str(&format!(",{}", matrix.value(g, c)));
        }
        out.push('\n');
    }
    out
}

/// Formats the Table 2 layout: one row per cluster, the top term of each GO
/// category with its p-value.
pub fn go_table(rows: &[(String, Vec<Enrichment>)]) -> String {
    let mut out = String::new();
    out.push_str("cluster\tProcess\tFunction\tCellular Component\n");
    for (name, tops) in rows {
        out.push_str(name);
        for e in tops {
            out.push_str(&format!("\t{} (p={:.3e})", e.term_name, e.p_value));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcluster_datagen::GoCategory;

    fn matrix() -> ExpressionMatrix {
        ExpressionMatrix::from_rows(
            vec!["gA".into(), "gB".into()],
            vec!["c1".into(), "c2".into(), "c3".into()],
            vec![vec![1.0, 2.0, 3.0], vec![6.0, 5.0, 4.0]],
        )
        .unwrap()
    }

    #[test]
    fn table_lists_every_cluster() {
        let m = matrix();
        let clusters = vec![RegCluster {
            chain: vec![0, 1, 2],
            p_members: vec![0],
            n_members: vec![1],
        }];
        let t = cluster_table(&m, &clusters);
        assert!(t.contains("c1 < c2 < c3"));
        assert!(t.lines().count() == 2);
        assert!(t.contains("0\t2\t1\t1\t3"));
    }

    #[test]
    fn profile_csv_has_chain_order_and_roles() {
        let m = matrix();
        let c = RegCluster {
            chain: vec![2, 0],
            p_members: vec![0],
            n_members: vec![1],
        };
        let csv = profile_csv(&m, &c);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "gene,role,c3,c1");
        assert_eq!(lines[1], "gA,p,3,1");
        assert_eq!(lines[2], "gB,n,4,6");
    }

    #[test]
    fn overlap_summary_mentions_counts() {
        let clusters = vec![
            RegCluster {
                chain: vec![0, 1],
                p_members: vec![0],
                n_members: vec![],
            },
            RegCluster {
                chain: vec![0, 1],
                p_members: vec![0, 1],
                n_members: vec![],
            },
        ];
        let s = overlap_summary(&clusters);
        assert!(s.starts_with("2 clusters"));
        assert!(s.contains("100%"), "{s}");
    }

    #[test]
    fn go_table_formats_rows() {
        let e = Enrichment {
            term_index: 0,
            term_id: "GO:1".into(),
            term_name: "DNA replication".into(),
            category: GoCategory::Process,
            in_cluster: 5,
            in_population: 10,
            p_value: 3.64e-7,
        };
        let rows = vec![("c2_1".to_string(), vec![e])];
        let t = go_table(&rows);
        assert!(t.contains("DNA replication (p=3.640e-7)"));
        assert!(t.contains("c2_1"));
    }
}
