//! The cluster worker: acquires root leases, mines them into per-lease
//! shards with local checkpointing, and uploads sealed shards.
//!
//! # Crash/restart behavior
//!
//! Work files are keyed by lease identity *and* root range
//! (`lease-<id>-<start>-<end>.rck`, `shard-<id>-<start>-<end>.rcs`): a
//! resumed engine checkpoint completes its own pending frontier rather
//! than re-reading the roots argument, so a checkpoint must only ever be
//! resumed for the exact range it was taken under — the filename is that
//! guarantee. A restarted worker that re-acquires the same range resumes
//! from its checkpoint; a sealed-but-not-uploaded shard is re-uploaded
//! without re-mining.
//!
//! # Lease loss
//!
//! A heartbeat thread renews the lease at a third of its TTL. On a 409
//! (the coordinator fenced us off — expiry or restart) or after a full
//! TTL of failed renewals, it cancels the [`MineControl`]; the engine
//! stops early and flushes a final checkpoint, and the worker goes back
//! to acquiring. Mining output is never uploaded under a lost lease —
//! the coordinator's epoch check would refuse it anyway.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use regcluster_core::{
    matrix_fingerprint, mine_prepared_roots_to_sink_checkpointed, range_roots, root_fingerprints,
    CheckpointPlan, EngineConfig, MineControl, Miner, MiningParams, NoopObserver,
};
use regcluster_matrix::io::read_matrix_file;
use regcluster_matrix::ExpressionMatrix;
use regcluster_obs::MetricsRegistry;
use regcluster_store::{
    read_checkpoint, CheckpointFile, ClusterStore, StoreProvenance, StoreWriter,
};

use crate::backoff::Backoff;
use crate::coordinator::CLUSTER_ENGINE;
use crate::error::ClusterError;
use crate::http::http_request;
use crate::metrics::WorkerMetrics;
use crate::protocol::{AcquireRequest, AcquireResponse, JobInfo, RenewRequest};

/// Longest single backoff delay in any worker retry loop.
const BACKOFF_CAP: Duration = Duration::from_secs(2);

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator control-plane address, `host:port`.
    pub coordinator: String,
    /// Expression matrix file (must fingerprint-match the coordinator's).
    pub matrix_path: PathBuf,
    /// Scratch directory for checkpoints and sealed shards (reused on
    /// restart — this is what makes resume work).
    pub work_dir: PathBuf,
    /// Self-assigned id, shown in coordinator logs and lease state.
    pub worker_id: String,
    /// Mining threads.
    pub threads: usize,
    /// Checkpoint cadence while mining a lease.
    pub checkpoint_every: Duration,
    /// Base retry delay: every control-plane retry loop backs off
    /// exponentially with jitter from this base (see [`Backoff`]).
    pub poll: Duration,
}

/// What a worker did before the coordinator told it the run is done.
#[derive(Debug, Clone, Default)]
pub struct WorkerReport {
    /// Leases mined to completion (including resumed ones).
    pub leases_mined: u64,
    /// Leases resumed from a local checkpoint.
    pub leases_resumed: u64,
    /// Shards accepted by the coordinator.
    pub shards_uploaded: u64,
    /// Leases lost mid-mine (cancelled by the heartbeat).
    pub leases_lost: u64,
    /// Upload attempts that could not connect (coordinator down).
    pub upload_conn_refused: u64,
    /// Upload attempts answered 503 + `Retry-After` (coordinator shed).
    pub upload_retry_after: u64,
}

/// Outcome of mining one granted lease.
enum LeaseOutcome {
    Uploaded { resumed: bool },
    Lost,
}

/// Runs the worker loop until the coordinator reports the run complete.
///
/// # Errors
///
/// [`ClusterError`] for an unreadable matrix, a params/fingerprint
/// mismatch with the coordinator, or store failures on local shard
/// files. Connection failures are *not* errors — the worker retries
/// until the coordinator comes (back) up.
pub fn run_worker(cfg: &WorkerConfig) -> Result<WorkerReport, ClusterError> {
    std::fs::create_dir_all(&cfg.work_dir)?;
    let job = fetch_job(cfg);
    let matrix = read_matrix_file(&cfg.matrix_path)?;
    let local_fp = matrix_fingerprint(&matrix);
    if local_fp != job.matrix_fingerprint {
        return Err(ClusterError::Protocol(format!(
            "matrix fingerprint {local_fp:#x} disagrees with coordinator's {:#x}; \
             the worker is mining a different input",
            job.matrix_fingerprint
        )));
    }
    if job.engine != CLUSTER_ENGINE {
        return Err(ClusterError::Protocol(format!(
            "coordinator runs engine {:?}; this worker only mines {CLUSTER_ENGINE}",
            job.engine
        )));
    }
    let params: MiningParams = serde_json::from_str(&job.params_json)?;
    params.validate()?;
    let miner = Miner::new(&matrix, &params)?;

    let registry = MetricsRegistry::new();
    let metrics = WorkerMetrics::register(&registry);

    let mut report = WorkerReport::default();
    // Acquire retries forever (the coordinator may be restarting), so no
    // budget — but the delay still grows and jitters so a fleet of
    // waiting workers doesn't stampede a coordinator that comes back.
    let mut backoff = Backoff::new(cfg.poll, BACKOFF_CAP);
    loop {
        let acquire = AcquireRequest {
            worker: cfg.worker_id.clone(),
        };
        let body = serde_json::to_string(&acquire)?;
        let response =
            match http_request(&cfg.coordinator, "POST", "/lease/acquire", body.as_bytes()) {
                Ok(reply) if reply.status == 200 => {
                    match parse_json::<AcquireResponse>(&reply.body) {
                        Some(r) => r,
                        None => {
                            backoff.sleep();
                            continue;
                        }
                    }
                }
                // Shed, fault-injected, or coordinator down: back off
                // (honoring a Retry-After hint when the server sent one).
                Ok(reply) => {
                    backoff.sleep_hinted(reply.retry_after);
                    continue;
                }
                Err(_) => {
                    backoff.sleep();
                    continue;
                }
            };
        backoff.reset();
        match response.kind.as_str() {
            "grant" => {
                match mine_lease(cfg, &job, &params, &matrix, &miner, &response, &metrics)? {
                    LeaseOutcome::Uploaded { resumed } => {
                        report.leases_mined += 1;
                        report.shards_uploaded += 1;
                        if resumed {
                            report.leases_resumed += 1;
                        }
                    }
                    LeaseOutcome::Lost => report.leases_lost += 1,
                }
            }
            "wait" => {
                backoff.sleep();
            }
            "done" => break,
            other => {
                return Err(ClusterError::Protocol(format!(
                    "unknown acquire response kind {other:?}"
                )));
            }
        }
    }
    report.upload_conn_refused = metrics.upload_conn_refused.get();
    report.upload_retry_after = metrics.upload_retry_after.get();
    eprintln!(
        "worker {}: done ({} mined, {} resumed, {} uploaded, {} lost, \
         {} upload conn-refused, {} upload retry-after)",
        cfg.worker_id,
        report.leases_mined,
        report.leases_resumed,
        report.shards_uploaded,
        report.leases_lost,
        report.upload_conn_refused,
        report.upload_retry_after
    );
    Ok(report)
}

/// Fetches `/job`, retrying with backoff until the coordinator answers.
fn fetch_job(cfg: &WorkerConfig) -> JobInfo {
    let mut backoff = Backoff::new(cfg.poll, BACKOFF_CAP);
    loop {
        match http_request(&cfg.coordinator, "GET", "/job", &[]) {
            Ok(reply) if reply.status == 200 => {
                if let Some(job) = parse_json::<JobInfo>(&reply.body) {
                    return job;
                }
                backoff.sleep();
            }
            Ok(reply) => {
                backoff.sleep_hinted(reply.retry_after);
            }
            Err(_) => {
                backoff.sleep();
            }
        }
    }
}

fn parse_json<T: serde::Deserialize>(bytes: &[u8]) -> Option<T> {
    std::str::from_utf8(bytes)
        .ok()
        .and_then(|s| serde_json::from_str(s).ok())
}

/// Mines one granted lease: resume from checkpoint or sealed shard when
/// present, heartbeat while mining, seal and upload.
fn mine_lease(
    cfg: &WorkerConfig,
    job: &JobInfo,
    params: &MiningParams,
    matrix: &ExpressionMatrix,
    miner: &Miner<'_>,
    grant: &AcquireResponse,
    metrics: &WorkerMetrics,
) -> Result<LeaseOutcome, ClusterError> {
    let (lease, start, end) = (grant.lease, grant.start as usize, grant.end as usize);
    let shard_path = cfg
        .work_dir
        .join(format!("shard-{lease}-{start}-{end}.rcs"));
    let ck_path = cfg
        .work_dir
        .join(format!("lease-{lease}-{start}-{end}.rck"));

    // A sealed shard from a previous incarnation (mined, crashed before
    // upload, or uploaded but fenced): upload it as-is, no re-mining.
    if ClusterStore::open(&shard_path).is_ok() {
        eprintln!(
            "worker {}: re-uploading sealed shard for roots [{start}, {end})",
            cfg.worker_id
        );
        return upload_shard(cfg, grant, &shard_path, &ck_path, false, metrics);
    }

    let resume = read_checkpoint(&ck_path).ok();
    let resumed = resume.is_some();
    if resumed {
        eprintln!(
            "worker {}: resuming roots [{start}, {end}) from checkpoint",
            cfg.worker_id
        );
    }

    let writer = StoreWriter::create_with_provenance(
        &shard_path,
        matrix.gene_names(),
        matrix.condition_names(),
        params,
        &StoreProvenance {
            engine: Some(CLUSTER_ENGINE.to_string()),
            engine_params: Some(serde_json::to_string(params)?),
            generation: job.generation,
            matrix_fingerprint: Some(job.matrix_fingerprint),
            root_fingerprints: Some(root_fingerprints(miner)),
        },
    )?;
    let ck_file = CheckpointFile::new(&ck_path);
    let mut plan = CheckpointPlan::new(&ck_file).with_every(cfg.checkpoint_every);
    if let Some(ck) = resume {
        plan = plan.with_resume(ck);
    }

    let control = MineControl::new();
    let heartbeat = spawn_heartbeat(cfg, grant, &control);
    let roots = range_roots(start, end);
    let mine_result = mine_prepared_roots_to_sink_checkpointed(
        miner,
        &roots,
        &EngineConfig::new(cfg.threads.max(1)),
        &control,
        &NoopObserver,
        &writer,
        plan,
    );
    heartbeat.stop();

    // A checkpoint that no longer matches this run (params changed
    // between restarts, say) fails resume validation; throw it away and
    // let the next grant mine from scratch instead of wedging forever.
    let stream = match mine_result {
        Ok((stream, _)) => stream,
        Err(e) => {
            let _ = std::fs::remove_file(&ck_path);
            return Err(e.into());
        }
    };

    if control.is_cancelled() {
        // Lease lost mid-mine. The engine flushed a final checkpoint on
        // early shutdown; keep it (a future grant of the same range
        // resumes from it) and abandon the unsealed shard scratch.
        eprintln!(
            "worker {}: lost lease on roots [{start}, {end}), checkpoint kept",
            cfg.worker_id
        );
        drop(writer);
        return Ok(LeaseOutcome::Lost);
    }
    debug_assert!(!stream.stopped_by_sink, "store writer never refuses");
    writer.finish()?;
    upload_shard(cfg, grant, &shard_path, &ck_path, resumed, metrics)
}

/// Uploads a sealed shard under the grant's epoch. 200 cleans up the
/// local shard + checkpoint; 409 keeps the shard for a future grant of
/// the same range; retryable failures back off within a one-TTL budget,
/// then give up back to the acquire loop (the shard also stays for
/// retry). Connection-refused and shed-503 retries are counted apart:
/// one means the coordinator is *down*, the other that it is *pushing
/// back* — operators page on the first and wait out the second.
fn upload_shard(
    cfg: &WorkerConfig,
    grant: &AcquireResponse,
    shard_path: &PathBuf,
    ck_path: &PathBuf,
    resumed: bool,
    metrics: &WorkerMetrics,
) -> Result<LeaseOutcome, ClusterError> {
    let bytes = std::fs::read(shard_path)?;
    let path = format!("/shard/{}/{}", grant.lease, grant.epoch);
    let mut backoff = Backoff::new(cfg.poll, BACKOFF_CAP)
        .with_budget(Duration::from_millis(grant.ttl_ms.max(1000)));
    loop {
        let retry_hint = match http_request(&cfg.coordinator, "POST", &path, &bytes) {
            Ok(reply) if reply.status == 200 => {
                let _ = std::fs::remove_file(shard_path);
                let _ = std::fs::remove_file(ck_path);
                return Ok(LeaseOutcome::Uploaded { resumed });
            }
            Ok(reply) if reply.status == 409 => {
                eprintln!(
                    "worker {}: upload fenced (lease {} epoch {}); shard kept",
                    cfg.worker_id, grant.lease, grant.epoch
                );
                return Ok(LeaseOutcome::Lost);
            }
            // 400: validation refused the shard — not retryable.
            Ok(reply) if reply.status == 400 => {
                let _ = std::fs::remove_file(shard_path);
                return Err(ClusterError::Protocol(format!(
                    "coordinator refused shard: {}",
                    String::from_utf8_lossy(&reply.body)
                )));
            }
            // 503: the coordinator is shedding; honor its Retry-After.
            Ok(reply) if reply.status == 503 => {
                metrics.upload_retry_after.inc();
                reply.retry_after
            }
            // 500 (e.g. injected upload fault) or garbled/dropped
            // responses: plain backoff within the budget.
            Ok(_) => None,
            Err(e) => {
                if e.kind() == std::io::ErrorKind::ConnectionRefused {
                    metrics.upload_conn_refused.inc();
                }
                None
            }
        };
        if !backoff.sleep_hinted(retry_hint) {
            return Ok(LeaseOutcome::Lost);
        }
    }
}

/// Handle for the per-lease heartbeat thread.
struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl Heartbeat {
    fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.handle.join();
    }
}

/// Renews the lease at TTL/3. Cancels `control` when the coordinator
/// fences the lease (409) or a full TTL passes without a successful
/// renewal (coordinator unreachable — the lease has expired by then).
fn spawn_heartbeat(
    cfg: &WorkerConfig,
    grant: &AcquireResponse,
    control: &MineControl,
) -> Heartbeat {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_thread = Arc::clone(&stop);
    let control = control.clone();
    let coordinator = cfg.coordinator.clone();
    let ttl = Duration::from_millis(grant.ttl_ms.max(300));
    let renew = RenewRequest {
        worker: cfg.worker_id.clone(),
        lease: grant.lease,
        epoch: grant.epoch,
    };
    let body = serde_json::to_string(&renew).unwrap_or_default();
    let handle = std::thread::spawn(move || {
        let interval = ttl / 3;
        let mut last_ok = Instant::now();
        while !stop_thread.load(Ordering::SeqCst) {
            std::thread::sleep(interval);
            if stop_thread.load(Ordering::SeqCst) {
                break;
            }
            match http_request(&coordinator, "POST", "/lease/renew", body.as_bytes()) {
                Ok(reply) if reply.status == 200 => last_ok = Instant::now(),
                Ok(reply) if reply.status == 409 => {
                    control.cancel();
                    break;
                }
                // Unreachable or 5xx: the lease may still be alive
                // server-side; only give up once it must have expired.
                Ok(_) | Err(_) => {
                    if last_ok.elapsed() > ttl {
                        control.cancel();
                        break;
                    }
                }
            }
        }
    });
    Heartbeat { stop, handle }
}
