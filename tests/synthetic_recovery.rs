//! End-to-end test: every cluster planted by the paper's synthetic generator
//! is recovered by the miner, and everything the miner reports is a valid
//! reg-cluster.

use regcluster::core::RegCluster;
use regcluster::core::{mine, MiningParams};
use regcluster::datagen::{generate, PatternKind, PlantedCluster, SyntheticConfig};

fn recovers(found: &[RegCluster], planted: &PlantedCluster) -> bool {
    let planted_conds = planted.conditions_sorted();
    found.iter().any(|c| {
        let genes = c.genes();
        let mut conds = c.chain.clone();
        conds.sort_unstable();
        planted.genes.iter().all(|g| genes.binary_search(g).is_ok())
            && planted_conds.iter().all(|pc| conds.contains(pc))
    })
}

#[test]
fn planted_shift_scale_clusters_are_recovered() {
    let cfg = SyntheticConfig {
        n_genes: 400,
        n_conds: 20,
        n_clusters: 4,
        avg_cluster_dims: 6,
        cluster_gene_frac: 0.03, // ~12 genes per cluster
        neg_fraction: 0.3,
        plant_gamma: 0.15,
        pattern: PatternKind::ShiftScale,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed: 11,
    };
    let data = generate(&cfg).unwrap();
    // Mine below the planting threshold with a small coherence budget, as
    // the paper's efficiency experiments do (γ = 0.1, ε = 0.01).
    let min_genes = data.planted.iter().map(|p| p.n_genes()).min().unwrap();
    let min_conds = data.planted.iter().map(|p| p.n_conditions()).min().unwrap();
    let params = MiningParams::new(min_genes, min_conds, 0.1, 0.01).unwrap();
    let clusters = mine(&data.matrix, &params).unwrap();

    for (i, planted) in data.planted.iter().enumerate() {
        assert!(
            recovers(&clusters, planted),
            "planted cluster {i} ({} genes × {} conds) not recovered among {} clusters",
            planted.n_genes(),
            planted.n_conditions(),
            clusters.len()
        );
    }
    for c in &clusters {
        c.validate(&data.matrix, &params).unwrap();
    }
}

#[test]
fn planted_negative_members_are_recovered_with_correct_orientation() {
    let cfg = SyntheticConfig {
        n_genes: 300,
        n_conds: 15,
        n_clusters: 3,
        avg_cluster_dims: 5,
        cluster_gene_frac: 0.04,
        neg_fraction: 0.4,
        plant_gamma: 0.15,
        pattern: PatternKind::ShiftScale,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed: 23,
    };
    let data = generate(&cfg).unwrap();
    let min_genes = data.planted.iter().map(|p| p.n_genes()).min().unwrap();
    let min_conds = data.planted.iter().map(|p| p.n_conditions()).min().unwrap();
    let params = MiningParams::new(min_genes, min_conds, 0.1, 0.01).unwrap();
    let clusters = mine(&data.matrix, &params).unwrap();

    for planted in &data.planted {
        let pos: Vec<usize> = planted
            .genes
            .iter()
            .zip(&planted.negated)
            .filter(|&(_, n)| !n)
            .map(|(&g, _)| g)
            .collect();
        let neg: Vec<usize> = planted
            .genes
            .iter()
            .zip(&planted.negated)
            .filter(|&(_, n)| *n)
            .map(|(&g, _)| g)
            .collect();
        // Find a recovered cluster containing all planted genes and check
        // the p/n split matches the planted orientation (up to inversion).
        let hit = clusters.iter().find(|c| {
            let genes = c.genes();
            planted.genes.iter().all(|g| genes.binary_search(g).is_ok())
        });
        let hit = hit.expect("planted cluster recovered");
        let p_has_pos = pos.iter().all(|g| hit.p_members.contains(g));
        let n_has_pos = pos.iter().all(|g| hit.n_members.contains(g));
        if p_has_pos {
            assert!(neg.iter().all(|g| hit.n_members.contains(g)));
        } else {
            assert!(
                n_has_pos,
                "positively planted genes split across orientations"
            );
            assert!(neg.iter().all(|g| hit.p_members.contains(g)));
        }
    }
}

#[test]
fn pure_shifting_and_pure_scaling_are_special_cases() {
    // The reg-cluster model subsumes both prior models: planted pure-shift
    // and pure-scale clusters must be recovered too.
    for pattern in [PatternKind::ShiftOnly, PatternKind::ScaleOnly] {
        let cfg = SyntheticConfig {
            n_genes: 250,
            n_conds: 15,
            n_clusters: 3,
            avg_cluster_dims: 5,
            cluster_gene_frac: 0.04,
            neg_fraction: 0.0,
            plant_gamma: 0.08,
            pattern,
            value_max: 10.0,
            noise_sigma: 0.0,
            seed: 31,
        };
        let data = generate(&cfg).unwrap();
        let min_genes = data.planted.iter().map(|p| p.n_genes()).min().unwrap();
        let min_conds = data.planted.iter().map(|p| p.n_conditions()).min().unwrap();
        let params = MiningParams::new(min_genes, min_conds, 0.05, 0.01).unwrap();
        let clusters = mine(&data.matrix, &params).unwrap();
        for (i, planted) in data.planted.iter().enumerate() {
            assert!(
                recovers(&clusters, planted),
                "{pattern:?}: planted cluster {i} not recovered"
            );
        }
    }
}

#[test]
fn tendency_clusters_are_not_coherent_clusters() {
    // Order-preserving but incoherent patterns must NOT pass a tight ε —
    // this is the coherence guarantee tendency-based baselines lack.
    let cfg = SyntheticConfig {
        n_genes: 250,
        n_conds: 15,
        n_clusters: 3,
        avg_cluster_dims: 5,
        cluster_gene_frac: 0.04,
        neg_fraction: 0.0,
        plant_gamma: 0.1,
        pattern: PatternKind::Tendency,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed: 47,
    };
    let data = generate(&cfg).unwrap();
    let min_genes = data.planted.iter().map(|p| p.n_genes()).min().unwrap();
    let min_conds = data.planted.iter().map(|p| p.n_conditions()).min().unwrap();
    let params = MiningParams::new(min_genes, min_conds, 0.05, 0.01).unwrap();
    let clusters = mine(&data.matrix, &params).unwrap();
    for planted in &data.planted {
        assert!(
            !recovers(&clusters, planted),
            "incoherent tendency cluster wrongly recovered at ε = 0.01"
        );
    }
}
