//! Smoke tests of the HTTP serving layer: a real socket, ≥ 32 concurrent
//! clients, metrics via /stats and the Prometheus /metrics endpoint
//! (text-format well-formedness, monotone counters across scrapes), and
//! graceful shutdown (threads joined, port released).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use regcluster_cli::serve::{ServeConfig, Server, STORE_SWAPS_METRIC, STORE_WATCH_ERRORS_METRIC};
use regcluster_core::{mine, MiningParams};
use regcluster_datagen::{generate, PatternKind, SyntheticConfig};
use regcluster_store::{ClusterStore, Generations, StoreProvenance, StoreWriter};

/// Mines a small synthetic workload and writes it to a store.
fn build_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("regcluster-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let cfg = SyntheticConfig {
        n_genes: 100,
        n_conds: 30,
        n_clusters: 6,
        avg_cluster_dims: 6,
        cluster_gene_frac: 0.06,
        neg_fraction: 0.3,
        plant_gamma: 0.15,
        pattern: PatternKind::ShiftScale,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed: 7,
    };
    let m = generate(&cfg).unwrap().matrix;
    let params = MiningParams::new(4, 4, 0.1, 0.05).unwrap();
    let clusters = mine(&m, &params).unwrap();
    assert!(!clusters.is_empty(), "workload must yield clusters");
    let w = StoreWriter::create(&path, m.gene_names(), m.condition_names(), &params).unwrap();
    for c in &clusters {
        w.write_cluster(c).unwrap();
    }
    w.finish().unwrap();
    path
}

/// One blocking HTTP GET; returns (status, body).
fn get(port: u16, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"))
        .parse()
        .unwrap();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Scrapes `/metrics`, checks status + content type, and asserts the body
/// is well-formed Prometheus text: every line is either a `# HELP` /
/// `# TYPE` comment or a `name{labels} value` sample with a parseable
/// value, and every family has its HELP/TYPE pair. Returns the samples.
fn scrape_metrics(port: u16) -> Vec<(String, f64)> {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    write!(
        stream,
        "GET /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    let (headers, body) = raw.split_once("\r\n\r\n").unwrap();
    assert!(
        headers.contains("Content-Type: text/plain; version=0.0.4"),
        "Prometheus text content type expected:\n{headers}"
    );

    let mut helped = Vec::new();
    let mut typed = Vec::new();
    let mut samples = Vec::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            helped.push(rest.split_whitespace().next().unwrap().to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut words = rest.split_whitespace();
            let name = words.next().unwrap().to_string();
            let kind = words.next().unwrap();
            assert!(
                kind == "counter" || kind == "histogram",
                "unexpected TYPE in line: {line}"
            );
            typed.push(name);
        } else {
            assert!(!line.starts_with('#'), "unparseable comment: {line}");
            let (series, value) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("sample line without value: {line}"));
            let value: f64 = value
                .parse()
                .unwrap_or_else(|_| panic!("unparseable value in: {line}"));
            samples.push((series.to_string(), value));
        }
    }
    assert_eq!(
        helped, typed,
        "every family needs a HELP/TYPE pair:\n{body}"
    );
    assert!(!samples.is_empty(), "scrape returned no samples:\n{body}");
    samples
}

#[test]
fn serves_32_concurrent_clients_and_shuts_down_gracefully() {
    let store_path = build_store("smoke.rcs");
    let store = Arc::new(ClusterStore::open(&store_path).unwrap());
    let n_clusters = store.n_clusters();
    let probe = store.cluster(0).unwrap();
    let gene = store.gene_names()[probe.p_members[0]].clone();

    let config = ServeConfig {
        port: 0,
        threads: 4,
        max_requests: None,
        ..ServeConfig::default()
    };
    let server = Server::start(store, &config).unwrap();
    let port = server.port();
    assert_ne!(port, 0, "port 0 resolves to the actual ephemeral port");

    // 32 concurrent clients, each issuing a mix of requests.
    let clients: Vec<_> = (0..32)
        .map(|i| {
            let gene = gene.clone();
            std::thread::spawn(move || {
                let (status, body) = get(port, "/health");
                assert_eq!(status, 200, "{body}");
                assert!(body.contains("\"ok\""), "{body}");

                let (status, body) = get(port, &format!("/clusters?gene={gene}"));
                assert_eq!(status, 200, "{body}");
                assert!(body.contains("\"total\""), "{body}");
                assert!(body.contains("\"p_names\""), "{body}");

                let id = i as u32 % n_clusters;
                let (status, body) = get(port, &format!("/clusters/{id}"));
                assert_eq!(status, 200, "{body}");
                assert!(body.contains(&format!("\"id\":{id}")), "{body}");

                // /metrics must stay scrapeable under the same load.
                let (status, body) = get(port, "/metrics");
                assert_eq!(status, 200, "{body}");
                assert!(
                    body.contains("# TYPE regcluster_http_requests_total counter"),
                    "{body}"
                );
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread panicked");
    }

    // Error paths: bad parameter, unknown id, unknown path, wrong method.
    let (status, body) = get(port, "/clusters?bogus=1");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("bogus"), "{body}");
    let (status, _) = get(port, &format!("/clusters/{n_clusters}"));
    assert_eq!(status, 404);
    let (status, _) = get(port, "/nope");
    assert_eq!(status, 404);
    {
        let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
        write!(stream, "POST /health HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
    }

    // /metrics: well-formed Prometheus text, counters monotone across two
    // scrapes with traffic in between.
    let scrape1 = scrape_metrics(port);
    assert!(
        scrape1.iter().any(|(s, v)| s
            .starts_with("regcluster_http_requests_total{route=\"/health\"}")
            && *v >= 32.0),
        "32 clients hit /health: {scrape1:?}"
    );
    assert!(
        scrape1.iter().any(|(s, _)| s
            .starts_with("regcluster_http_request_duration_seconds_bucket")
            && s.contains("le=\"+Inf\"")),
        "histogram must expose a +Inf bucket: {scrape1:?}"
    );
    let (status, _) = get(port, "/health");
    assert_eq!(status, 200);
    let scrape2 = scrape_metrics(port);
    for (series, v1) in &scrape1 {
        let v2 = scrape2
            .iter()
            .find(|(s, _)| s == series)
            .unwrap_or_else(|| panic!("series {series} vanished between scrapes"))
            .1;
        assert!(v2 >= *v1, "counter went backwards: {series} {v1} -> {v2}");
    }
    let health_delta = |samples: &[(String, f64)]| {
        samples
            .iter()
            .find(|(s, _)| s.starts_with("regcluster_http_requests_total{route=\"/health\"}"))
            .unwrap()
            .1
    };
    assert!(
        health_delta(&scrape2) > health_delta(&scrape1),
        "the /health hit between scrapes must be visible"
    );

    // Metrics: /stats reflects the traffic above.
    let (status, body) = get(port, "/stats");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"requests_total\""), "{body}");
    assert!(body.contains("\"total_latency_us\""), "{body}");
    assert!(body.contains("\"n_clusters\""), "{body}");
    let total: u64 = body
        .split("\"requests_total\":")
        .nth(1)
        .and_then(|s| s.split(&[',', '}'][..]).next())
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert!(
        total >= 32 * 3,
        "expected ≥ 96 recorded requests, got {total}"
    );

    // Graceful shutdown: all threads join and the socket is released.
    let report = server.shutdown();
    assert!(report.requests > total, "stats request counted too");
    let rebind = TcpListener::bind(("127.0.0.1", port));
    assert!(rebind.is_ok(), "port {port} still held after shutdown");
    assert!(
        TcpStream::connect(("127.0.0.1", port)).is_err() || rebind.is_ok(),
        "server socket must be gone"
    );
}

#[test]
fn request_budget_stops_the_server_on_its_own() {
    let store_path = build_store("budget.rcs");
    let store = Arc::new(ClusterStore::open(&store_path).unwrap());
    let config = ServeConfig {
        port: 0,
        threads: 2,
        max_requests: Some(5),
        ..ServeConfig::default()
    };
    let server = Server::start(store, &config).unwrap();
    let port = server.port();
    for _ in 0..5 {
        let (status, _) = get(port, "/health");
        assert_eq!(status, 200);
    }
    // The fifth request trips the budget; wait() returns without an
    // explicit shutdown call.
    let report = server.wait();
    assert!(report.requests >= 5, "{}", report.requests);
    assert!(TcpListener::bind(("127.0.0.1", port)).is_ok());
}

#[test]
fn overload_is_shed_with_503_and_recovers() {
    let store_path = build_store("shed.rcs");
    let store = Arc::new(ClusterStore::open(&store_path).unwrap());
    let config = ServeConfig {
        port: 0,
        threads: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(store, &config).unwrap();
    let port = server.port();

    // Saturate: open connections that never send a request line. The
    // single worker absorbs one, the queue holds one, and everything
    // beyond that must be shed by the acceptor with an immediate 503.
    let mut stalls = Vec::new();
    let mut shed_seen = 0usize;
    for _ in 0..8 {
        let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_millis(500)))
            .unwrap();
        let mut raw = String::new();
        match stream.read_to_string(&mut raw) {
            Ok(_) if !raw.is_empty() => {
                // A response without a request means the acceptor shed us.
                assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
                assert!(raw.contains("Retry-After: 1"), "{raw}");
                shed_seen += 1;
            }
            // Absorbed (worker or queue): no bytes until we hang up.
            _ => stalls.push(stream),
        }
    }
    assert!(
        shed_seen >= 1,
        "flooding past the capacity-2 pipeline must shed"
    );
    assert!(stalls.len() <= 2, "only worker + queue slot can absorb");

    // Recovery: release the stalled connections; the worker drains them
    // (EOF, nothing counted) and normal service resumes.
    drop(stalls);
    let (status, body) = get(port, "/health");
    assert_eq!(status, 200, "{body}");

    // The shed counter on /metrics saw every 503, and shed connections
    // were never counted as handled requests.
    let samples = scrape_metrics(port);
    let shed_metric = samples
        .iter()
        .find(|(s, _)| s.starts_with("regcluster_http_requests_shed_total"))
        .map(|(_, v)| *v)
        .expect("shed counter must be exported");
    assert!(
        shed_metric >= shed_seen as f64,
        "metrics report {shed_metric} sheds, client saw {shed_seen}"
    );
    let report = server.shutdown();
    assert!(
        report.requests >= 2 && report.requests < 8,
        "shed connections must not count as handled requests: {}",
        report.requests
    );
}

#[test]
fn watcher_hot_swaps_generations_under_concurrent_load() {
    // A generations lineage with two distinguishable generations: 0 holds
    // the full mined set, 1 only its first cluster.
    let dir = std::env::temp_dir().join(format!("regcluster-serve-gens-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let gens = Generations::open(&dir).unwrap();

    let cfg = SyntheticConfig {
        n_genes: 100,
        n_conds: 30,
        n_clusters: 6,
        avg_cluster_dims: 6,
        cluster_gene_frac: 0.06,
        neg_fraction: 0.3,
        plant_gamma: 0.15,
        pattern: PatternKind::ShiftScale,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed: 7,
    };
    let m = generate(&cfg).unwrap().matrix;
    let params = MiningParams::new(4, 4, 0.1, 0.05).unwrap();
    let clusters = mine(&m, &params).unwrap();
    assert!(
        clusters.len() > 1,
        "need ≥ 2 clusters to tell the gens apart"
    );
    let write_gen = |generation: u64, set: &[regcluster_core::RegCluster]| {
        let provenance = StoreProvenance {
            generation,
            ..StoreProvenance::default()
        };
        let w = StoreWriter::create_with_provenance(
            gens.path_for(generation),
            m.gene_names(),
            m.condition_names(),
            &params,
            &provenance,
        )
        .unwrap();
        for c in set {
            w.write_cluster(c).unwrap();
        }
        w.finish().unwrap();
    };
    write_gen(0, &clusters);
    gens.publish(0).unwrap();

    let store = Arc::new(ClusterStore::open(gens.path_for(0)).unwrap());
    let config = ServeConfig {
        port: 0,
        threads: 4,
        watch: Some(dir.clone()),
        watch_poll: std::time::Duration::from_millis(20),
        ..ServeConfig::default()
    };
    let server = Server::start(store, &config).unwrap();
    let port = server.port();

    // 32 clients hammer the server for the whole publish + swap window.
    // Every single request must succeed — the swap may never be visible
    // as an error, only as a changed generation.
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..32)
        .map(|i| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut requests = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let path = match (requests + i) % 3 {
                        0 => "/health",
                        1 => "/clusters/0",
                        _ => "/stats",
                    };
                    let (status, body) = get(port, path);
                    assert_eq!(status, 200, "{path} failed mid-swap: {body}");
                    requests += 1;
                }
                requests
            })
        })
        .collect();

    // Publish generation 1 while the load is running, then wait for the
    // watcher to pick it up (poll interval 20ms; allow a generous 5s).
    std::thread::sleep(std::time::Duration::from_millis(50));
    write_gen(1, &clusters[..1]);
    gens.publish(1).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let (status, body) = get(port, "/stats");
        assert_eq!(status, 200, "{body}");
        if body.contains("\"generation\":1") {
            assert!(body.contains("\"n_clusters\":1"), "{body}");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "watcher never swapped to generation 1: {body}"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    stop.store(true, Ordering::Relaxed);
    let mut total = 0usize;
    for c in clients {
        total += c.join().expect("a client saw a failed request");
    }
    assert!(total >= 32, "every client got at least one response in");

    // The swap counter carries per-generation labels: one cell for the
    // initial load of generation 0, one for the swap to generation 1.
    let samples = scrape_metrics(port);
    for generation in 0..=1 {
        let series = format!("{STORE_SWAPS_METRIC}{{generation=\"{generation}\"}}");
        let v = samples
            .iter()
            .find(|(s, _)| *s == series)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing {series} in {samples:?}"));
        assert_eq!(v, 1.0, "{series}");
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watcher_counts_unreadable_current_and_recovers() {
    // One published generation, then CURRENT is corrupted in place: the
    // watcher must keep serving, count every failed observation on
    // regcluster_store_watch_errors_total, and swap normally once the
    // pointer is healthy again.
    let dir =
        std::env::temp_dir().join(format!("regcluster-serve-watcherr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let gens = Generations::open(&dir).unwrap();

    let cfg = SyntheticConfig {
        n_genes: 100,
        n_conds: 30,
        n_clusters: 6,
        avg_cluster_dims: 6,
        cluster_gene_frac: 0.06,
        neg_fraction: 0.3,
        plant_gamma: 0.15,
        pattern: PatternKind::ShiftScale,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed: 7,
    };
    let m = generate(&cfg).unwrap().matrix;
    let params = MiningParams::new(4, 4, 0.1, 0.05).unwrap();
    let clusters = mine(&m, &params).unwrap();
    assert!(clusters.len() > 1, "need ≥ 2 clusters");
    let write_gen = |generation: u64, set: &[regcluster_core::RegCluster]| {
        let provenance = StoreProvenance {
            generation,
            ..StoreProvenance::default()
        };
        let w = StoreWriter::create_with_provenance(
            gens.path_for(generation),
            m.gene_names(),
            m.condition_names(),
            &params,
            &provenance,
        )
        .unwrap();
        for c in set {
            w.write_cluster(c).unwrap();
        }
        w.finish().unwrap();
    };
    write_gen(0, &clusters);
    gens.publish(0).unwrap();

    let store = Arc::new(ClusterStore::open(gens.path_for(0)).unwrap());
    let config = ServeConfig {
        port: 0,
        threads: 2,
        watch: Some(dir.clone()),
        watch_poll: std::time::Duration::from_millis(10),
        ..ServeConfig::default()
    };
    let server = Server::start(store, &config).unwrap();
    let port = server.port();

    let watch_errors = |samples: &[(String, f64)]| {
        samples
            .iter()
            .find(|(s, _)| s.starts_with(STORE_WATCH_ERRORS_METRIC))
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    assert_eq!(watch_errors(&scrape_metrics(port)), 0.0, "clean start");

    // Corrupt the pointer: not a number, so Generations::current errors.
    std::fs::write(dir.join("CURRENT"), b"not-a-generation\n").unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let (status, _) = get(port, "/health");
        assert_eq!(status, 200, "server must keep serving through the damage");
        if watch_errors(&scrape_metrics(port)) > 0.0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "watch errors were never counted"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // Heal the pointer by publishing generation 1: the watcher recovers
    // and swaps as if nothing happened.
    write_gen(1, &clusters[..1]);
    gens.publish(1).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let (status, body) = get(port, "/stats");
        assert_eq!(status, 200, "{body}");
        if body.contains("\"generation\":1") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "watcher never recovered after CURRENT was healed: {body}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn silent_client_gets_408_not_a_reset() {
    let store_path = build_store("timeout.rcs");
    let store = Arc::new(ClusterStore::open(&store_path).unwrap());
    let config = ServeConfig {
        port: 0,
        threads: 2,
        io_timeout: std::time::Duration::from_millis(200),
        ..ServeConfig::default()
    };
    let server = Server::start(store, &config).unwrap();
    let port = server.port();

    // Connect and say nothing: the read timeout must produce a clean 408,
    // not a dropped connection.
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 408"), "{raw}");

    // The server is still healthy afterwards.
    let (status, body) = get(port, "/health");
    assert_eq!(status, 200, "{body}");
    server.shutdown();
}
