//! In-memory upgrades for stores written by older format versions.
//!
//! A `.rcs` file opened with a header version in
//! `[MIN_SUPPORTED_VERSION, FORMAT_VERSION)` is **not** rewritten on
//! disk; instead its META-section JSON is upgraded here, step by step,
//! until it looks like a current-version document. Each registry entry
//! migrates exactly one version to the next, so reading a v1 store under
//! a v4 build runs three steps in order.
//!
//! Migrations edit the parsed [`Value`] tree in place and must preserve
//! every key they do not understand — unknown keys are forward
//! compatibility (a newer minor writer may have recorded extras), and the
//! property test in `crates/store/tests/roundtrip.rs` pins that they
//! survive an open/re-render cycle untouched.

use serde::Value;

use crate::error::StoreError;
use crate::format::{FORMAT_VERSION, MIN_SUPPORTED_VERSION};

/// One migration step: edits a version-`N` meta object into a
/// version-`N+1` one.
type Migration = fn(&mut Vec<(String, Value)>);

/// v1 → v2: generation provenance. Pre-generational stores are implicitly
/// generation 0, the seed of any [`Generations`](crate::Generations)
/// lineage they are adopted into. Injected only when absent, so a v1
/// writer that somehow recorded the key (forward-written files) wins.
fn v1_to_v2(meta: &mut Vec<(String, Value)>) {
    if !meta.iter().any(|(k, _)| k == "generation") {
        meta.insert(0, ("generation".to_string(), Value::Int(0)));
    }
}

/// The registry. Entry `(from, step)` upgrades version `from` to
/// `from + 1`; entries are contiguous and ascending from
/// [`MIN_SUPPORTED_VERSION`].
const MIGRATIONS: [(u32, Migration); 1] = [(1, v1_to_v2)];

// Every version in [MIN_SUPPORTED_VERSION, FORMAT_VERSION) must have a
// step, or an old store would come out of `upgrade` half-migrated.
const _: () = assert!(MIGRATIONS.len() == (FORMAT_VERSION - MIN_SUPPORTED_VERSION) as usize);

/// Upgrades a meta JSON document written at header version `found` to the
/// current format, in place.
///
/// # Errors
///
/// [`StoreError::Version`] when `found` is outside
/// `[MIN_SUPPORTED_VERSION, FORMAT_VERSION]` (the caller normally checks
/// first), [`StoreError::Metadata`] when the document is not an object.
pub fn upgrade(found: u32, meta: &mut Value) -> Result<(), StoreError> {
    if !(MIN_SUPPORTED_VERSION..=FORMAT_VERSION).contains(&found) {
        return Err(StoreError::Version {
            found,
            supported: FORMAT_VERSION,
        });
    }
    let Value::Object(pairs) = meta else {
        return Err(StoreError::Metadata(
            "meta JSON is not an object; cannot migrate".into(),
        ));
    };
    for (from, step) in MIGRATIONS {
        if from >= found {
            step(pairs);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Value)]) -> Value {
        Value::Object(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn v1_gains_a_zero_generation() {
        let mut meta = obj(&[("min_genes", Value::Int(4))]);
        upgrade(1, &mut meta).unwrap();
        assert_eq!(meta.field("generation"), Ok(&Value::Int(0)));
        // The original keys survive.
        assert_eq!(meta.field("min_genes"), Ok(&Value::Int(4)));
    }

    #[test]
    fn current_version_is_a_no_op() {
        let mut meta = obj(&[("generation", Value::Int(7))]);
        let before = meta.clone();
        upgrade(FORMAT_VERSION, &mut meta).unwrap();
        assert_eq!(meta, before);
    }

    #[test]
    fn an_existing_generation_key_wins() {
        let mut meta = obj(&[("generation", Value::Int(3))]);
        upgrade(1, &mut meta).unwrap();
        assert_eq!(meta.field("generation"), Ok(&Value::Int(3)));
    }

    #[test]
    fn unknown_keys_pass_through_untouched() {
        let mut meta = obj(&[
            ("from_the_future", Value::Str("keep me".into())),
            ("min_genes", Value::Int(4)),
        ]);
        upgrade(1, &mut meta).unwrap();
        assert_eq!(
            meta.field("from_the_future"),
            Ok(&Value::Str("keep me".into()))
        );
    }

    #[test]
    fn out_of_range_versions_are_refused() {
        let mut meta = obj(&[]);
        assert!(matches!(
            upgrade(0, &mut meta),
            Err(StoreError::Version { found: 0, .. })
        ));
        assert!(matches!(
            upgrade(FORMAT_VERSION + 1, &mut meta),
            Err(StoreError::Version { .. })
        ));
    }

    #[test]
    fn non_object_meta_is_a_metadata_error() {
        let mut meta = Value::Array(vec![]);
        assert!(matches!(
            upgrade(1, &mut meta),
            Err(StoreError::Metadata(_))
        ));
    }
}
