//! Scripted multi-node fault harness for the distributed mining cluster.
//!
//! Each scenario is a plain-text script (under `scenarios/`) interpreted
//! against **real processes** of the `regcluster` binary: coordinators,
//! workers and `serve --watch` replicas are spawned, crashed (SIGKILL)
//! and restarted exactly as the script says, and every scenario ends by
//! comparing the published generation byte-for-byte against a
//! single-node golden mine of the same matrix.
//!
//! # Script language
//!
//! One command per line; `#` starts a comment. Names (`c1`, `w1`, …) are
//! script-chosen handles for processes.
//!
//! ```text
//! start coordinator <name> [leases=N] [ttl-ms=N] [workdir=K] [fail=SPEC]
//!                          [port=<prevname>]     # rebind a crashed one's port
//! start worker <name> [coord=<cname>] [workdir=K] [every-secs=F] [fail=SPEC]
//! start replica <name>                 # serve --watch on the shared lineage
//! crash <name>                         # SIGKILL
//! stop <name>                          # POST /shutdown (graceful drain)
//! sleep <ms>
//! await exit <name> ok|fail            # process exits with(out) success
//! await generation <N>                 # lineage CURRENT reaches N
//! await done <K> [coord=<cname>]       # coordinator /status leases_done >= K
//! await swap <replica> <N>             # replica /stats serves generation N
//! await metric <M> >= <N> [coord=<c>]  # coordinator /metrics counter reaches N
//! assert metric <M> ==|>= <N> [coord=<c>]  # counter check, no polling
//! load start <replica> clients=N       # hammer the replica; every request
//! load stop <replica>                  #   must return 200, verified at stop
//! golden <N>                           # gen-<N>.rcs equals the golden's
//! ```
//!
//! Workers restarted with the same `workdir=` key resume their leases
//! from on-disk checkpoints; coordinators restarted with the same key
//! recover already-staged shards. Both are exercised below.

use std::collections::HashMap;
use std::io::{BufReader, Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Mining parameters every node (and the golden) runs under.
const PARAMS: [&str; 8] = [
    "--min-genes",
    "4",
    "--min-conds",
    "4",
    "--gamma",
    "0.1",
    "--epsilon",
    "0.5",
];

/// How long `await` commands poll before failing the scenario.
const AWAIT_TIMEOUT: Duration = Duration::from_secs(120);

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_regcluster"))
}

/// Shared fixture: the matrix file and a two-generation single-node
/// golden lineage, built once for every scenario in this binary.
struct Fixture {
    matrix: PathBuf,
    golden: PathBuf,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("regcluster-harness-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let matrix = dir.join("matrix.tsv");
        let out = bin()
            .args([
                "generate",
                "--output",
                matrix.to_str().unwrap(),
                "--genes",
                "320",
                "--conds",
                "12",
                "--clusters",
                "5",
                "--seed",
                "11",
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        // Golden lineage: the same mine twice, publishing generations 0
        // and 1 — what any number of distributed rounds must reproduce.
        let golden = dir.join("golden");
        std::fs::create_dir_all(&golden).unwrap();
        for _ in 0..2 {
            let out = bin()
                .args(["mine", "--input", matrix.to_str().unwrap()])
                .args(PARAMS)
                .args(["--store", golden.to_str().unwrap()])
                .output()
                .unwrap();
            assert!(
                out.status.success(),
                "{}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
        Fixture { matrix, golden }
    })
}

fn free_port() -> u16 {
    TcpListener::bind(("127.0.0.1", 0))
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

/// One blocking HTTP GET against a local port; returns (status, body), or
/// `None` when the peer is unreachable.
fn get(port: u16, path: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n"
    )
    .ok()?;
    let mut raw = String::new();
    BufReader::new(stream).read_to_string(&mut raw).ok()?;
    let status: u16 = raw.split_whitespace().nth(1)?.parse().ok()?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string())?;
    Some((status, body))
}

/// One blocking empty-bodied HTTP POST against a local port; returns
/// (status, body), or `None` when the peer is unreachable.
fn post(port: u16, path: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: h\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    )
    .ok()?;
    let mut raw = String::new();
    BufReader::new(stream).read_to_string(&mut raw).ok()?;
    let status: u16 = raw.split_whitespace().nth(1)?.parse().ok()?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string())?;
    Some((status, body))
}

/// A running load generator against a replica: N clients asserting that
/// every single request — including across a hot-swap — returns 200.
struct LoadGen {
    stop: Arc<AtomicBool>,
    clients: Vec<std::thread::JoinHandle<usize>>,
}

struct Proc {
    child: Child,
    port: u16,
}

struct Harness {
    name: &'static str,
    dir: PathBuf,
    gens: PathBuf,
    procs: HashMap<String, Proc>,
    loads: HashMap<String, LoadGen>,
    /// Every port ever assigned, surviving crashes — so a restarted
    /// coordinator can rebind its predecessor's address (`port=<name>`)
    /// and workers pointed at the old incarnation reconnect untouched.
    ports: HashMap<String, u16>,
    last_coordinator: Option<String>,
}

impl Harness {
    fn new(name: &'static str) -> Harness {
        let dir =
            std::env::temp_dir().join(format!("regcluster-harness-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let gens = dir.join("gens");
        std::fs::create_dir_all(&gens).unwrap();
        Harness {
            name,
            dir,
            gens,
            procs: HashMap::new(),
            loads: HashMap::new(),
            ports: HashMap::new(),
            last_coordinator: None,
        }
    }

    fn run(mut self, script: &str) {
        for (lineno, raw) in script.lines().enumerate() {
            let line = raw.split('#').next().unwrap().trim();
            if line.is_empty() {
                continue;
            }
            let words: Vec<&str> = line.split_whitespace().collect();
            self.step(&words)
                .unwrap_or_else(|e| panic!("[{}] line {}: {raw:?}: {e}", self.name, lineno + 1));
        }
        // Anything still running at the end of the script is torn down.
        for (_, p) in self.procs.iter_mut() {
            let _ = p.child.kill();
        }
        for (_, p) in self.procs.iter_mut() {
            let _ = p.child.wait();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }

    fn step(&mut self, words: &[&str]) -> Result<(), String> {
        match words {
            ["start", "coordinator", name, opts @ ..] => self.start_coordinator(name, opts),
            ["start", "worker", name, opts @ ..] => self.start_worker(name, opts),
            ["start", "replica", name] => self.start_replica(name),
            ["crash", name] => self.crash(name),
            ["stop", name] => self.stop(name),
            ["sleep", ms] => {
                std::thread::sleep(Duration::from_millis(ms.parse().map_err(|_| "bad ms")?));
                Ok(())
            }
            ["await", "exit", name, expect] => self.await_exit(name, expect),
            ["await", "generation", n] => {
                self.await_generation(n.parse().map_err(|_| "bad generation")?)
            }
            ["await", "done", k, opts @ ..] => {
                self.await_done(k.parse().map_err(|_| "bad count")?, opts)
            }
            ["await", "swap", name, n] => self.await_swap(name, n),
            ["await", "metric", metric, ">=", n, opts @ ..] => {
                self.await_metric(metric, n.parse().map_err(|_| "bad count")?, opts)
            }
            ["assert", "metric", metric, op, n, opts @ ..] => {
                self.assert_metric(metric, op, n.parse().map_err(|_| "bad count")?, opts)
            }
            ["load", "start", name, opts @ ..] => self.load_start(name, opts),
            ["load", "stop", name] => self.load_stop(name),
            ["golden", n] => self.golden(n.parse().map_err(|_| "bad generation")?),
            other => Err(format!("unknown command {other:?}")),
        }
    }

    fn opt<'a>(opts: &[&'a str], key: &str) -> Option<&'a str> {
        opts.iter()
            .find_map(|o| o.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
    }

    fn start_coordinator(&mut self, name: &str, opts: &[&str]) -> Result<(), String> {
        let fx = fixture();
        let port = match Self::opt(opts, "port") {
            Some(prev) => *self
                .ports
                .get(prev)
                .ok_or_else(|| format!("no prior process named {prev:?}"))?,
            None => free_port(),
        };
        let workdir = self.dir.join(Self::opt(opts, "workdir").unwrap_or("coord"));
        let mut cmd = bin();
        cmd.args(["coordinator", "--input"])
            .arg(&fx.matrix)
            .arg("--store")
            .arg(&self.gens)
            .arg("--work-dir")
            .arg(&workdir)
            .args(PARAMS)
            .args(["--port", &port.to_string()])
            .args(["--leases", Self::opt(opts, "leases").unwrap_or("6")])
            .args([
                "--lease-ttl-ms",
                Self::opt(opts, "ttl-ms").unwrap_or("8000"),
            ])
            .arg("--linger");
        if let Some(spec) = Self::opt(opts, "fail") {
            cmd.env("FAILPOINTS", spec);
        }
        self.spawn(name, cmd, port)?;
        self.last_coordinator = Some(name.to_string());
        Ok(())
    }

    fn start_worker(&mut self, name: &str, opts: &[&str]) -> Result<(), String> {
        let fx = fixture();
        let coord = match Self::opt(opts, "coord") {
            Some(c) => c.to_string(),
            None => self
                .last_coordinator
                .clone()
                .ok_or("no coordinator started yet")?,
        };
        let coord_port = self
            .procs
            .get(&coord)
            .ok_or_else(|| format!("unknown coordinator {coord:?}"))?
            .port;
        let workdir = self.dir.join(Self::opt(opts, "workdir").unwrap_or(name));
        let mut cmd = bin();
        cmd.args(["worker", "--input"])
            .arg(&fx.matrix)
            .args(["--coordinator", &format!("127.0.0.1:{coord_port}")])
            .arg("--work-dir")
            .arg(&workdir)
            .args(["--worker-id", name])
            .args(["--poll-ms", "100"])
            .args([
                "--checkpoint-every-secs",
                Self::opt(opts, "every-secs").unwrap_or("0.2"),
            ]);
        if let Some(spec) = Self::opt(opts, "fail") {
            cmd.env("FAILPOINTS", spec);
        }
        self.spawn(name, cmd, 0)
    }

    fn start_replica(&mut self, name: &str) -> Result<(), String> {
        let port = free_port();
        let mut cmd = bin();
        cmd.arg("serve")
            .arg("--watch")
            .arg(&self.gens)
            .args(["--port", &port.to_string()])
            .args(["--threads", "2"])
            .args(["--watch-interval-ms", "25"]);
        self.spawn(name, cmd, port)?;
        // The socket is up once /health answers.
        let deadline = Instant::now() + AWAIT_TIMEOUT;
        while get(port, "/health").is_none() {
            if Instant::now() > deadline {
                return Err("replica never came up".into());
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        Ok(())
    }

    fn spawn(&mut self, name: &str, mut cmd: Command, port: u16) -> Result<(), String> {
        if self.procs.contains_key(name) {
            return Err(format!("{name:?} is already running"));
        }
        let child = cmd
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawn failed: {e}"))?;
        self.ports.insert(name.to_string(), port);
        self.procs.insert(name.to_string(), Proc { child, port });
        Ok(())
    }

    fn crash(&mut self, name: &str) -> Result<(), String> {
        let p = self
            .procs
            .get_mut(name)
            .ok_or_else(|| format!("unknown process {name:?}"))?;
        p.child.kill().map_err(|e| format!("kill failed: {e}"))?;
        let _ = p.child.wait();
        self.procs.remove(name);
        Ok(())
    }

    fn await_exit(&mut self, name: &str, expect: &str) -> Result<(), String> {
        let p = self
            .procs
            .get_mut(name)
            .ok_or_else(|| format!("unknown process {name:?}"))?;
        let deadline = Instant::now() + AWAIT_TIMEOUT;
        let status = loop {
            match p.child.try_wait().map_err(|e| e.to_string())? {
                Some(status) => break status,
                None if Instant::now() > deadline => {
                    return Err(format!("{name:?} did not exit in time"));
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        };
        self.procs.remove(name);
        match (expect, status.success()) {
            ("ok", true) | ("fail", false) => Ok(()),
            _ => Err(format!("{name:?} exited with {status}, expected {expect}")),
        }
    }

    fn await_generation(&self, n: u64) -> Result<(), String> {
        let gens = regcluster_store::Generations::open(&self.gens).map_err(|e| e.to_string())?;
        let deadline = Instant::now() + AWAIT_TIMEOUT;
        loop {
            if let Ok(Some(current)) = gens.current() {
                if current >= n {
                    return Ok(());
                }
            }
            if Instant::now() > deadline {
                return Err(format!("generation {n} was never published"));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Resolve `coord=<name>` (default: the most recently started
    /// coordinator) to its control-plane port.
    fn coord_port(&self, opts: &[&str]) -> Result<u16, String> {
        let coord = match Self::opt(opts, "coord") {
            Some(c) => c.to_string(),
            None => self
                .last_coordinator
                .clone()
                .ok_or("no coordinator started yet")?,
        };
        Ok(self
            .procs
            .get(&coord)
            .ok_or_else(|| format!("unknown coordinator {coord:?}"))?
            .port)
    }

    /// Scrape one label-free counter off a coordinator's `/metrics` page.
    fn metric_value(port: u16, metric: &str) -> Option<u64> {
        let (status, body) = get(port, "/metrics")?;
        if status != 200 {
            return None;
        }
        body.lines().find_map(|line| {
            line.strip_prefix(metric)
                .and_then(|rest| rest.trim().parse::<f64>().ok())
                .map(|v| v as u64)
        })
    }

    /// Graceful drain: POST /shutdown and leave the process running so the
    /// script can `await exit <name> ok` on it.
    fn stop(&mut self, name: &str) -> Result<(), String> {
        let port = self
            .procs
            .get(name)
            .ok_or_else(|| format!("unknown process {name:?}"))?
            .port;
        match post(port, "/shutdown") {
            Some((200, _)) => Ok(()),
            other => Err(format!("/shutdown failed: {other:?}")),
        }
    }

    fn await_metric(&self, metric: &str, n: u64, opts: &[&str]) -> Result<(), String> {
        let port = self.coord_port(opts)?;
        let deadline = Instant::now() + AWAIT_TIMEOUT;
        loop {
            if let Some(v) = Self::metric_value(port, metric) {
                if v >= n {
                    return Ok(());
                }
            }
            if Instant::now() > deadline {
                return Err(format!("{metric} never reached {n}"));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    fn assert_metric(&self, metric: &str, op: &str, n: u64, opts: &[&str]) -> Result<(), String> {
        let port = self.coord_port(opts)?;
        let v = Self::metric_value(port, metric)
            .ok_or_else(|| format!("{metric} is not exported by the coordinator"))?;
        let pass = match op {
            "==" => v == n,
            ">=" => v >= n,
            other => return Err(format!("unknown comparison {other:?}")),
        };
        if pass {
            Ok(())
        } else {
            Err(format!("{metric} is {v}, expected {op} {n}"))
        }
    }

    fn await_done(&self, k: u64, opts: &[&str]) -> Result<(), String> {
        let port = self.coord_port(opts)?;
        let deadline = Instant::now() + AWAIT_TIMEOUT;
        loop {
            if let Some((200, body)) = get(port, "/status") {
                let done = body
                    .split("\"leases_done\":")
                    .nth(1)
                    .and_then(|r| r.split(|c: char| !c.is_ascii_digit()).next())
                    .and_then(|d| d.parse::<u64>().ok())
                    .ok_or_else(|| format!("unparsable /status: {body}"))?;
                if done >= k {
                    return Ok(());
                }
            }
            if Instant::now() > deadline {
                return Err(format!("coordinator never reached {k} done leases"));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    fn await_swap(&self, name: &str, n: &str) -> Result<(), String> {
        let port = self
            .procs
            .get(name)
            .ok_or_else(|| format!("unknown replica {name:?}"))?
            .port;
        let needle = format!("\"generation\":{n}");
        let deadline = Instant::now() + AWAIT_TIMEOUT;
        loop {
            match get(port, "/stats") {
                Some((200, body)) if body.contains(&needle) => return Ok(()),
                Some((200, _)) => {}
                other => return Err(format!("replica /stats failed: {other:?}")),
            }
            if Instant::now() > deadline {
                return Err(format!("replica never swapped to generation {n}"));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    fn load_start(&mut self, name: &str, opts: &[&str]) -> Result<(), String> {
        let port = self
            .procs
            .get(name)
            .ok_or_else(|| format!("unknown replica {name:?}"))?
            .port;
        let n: usize = Self::opt(opts, "clients")
            .unwrap_or("4")
            .parse()
            .map_err(|_| "bad clients")?;
        let stop = Arc::new(AtomicBool::new(false));
        let clients = (0..n)
            .map(|i| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut requests = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let path = if (requests + i).is_multiple_of(2) {
                            "/health"
                        } else {
                            "/stats"
                        };
                        let (status, body) =
                            get(port, path).expect("replica dropped a connection under load");
                        assert_eq!(status, 200, "{path} failed mid-swap: {body}");
                        requests += 1;
                    }
                    requests
                })
            })
            .collect();
        self.loads
            .insert(name.to_string(), LoadGen { stop, clients });
        Ok(())
    }

    fn load_stop(&mut self, name: &str) -> Result<(), String> {
        let load = self
            .loads
            .remove(name)
            .ok_or_else(|| format!("no load running against {name:?}"))?;
        load.stop.store(true, Ordering::Relaxed);
        let mut total = 0;
        for c in load.clients {
            total += c
                .join()
                .map_err(|_| "a load client saw a failed request".to_string())?;
        }
        if total == 0 {
            return Err("load generator made no requests".into());
        }
        Ok(())
    }

    /// The golden assert: the published generation must be byte-identical
    /// to the single-node golden's same generation.
    fn golden(&self, n: u64) -> Result<(), String> {
        let fx = fixture();
        let name = format!("gen-{n}.rcs");
        let got = read(&self.gens.join(&name))?;
        let want = read(&fx.golden.join(&name))?;
        if got != want {
            return Err(format!(
                "{name} differs from the single-node golden ({} vs {} bytes)",
                got.len(),
                want.len()
            ));
        }
        Ok(())
    }
}

fn read(path: &Path) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))
}

#[test]
fn smoke_two_workers_match_single_node_golden() {
    Harness::new("smoke").run(include_str!("scenarios/smoke.txt"));
}

#[test]
fn worker_crash_reassigns_and_resumes() {
    Harness::new("worker-crash").run(include_str!("scenarios/worker_crash.txt"));
}

#[test]
fn coordinator_restart_recovers_staged_shards() {
    Harness::new("coord-restart").run(include_str!("scenarios/coordinator_restart.txt"));
}

#[test]
fn torn_shard_upload_never_corrupts_the_generation() {
    Harness::new("torn-upload").run(include_str!("scenarios/torn_upload.txt"));
}

#[test]
fn replica_hot_swaps_under_load_with_zero_failures() {
    Harness::new("replica-swap").run(include_str!("scenarios/replica_swap.txt"));
}

#[test]
fn coordinator_kill_mid_grant_replays_journal_without_fencing() {
    Harness::new("kill-journal").run(include_str!("scenarios/coordinator_kill_journal.txt"));
}

#[test]
fn renew_storm_survives_a_delayed_link() {
    Harness::new("renew-delay").run(include_str!("scenarios/renew_storm_delay.txt"));
}

#[test]
fn garbled_upload_response_is_retried_idempotently() {
    Harness::new("garbled-upload").run(include_str!("scenarios/garbled_upload_response.txt"));
}
