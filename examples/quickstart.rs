//! Quickstart: reproduce the paper's running example end to end.
//!
//! Loads Table 1 (three genes × ten conditions), prints each gene's
//! `RWave^γ` model (Figure 3), mines with the paper's Figure 6 parameters,
//! and prints the unique reg-cluster — the chain `c7 ↰ c9 ↰ c5 ↰ c1 ↰ c3`
//! with p-members `{g1, g3}` and negatively co-regulated n-member `{g2}`.
//!
//! Run with `cargo run --example quickstart`.

use regcluster::core::miner::Miner;
use regcluster::core::{mine, MiningParams};
use regcluster::datagen::{figure1_patterns, running_example};

fn main() {
    // Figure 1: the pattern families prior models capture.
    let f1 = figure1_patterns();
    println!("Figure 1 patterns (P1 = P2 − 5 = P3 − 15 = P4 = P5/1.5 = P6/3):");
    for (g, row) in f1.rows() {
        println!("  {}: {:?}", f1.gene_name(g), row);
    }
    println!(
        "pCluster would need a log transform for P5/P6, Tricluster an exp\n\
         transform for P2/P3 — neither handles a mixture. The reg-cluster\n\
         model covers all six profiles natively.\n"
    );

    // Table 1, the running dataset.
    let matrix = running_example();
    println!(
        "Running dataset (Table 1): {} genes × {} conditions",
        matrix.n_genes(),
        matrix.n_conditions()
    );
    for (g, row) in matrix.rows() {
        println!("  {}: {:?}", matrix.gene_name(g), row);
    }

    // Figure 3: the RWave^0.15 models.
    let params = MiningParams::new(3, 5, 0.15, 0.1).expect("paper parameters are valid");
    let miner = Miner::new(&matrix, &params).expect("valid parameters");
    println!("\nRWave^0.15 models (Figure 3):");
    for (g, model) in miner.models().iter().enumerate() {
        let order: Vec<&str> = (0..model.len())
            .map(|r| matrix.condition_name(model.cond_at(r)))
            .collect();
        let pointers: Vec<String> = model
            .pointers()
            .iter()
            .map(|p| {
                format!(
                    "{} ↰ {}",
                    matrix.condition_name(model.cond_at(p.lo as usize)),
                    matrix.condition_name(model.cond_at(p.hi as usize))
                )
            })
            .collect();
        println!(
            "  {} (γ_i = {:.1}): order [{}], pointers [{}]",
            matrix.gene_name(g),
            model.gamma(),
            order.join(" ≤ "),
            pointers.join(", ")
        );
    }

    // Mine with the Figure 6 parameters.
    let clusters = mine(&matrix, &params).expect("mining succeeds");
    println!("\nMining with MinG = 3, MinC = 5, γ = 0.15, ε = 0.1:");
    for c in &clusters {
        println!(
            "  reg-cluster: chain {}, p-members {:?}, n-members {:?}",
            c.regulation_chain().display_with(matrix.condition_names()),
            c.p_members
                .iter()
                .map(|&g| matrix.gene_name(g))
                .collect::<Vec<_>>(),
            c.n_members
                .iter()
                .map(|&g| matrix.gene_name(g))
                .collect::<Vec<_>>(),
        );
        c.validate(&matrix, &params)
            .expect("output satisfies Definition 3.2");
    }
    assert_eq!(
        clusters.len(),
        1,
        "the running example has exactly one reg-cluster"
    );
    println!("\n(g2 is negatively co-regulated with g1 and g3: d2 = −d1 + 30 = −2.5·d3 + 35.)");
}
