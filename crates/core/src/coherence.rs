//! Shifting-and-scaling coherence (§3.2 of the paper).
//!
//! Lemma 3.2 states that profiles `d_i` and `d_j` over an ordered condition
//! set `Y = {c_1, …, c_n}` are related by `d_i = s1 · d_j + s2` **iff** all
//! their adjacent-step ratios relative to the baseline step `(c_1, c_2)`
//! coincide. The ratio is the coherence score
//!
//! ```text
//! H(i, c1, c2, ck, ck+1) = (d_i[ck+1] − d_i[ck]) / (d_i[c2] − d_i[c1])   (Eq. 7)
//! ```
//!
//! A reg-cluster allows the scores of its member genes to spread by at most
//! `ε` at every step (Definition 3.2(2)). The miner enforces this with a
//! sliding window over genes sorted by score: each maximal window of spread
//! `≤ ε` and length `≥ MinG` forms a validated gene subset (§4, step 5).

/// The coherence score of Equation 7 for one gene.
///
/// `baseline` is the expression difference over the chain's first two
/// conditions `(d[c2] − d[c1])`, `step` the difference over the adjacent
/// pair under test `(d[ck+1] − d[ck])`. For an n-member (inverted chain)
/// both differences flip sign, leaving the score unchanged — which is what
/// lets positively and negatively co-regulated genes share one window.
///
/// # Panics
///
/// Panics (debug) on a zero baseline; the miner guarantees the baseline pair
/// is regulated, so its difference exceeds `γ_i ≥ 0`.
#[inline]
pub fn h_score(step: f64, baseline: f64) -> f64 {
    debug_assert!(
        baseline != 0.0,
        "baseline pair must be regulated (non-zero difference)"
    );
    step / baseline
}

/// Computes the full H-score series of a gene profile along an ordered
/// condition chain: one score per adjacent pair, including the trivial
/// leading `1.0` of the baseline pair itself.
///
/// Convenience for tests, validation and reporting; the miner computes
/// scores incrementally.
///
/// # Panics
///
/// Panics if the chain has fewer than two conditions or the baseline
/// difference is zero.
pub fn h_series(profile: &[f64], chain: &[usize]) -> Vec<f64> {
    assert!(chain.len() >= 2, "a chain needs at least two conditions");
    let baseline = profile[chain[1]] - profile[chain[0]];
    assert!(baseline != 0.0, "baseline pair must have distinct values");
    chain
        .windows(2)
        .map(|w| h_score(profile[w[1]] - profile[w[0]], baseline))
        .collect()
}

/// A maximal window over score-sorted genes: the half-open index range
/// `[start, end)` into the sorted slice.
pub type Window = (usize, usize);

/// Finds all maximal windows of `sorted_scores` whose spread
/// (`max − min`) is at most `epsilon` and whose length is at least
/// `min_len`.
///
/// `sorted_scores` must be sorted ascending (checked in debug builds).
/// Windows are returned left to right; they may overlap, mirroring the
/// paper's sliding-window partitioning whose validated gene subsets `X''`
/// "may overlap".
///
/// ```
/// use regcluster_core::coherence::maximal_windows;
///
/// let scores = [0.0, 0.4, 0.8, 1.2];
/// // Spread budget 0.8: two maximal, overlapping windows.
/// assert_eq!(maximal_windows(&scores, 0.8, 2), vec![(0, 3), (1, 4)]);
/// // Nothing coherent enough for four genes at once.
/// assert!(maximal_windows(&scores, 0.8, 4).is_empty());
/// ```
pub fn maximal_windows(sorted_scores: &[f64], epsilon: f64, min_len: usize) -> Vec<Window> {
    let mut out = Vec::new();
    maximal_windows_into(sorted_scores, epsilon, min_len, &mut out);
    out
}

/// Like [`maximal_windows`], writing the windows into `out` (cleared first,
/// capacity retained) so steady-state callers such as the miner's hot path
/// allocate nothing.
pub fn maximal_windows_into(
    sorted_scores: &[f64],
    epsilon: f64,
    min_len: usize,
    out: &mut Vec<Window>,
) {
    debug_assert!(
        sorted_scores.windows(2).all(|w| w[0] <= w[1]),
        "scores must be sorted ascending"
    );
    out.clear();
    let n = sorted_scores.len();
    // A negative (or NaN) epsilon admits no window at all — the extension
    // test fails even on a single score — and the jump search below relies
    // on `ε ≥ 0`, so bail out exactly as a start-by-start scan would.
    if n == 0 || min_len == 0 || min_len > n || epsilon.is_nan() || epsilon < 0.0 {
        return;
    }
    // Chunked fast-forward width for the right-edge advance: because the
    // scores are sorted, the window predicate is monotone in `end`, so if
    // the last score of a block passes, every score before it does too —
    // the block test is exactly the scalar test on that element, and the
    // final `end` is identical to the one-by-one scan's.
    const LANES: usize = 8;
    let mut start = 0usize;
    let mut end = 0usize;
    loop {
        while end + LANES <= n && sorted_scores[end + LANES - 1] - sorted_scores[start] <= epsilon {
            end += LANES;
        }
        while end < n && sorted_scores[end] - sorted_scores[start] <= epsilon {
            end += 1;
        }
        // The window [start, end) is maximal to the right by construction
        // and maximal to the left because `start` is only ever placed where
        // the right edge just advanced (or at 0).
        if end - start >= min_len {
            out.push((start, end));
        }
        if end == n {
            // Every later window is a suffix of this one; none can be
            // maximal.
            return;
        }
        // Jump `start` to the next maximal-window position: the first index
        // whose window extends past `end`. Intermediate starts leave `end`
        // unchanged — their windows sit inside the one just emitted — which
        // is exactly the `prev_end < end` test a start-by-start scan would
        // apply, so the emitted sequence is identical. The predicate
        // `sorted_scores[end] - sorted_scores[i] <= epsilon` is the scan's
        // own extension test, monotone in `i` because IEEE subtraction is
        // monotone in the subtrahend; it holds at `i = end` (`0 ≤ ε`), so
        // gallop from `start + 1` toward `end`, then binary-search the
        // bracket — O(log gap) instead of O(gap), and one probe in the
        // dense case where every start advances the edge.
        let next = |i: usize| sorted_scores[end] - sorted_scores[i] <= epsilon;
        start = if next(start + 1) {
            start + 1
        } else {
            let mut step = 1usize;
            let mut lo = start + 1; // next(lo) is false
            while lo + step < end && !next(lo + step) {
                lo += step;
                step *= 2;
            }
            let mut hi = (lo + step).min(end); // next(hi) is true
            while lo + 1 < hi {
                let mid = lo + (hi - lo) / 2;
                if next(mid) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            hi
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_series_of_running_example() {
        // Figure 2: all three genes share scores [1.0, 0.5, 1.0, 0.5] along
        // the chain c7, c9, c5, c1, c3 (indices 6, 8, 4, 0, 2).
        let chain = [6usize, 8, 4, 0, 2];
        let g1 = [10.0, -14.5, 15.0, 10.5, 0.0, 14.5, -15.0, 0.0, -5.0, -5.0];
        let g2 = [20.0, 15.0, 15.0, 43.5, 30.0, 44.0, 45.0, 43.0, 35.0, 20.0];
        let g3 = [6.0, -3.8, 8.0, 6.2, 2.0, 7.8, -4.0, 2.0, 0.0, 0.0];
        for g in [&g1[..], &g2[..], &g3[..]] {
            let h = h_series(g, &chain);
            let expect = [1.0, 0.5, 1.0, 0.5];
            assert_eq!(h.len(), 4);
            for (a, b) in h.iter().zip(expect.iter()) {
                assert!((a - b).abs() < 1e-12, "{h:?}");
            }
        }
    }

    #[test]
    fn h_scores_of_figure_4_outlier() {
        // Projection on c2, c10, c8: H(1) = H(3) = 0.5263…, H(2) = 4.6.
        let g1 = [10.0, -14.5, 15.0, 10.5, 0.0, 14.5, -15.0, 0.0, -5.0, -5.0];
        let g2 = [20.0, 15.0, 15.0, 43.5, 30.0, 44.0, 45.0, 43.0, 35.0, 20.0];
        let g3 = [6.0, -3.8, 8.0, 6.2, 2.0, 7.8, -4.0, 2.0, 0.0, 0.0];
        let chain = [1usize, 9, 7];
        let h1 = h_series(&g1, &chain)[1];
        let h2 = h_series(&g2, &chain)[1];
        let h3 = h_series(&g3, &chain)[1];
        assert!((h1 - 5.0 / 9.5).abs() < 1e-12);
        assert!((h3 - 2.0 / 3.8).abs() < 1e-12);
        assert!((h2 - 4.6).abs() < 1e-12);
        assert!((h1 - 0.5263).abs() < 1e-3);
        assert!((h1 - h3).abs() < 1e-12, "g1 and g3 agree exactly");
    }

    #[test]
    fn h_score_sign_invariance_for_inverted_chains() {
        // Negating a profile (perfect negative correlation) leaves the score
        // unchanged because both step and baseline flip sign.
        assert_eq!(h_score(2.0, 4.0), h_score(-2.0, -4.0));
    }

    #[test]
    fn windows_basic() {
        let scores = [0.0, 0.05, 0.1, 1.0, 1.02, 1.04, 1.06];
        let w = maximal_windows(&scores, 0.1, 2);
        assert_eq!(w, vec![(0, 3), (3, 7)]);
    }

    #[test]
    fn windows_overlap() {
        let scores = [0.0, 0.4, 0.8, 1.2];
        let w = maximal_windows(&scores, 0.8, 2);
        // [0,0.4,0.8] and [0.4,0.8,1.2] overlap and are both maximal.
        assert_eq!(w, vec![(0, 3), (1, 4)]);
    }

    #[test]
    fn windows_respect_min_len() {
        let scores = [0.0, 1.0, 2.0, 2.05];
        assert!(maximal_windows(&scores, 0.1, 3).is_empty());
        assert_eq!(maximal_windows(&scores, 0.1, 2), vec![(2, 4)]);
    }

    #[test]
    fn window_covering_everything_is_unique() {
        let scores = [1.0, 1.1, 1.2];
        assert_eq!(maximal_windows(&scores, 10.0, 1), vec![(0, 3)]);
    }

    #[test]
    fn zero_epsilon_groups_exact_ties() {
        let scores = [0.5, 0.5, 0.5, 0.7, 0.7];
        let w = maximal_windows(&scores, 0.0, 2);
        assert_eq!(w, vec![(0, 3), (3, 5)]);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(maximal_windows(&[], 0.1, 1).is_empty());
        assert!(maximal_windows(&[1.0], 0.1, 2).is_empty());
        assert_eq!(maximal_windows(&[1.0], 0.1, 1), vec![(0, 1)]);
        assert!(maximal_windows(&[1.0, 2.0], 0.5, 0).is_empty());
    }

    #[test]
    fn singleton_windows_between_distant_scores() {
        let scores = [0.0, 10.0, 20.0];
        assert_eq!(
            maximal_windows(&scores, 1.0, 1),
            vec![(0, 1), (1, 2), (2, 3)]
        );
    }

    #[test]
    fn all_windows_are_valid_and_maximal_property() {
        // Deterministic mini-fuzz across several configurations.
        let cases: Vec<(Vec<f64>, f64)> = vec![
            (vec![0.0, 0.1, 0.2, 0.3, 0.4], 0.15),
            (vec![0.0, 0.0, 0.0, 5.0], 0.0),
            (vec![-3.0, -1.0, 0.0, 0.5, 0.6, 9.0], 1.0),
        ];
        for (scores, eps) in cases {
            let ws = maximal_windows(&scores, eps, 1);
            for &(s, e) in &ws {
                assert!(scores[e - 1] - scores[s] <= eps);
                if s > 0 {
                    assert!(scores[e - 1] - scores[s - 1] > eps, "extensible left");
                }
                if e < scores.len() {
                    assert!(scores[e] - scores[s] > eps, "extensible right");
                }
            }
            // Every index is covered by at least one window when min_len = 1.
            for i in 0..scores.len() {
                assert!(
                    ws.iter().any(|&(s, e)| s <= i && i < e),
                    "index {i} uncovered"
                );
            }
        }
    }
}
