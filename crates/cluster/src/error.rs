//! Error type shared by the coordinator and worker runtimes.

use std::fmt;

use regcluster_core::CoreError;
use regcluster_matrix::MatrixError;
use regcluster_store::StoreError;

/// Anything that can go wrong while coordinating or mining in a cluster.
#[derive(Debug)]
pub enum ClusterError {
    /// Socket / filesystem failure.
    Io(std::io::Error),
    /// Input matrix unreadable or malformed.
    Matrix(MatrixError),
    /// Mining-engine failure.
    Core(CoreError),
    /// Shard or generation store failure.
    Store(StoreError),
    /// A malformed or incompatible wire message, or a protocol-level
    /// refusal that the caller cannot retry away (e.g. a params mismatch
    /// between worker and coordinator).
    Protocol(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Io(e) => write!(f, "i/o error: {e}"),
            ClusterError::Matrix(e) => write!(f, "matrix error: {e}"),
            ClusterError::Core(e) => write!(f, "mining error: {e}"),
            ClusterError::Store(e) => write!(f, "store error: {e}"),
            ClusterError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<std::io::Error> for ClusterError {
    fn from(e: std::io::Error) -> Self {
        ClusterError::Io(e)
    }
}

impl From<MatrixError> for ClusterError {
    fn from(e: MatrixError) -> Self {
        ClusterError::Matrix(e)
    }
}

impl From<CoreError> for ClusterError {
    fn from(e: CoreError) -> Self {
        ClusterError::Core(e)
    }
}

impl From<StoreError> for ClusterError {
    fn from(e: StoreError) -> Self {
        ClusterError::Store(e)
    }
}

impl From<serde_json::Error> for ClusterError {
    fn from(e: serde_json::Error) -> Self {
        ClusterError::Protocol(e.to_string())
    }
}
