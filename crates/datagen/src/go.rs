//! Synthetic Gene Ontology annotation database.
//!
//! The paper evaluates biological significance with the yeast genome GO Term
//! Finder (Table 2), an online service that reports hypergeometric
//! enrichment p-values of GO terms within a gene cluster. That service (and
//! the curated yeast annotations behind it) are not available offline, so we
//! model the same structure: a population of genes, a set of terms per GO
//! category, and for each term the list of annotated genes. The enrichment
//! statistic itself lives in `regcluster-eval::go`.

use serde::{Deserialize, Serialize};

use regcluster_matrix::GeneId;

/// The three GO categories reported in Table 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GoCategory {
    /// Biological process (e.g. "DNA replication").
    Process,
    /// Molecular function (e.g. "helicase activity").
    Function,
    /// Cellular component (e.g. "replication fork").
    Component,
}

impl GoCategory {
    /// All categories, in the paper's column order.
    pub const ALL: [GoCategory; 3] = [
        GoCategory::Process,
        GoCategory::Function,
        GoCategory::Component,
    ];
}

impl std::fmt::Display for GoCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GoCategory::Process => write!(f, "Process"),
            GoCategory::Function => write!(f, "Function"),
            GoCategory::Component => write!(f, "Cellular Component"),
        }
    }
}

/// One GO term and the genes annotated with it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoTerm {
    /// Identifier, e.g. `GO:0006260`.
    pub id: String,
    /// Human-readable name.
    pub name: String,
    /// Category of the term.
    pub category: GoCategory,
    /// Annotated genes, sorted by id.
    pub genes: Vec<GeneId>,
}

/// A full annotation database over a gene population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoDatabase {
    /// Size of the gene population (the matrix's gene count).
    pub n_genes: usize,
    /// All terms.
    pub terms: Vec<GoTerm>,
}

impl GoDatabase {
    /// Creates an empty database over `n_genes` genes.
    pub fn new(n_genes: usize) -> Self {
        Self {
            n_genes,
            terms: Vec::new(),
        }
    }

    /// Adds a term; the gene list is sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if a gene id is out of the population range.
    pub fn add_term(
        &mut self,
        id: impl Into<String>,
        name: impl Into<String>,
        category: GoCategory,
        mut genes: Vec<GeneId>,
    ) {
        genes.sort_unstable();
        genes.dedup();
        assert!(
            genes.iter().all(|&g| g < self.n_genes),
            "annotated gene out of population range"
        );
        self.terms.push(GoTerm {
            id: id.into(),
            name: name.into(),
            category,
            genes,
        });
    }

    /// Terms of one category.
    pub fn terms_in(&self, category: GoCategory) -> impl Iterator<Item = &GoTerm> {
        self.terms.iter().filter(move |t| t.category == category)
    }

    /// Number of genes annotated with `term` inside `cluster_genes`
    /// (both lists must be sorted).
    pub fn count_in_cluster(term: &GoTerm, cluster_genes: &[GeneId]) -> usize {
        // Merge-count over two sorted lists.
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        while i < term.genes.len() && j < cluster_genes.len() {
            match term.genes[i].cmp(&cluster_genes[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_terms() {
        let mut db = GoDatabase::new(10);
        db.add_term(
            "GO:1",
            "DNA replication",
            GoCategory::Process,
            vec![3, 1, 3, 7],
        );
        db.add_term(
            "GO:2",
            "helicase activity",
            GoCategory::Function,
            vec![0, 2],
        );
        assert_eq!(db.terms.len(), 2);
        assert_eq!(db.terms[0].genes, vec![1, 3, 7]);
        assert_eq!(db.terms_in(GoCategory::Process).count(), 1);
        assert_eq!(db.terms_in(GoCategory::Component).count(), 0);
    }

    #[test]
    fn count_in_cluster_merges_sorted_lists() {
        let term = GoTerm {
            id: "GO:1".into(),
            name: "x".into(),
            category: GoCategory::Process,
            genes: vec![1, 3, 5, 7, 9],
        };
        assert_eq!(GoDatabase::count_in_cluster(&term, &[0, 1, 2, 3, 4]), 2);
        assert_eq!(GoDatabase::count_in_cluster(&term, &[]), 0);
        assert_eq!(GoDatabase::count_in_cluster(&term, &[9]), 1);
        assert_eq!(GoDatabase::count_in_cluster(&term, &[0, 2, 4]), 0);
    }

    #[test]
    #[should_panic(expected = "out of population range")]
    fn rejects_out_of_range_gene() {
        let mut db = GoDatabase::new(3);
        db.add_term("GO:1", "x", GoCategory::Process, vec![5]);
    }

    #[test]
    fn category_display() {
        assert_eq!(GoCategory::Process.to_string(), "Process");
        assert_eq!(GoCategory::ALL.len(), 3);
    }
}
