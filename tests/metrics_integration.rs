//! Cross-checks the telemetry observer against the engine's own
//! accounting: the registry counters a `MetricsObserver` accumulates must
//! agree with `MiningStats` for the same run, and the rule-2 (`min_conds`)
//! counter — which `MiningStats` deliberately does not carry — must fire
//! on a workload whose chains die of unreachable MinC.

use regcluster_core::{mine_with_observer, MetricsObserver, MiningParams, MiningStats};
use regcluster_datagen::running_example;
use regcluster_obs::MetricsRegistry;

const NODES_HELP: &str = "Enumeration-tree nodes entered (partial representative chains expanded).";
const EMITTED_HELP: &str = "Validated reg-clusters emitted by the enumeration.";
const PRUNED_HELP: &str = "Subtrees cut by each pruning strategy of the paper's section 4.";

#[test]
fn metrics_observer_agrees_with_mining_stats() {
    let m = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();

    let mut stats = MiningStats::default();
    let from_stats = mine_with_observer(&m, &params, &mut stats).unwrap();

    let registry = MetricsRegistry::new();
    let mut observer = MetricsObserver::register(&registry);
    let from_metrics = mine_with_observer(&m, &params, &mut observer).unwrap();
    assert_eq!(from_stats, from_metrics);

    let counter = |name: &str, help: &str| registry.counter(name, help, &[]).get();
    let rule = |label: &str| {
        registry
            .counter(
                regcluster_core::metrics::MINE_PRUNED_METRIC,
                PRUNED_HELP,
                &[("rule", label)],
            )
            .get()
    };
    assert_eq!(
        counter(regcluster_core::metrics::MINE_NODES_METRIC, NODES_HELP),
        stats.nodes as u64
    );
    assert_eq!(
        counter(regcluster_core::metrics::MINE_EMITTED_METRIC, EMITTED_HELP),
        stats.emitted as u64
    );
    assert_eq!(rule("min_genes"), stats.pruned_min_genes as u64);
    assert_eq!(rule("few_p_members"), stats.pruned_few_p as u64);
    assert_eq!(rule("duplicate"), stats.pruned_duplicate as u64);
    assert_eq!(rule("coherence"), stats.pruned_coherence as u64);
}

#[test]
fn min_conds_pruning_is_observable() {
    // MinC = 6 exceeds the running example's deepest 5-condition chain:
    // every surviving branch eventually runs out of extensible candidates
    // short of MinC, which is exactly the rule-2 subtree cut.
    let m = running_example();
    let params = MiningParams::new(3, 6, 0.15, 0.1).unwrap();
    let registry = MetricsRegistry::new();
    let mut observer = MetricsObserver::register(&registry);
    let clusters = mine_with_observer(&m, &params, &mut observer).unwrap();
    assert!(clusters.is_empty(), "MinC = 6 must starve the search");

    let min_conds = registry
        .counter(
            regcluster_core::metrics::MINE_PRUNED_METRIC,
            PRUNED_HELP,
            &[("rule", "min_conds")],
        )
        .get();
    assert!(
        min_conds > 0,
        "rule-2 cuts must be visible on a MinC-starved run"
    );
}
