#![deny(missing_docs)]

//! Named-site fault injection for crash-safety testing.
//!
//! Production code marks the places where a crash would be interesting —
//! a section flush in the store writer, a worker loop iteration in the
//! mining engine — with a **failpoint site**: a call to [`io`] or
//! [`trigger`] naming an entry of the static [`SITES`] catalogue. A test
//! (or an operator running a chaos drill) then arms sites with an
//! *action*:
//!
//! ```text
//! FAILPOINTS='store::section_flush=io_err@2;engine::worker=panic@40'
//! ```
//!
//! arms the second flush of the section writer to fail with an injected
//! [`std::io::Error`] and the 40th engine worker loop iteration to panic.
//! The grammar is `site=action[@n]` entries separated by `;`, where
//! `action` is `io_err` or `panic` and the optional `@n` (1-based) fires
//! the action only on the n-th evaluation of that site instead of every
//! evaluation.
//!
//! # Cost when disabled
//!
//! When no site is armed — the production steady state — every failpoint
//! evaluation is **one relaxed atomic load and a predictable branch**:
//! no lock, no lookup, no allocation. The workspace-root `tests/alloc.rs`
//! counts allocations through an instrumented global allocator with this
//! crate linked in and asserts the zero-allocation mining paths stay at
//! exactly zero.
//!
//! # Observability
//!
//! Every fired fault increments a per-site counter. Call
//! [`register_metrics`] to mirror those counters into a
//! [`MetricsRegistry`] as `regcluster_failpoints_fired_total{site=…}`,
//! so a chaos drill shows up on the same `/metrics` endpoint operators
//! already scrape (`docs/OBSERVABILITY.md`).
//!
//! # Scope
//!
//! The armed configuration is process-global (that is the point — the
//! code under test must not know it is being sabotaged), so tests that
//! call [`configure`] must serialize themselves and [`clear`] on exit.
//! The full site catalogue with the failure each site simulates is
//! documented in `docs/ROBUSTNESS.md`, kept in sync by a drift test.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use regcluster_obs::{Counter, MetricsRegistry};

/// Every failpoint site the workspace instruments, in catalogue order.
///
/// [`configure`] rejects names outside this list, so a typo in a chaos
/// spec fails loudly instead of silently arming nothing. The docs-drift
/// test iterates this list against `docs/ROBUSTNESS.md`.
pub const SITES: &[&str] = &[
    "store::record_write",
    "store::section_flush",
    "store::seal_header",
    "store::fsync_file",
    "store::rename",
    "store::dir_sync",
    "store::current_publish",
    "store::merge_seal",
    "checkpoint::save",
    "engine::worker",
    "cluster::lease_grant",
    "cluster::shard_upload",
    "cluster::publish",
];

/// Metric family name under which fired-fault counters are exported.
pub const FIRED_METRIC: &str = "regcluster_failpoints_fired_total";

/// Environment variable read by [`init_from_env`].
pub const ENV_VAR: &str = "FAILPOINTS";

/// What an armed site does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// The site returns an injected [`std::io::Error`] (kind `Other`).
    IoErr,
    /// The site panics, simulating a crashed worker thread.
    Panic,
}

#[derive(Debug, Clone, Copy)]
struct Armed {
    action: Action,
    /// 1-based evaluation ordinal on which to fire; `None` = every time.
    fire_at: Option<u64>,
}

const N_SITES: usize = 13;
const _: () = assert!(SITES.len() == N_SITES, "keep N_SITES in sync with SITES");

/// Fast-path gate: false (the default) means every site is a
/// branch-on-relaxed-load no-op.
static ACTIVE: AtomicBool = AtomicBool::new(false);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
/// Evaluations per site while armed (drives `@n` ordinals).
static HITS: [AtomicU64; N_SITES] = [ZERO; N_SITES];
/// Faults actually fired per site.
static FIRED: [AtomicU64; N_SITES] = [ZERO; N_SITES];

/// Armed actions per site plus the obs-registry mirror handles.
/// Locked only on the slow path (armed process) and at (re)configuration.
static CONFIG: Mutex<Option<[Option<Armed>; N_SITES]>> = Mutex::new(None);
static MIRRORS: Mutex<Vec<[Counter; N_SITES]>> = Mutex::new(Vec::new());

fn site_index(site: &str) -> Option<usize> {
    SITES.iter().position(|&s| s == site)
}

/// Parses and arms a failpoint spec (`site=action[@n]` entries separated
/// by `;`), replacing any previous configuration and resetting the
/// per-site evaluation ordinals. An empty spec disarms everything, like
/// [`clear`].
///
/// # Errors
///
/// A description of the first malformed entry: unknown site name, unknown
/// action, or an unparsable `@n` ordinal.
pub fn configure(spec: &str) -> Result<(), String> {
    let mut armed: [Option<Armed>; N_SITES] = [None; N_SITES];
    let mut any = false;
    for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
        let (site, rest) = entry
            .split_once('=')
            .ok_or_else(|| format!("failpoint entry {entry:?}: expected site=action[@n]"))?;
        let idx = site_index(site.trim()).ok_or_else(|| {
            format!(
                "unknown failpoint site {:?}; known sites: {}",
                site.trim(),
                SITES.join(", ")
            )
        })?;
        let (action, ordinal) = match rest.split_once('@') {
            Some((a, n)) => {
                let n: u64 = n
                    .trim()
                    .parse()
                    .map_err(|_| format!("failpoint entry {entry:?}: bad ordinal {n:?}"))?;
                if n == 0 {
                    return Err(format!("failpoint entry {entry:?}: ordinal is 1-based"));
                }
                (a, Some(n))
            }
            None => (rest, None),
        };
        let action = match action.trim() {
            "io_err" => Action::IoErr,
            "panic" => Action::Panic,
            other => {
                return Err(format!(
                    "unknown failpoint action {other:?}; want io_err or panic"
                ))
            }
        };
        armed[idx] = Some(Armed {
            action,
            fire_at: ordinal,
        });
        any = true;
    }
    let mut config = lock(&CONFIG);
    for hits in &HITS {
        hits.store(0, Ordering::Relaxed);
    }
    *config = any.then_some(armed);
    // Publish the gate after the config so a racing slow path sees the
    // new actions; release pairs with the slow path's acquire reload.
    ACTIVE.store(any, Ordering::Release);
    Ok(())
}

/// Arms failpoints from the `FAILPOINTS` environment variable; a missing
/// or empty variable leaves everything disarmed. Returns whether any site
/// was armed.
///
/// # Errors
///
/// As [`configure`], for a malformed spec.
pub fn init_from_env() -> Result<bool, String> {
    match std::env::var(ENV_VAR) {
        Ok(spec) => {
            configure(&spec)?;
            Ok(ACTIVE.load(Ordering::Relaxed))
        }
        Err(_) => Ok(false),
    }
}

/// Disarms every site and resets the per-site evaluation ordinals.
/// Cumulative fired counters are kept (they are monotonic metrics).
pub fn clear() {
    let mut config = lock(&CONFIG);
    for hits in &HITS {
        hits.store(0, Ordering::Relaxed);
    }
    *config = None;
    ACTIVE.store(false, Ordering::Release);
}

/// Evaluates the failpoint at `site`, returning the injected error when
/// an `io_err` action fires. Instrument fallible I/O boundaries with
/// `failpoint::io("store::…")?`.
///
/// When nothing is armed (the production steady state) this is one
/// relaxed atomic load and a branch: no lock, no allocation.
///
/// # Errors
///
/// The injected error when `site` is armed with `io_err` and its ordinal
/// matches.
///
/// # Panics
///
/// When `site` is armed with `panic` and its ordinal matches.
#[inline]
pub fn io(site: &'static str) -> std::io::Result<()> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return Ok(());
    }
    slow(site)
}

/// Evaluates the failpoint at `site` where no error can be returned —
/// only the `panic` action is observable; a fired `io_err` is counted but
/// otherwise ignored. Instrument infallible hot paths (the engine worker
/// loop) with this.
///
/// # Panics
///
/// When `site` is armed with `panic` and its ordinal matches.
#[inline]
pub fn trigger(site: &'static str) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    let _ = slow(site);
}

#[cold]
fn slow(site: &'static str) -> std::io::Result<()> {
    let Some(idx) = site_index(site) else {
        // An uncatalogued site is a wiring bug; surface it in tests.
        debug_assert!(false, "failpoint site {site:?} is not in SITES");
        return Ok(());
    };
    let armed = {
        let config = lock(&CONFIG);
        // Re-check under the lock: `clear` may have won the race.
        let Some(table) = config.as_ref() else {
            return Ok(());
        };
        let Some(armed) = table[idx] else {
            return Ok(());
        };
        armed
    };
    let hit = HITS[idx].fetch_add(1, Ordering::Relaxed) + 1;
    if armed.fire_at.is_some_and(|n| n != hit) {
        return Ok(());
    }
    FIRED[idx].fetch_add(1, Ordering::Relaxed);
    for mirror in lock(&MIRRORS).iter() {
        mirror[idx].inc();
    }
    match armed.action {
        Action::IoErr => Err(std::io::Error::other(format!(
            "injected failpoint error at {site} (hit {hit})"
        ))),
        Action::Panic => panic!("injected failpoint panic at {site} (hit {hit})"),
    }
}

/// Faults fired at `site` since process start (cumulative across
/// [`configure`]/[`clear`] cycles).
///
/// # Panics
///
/// If `site` is not in [`SITES`].
pub fn fired(site: &str) -> u64 {
    let idx = site_index(site).unwrap_or_else(|| panic!("unknown failpoint site {site:?}"));
    FIRED[idx].load(Ordering::Relaxed)
}

/// Mirrors the per-site fired counters into `registry` as
/// [`FIRED_METRIC`]`{site=…}` series, seeding each with the count fired
/// so far, and keeps them updated as further faults fire.
pub fn register_metrics(registry: &MetricsRegistry) {
    let counters: Vec<Counter> = SITES
        .iter()
        .enumerate()
        .map(|(idx, site)| {
            let c = registry.counter(
                FIRED_METRIC,
                "Injected faults fired per failpoint site.",
                &[("site", site)],
            );
            let already = FIRED[idx].load(Ordering::Relaxed);
            if already > c.get() {
                c.add(already - c.get());
            }
            c
        })
        .collect();
    let mirror: [Counter; N_SITES] = counters.try_into().expect("SITES.len() == N_SITES");
    lock(&MIRRORS).push(mirror);
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The armed configuration is process-global, so every test arming
    // sites serializes on this and clears on exit.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_sites_are_silent() {
        let _guard = lock(&SERIAL);
        clear();
        for &site in SITES {
            io(site).unwrap();
            trigger(site);
        }
    }

    #[test]
    fn io_err_fires_every_time_without_ordinal() {
        let _guard = lock(&SERIAL);
        configure("store::section_flush=io_err").unwrap();
        let before = fired("store::section_flush");
        assert!(io("store::section_flush").is_err());
        assert!(io("store::section_flush").is_err());
        io("store::rename").unwrap();
        assert_eq!(fired("store::section_flush"), before + 2);
        clear();
        io("store::section_flush").unwrap();
    }

    #[test]
    fn ordinal_fires_exactly_once_at_n() {
        let _guard = lock(&SERIAL);
        configure("store::record_write=io_err@3").unwrap();
        assert!(io("store::record_write").is_ok());
        assert!(io("store::record_write").is_ok());
        assert!(io("store::record_write").is_err());
        assert!(io("store::record_write").is_ok());
        clear();
    }

    #[test]
    fn panic_action_panics_and_trigger_ignores_io_err() {
        let _guard = lock(&SERIAL);
        configure("engine::worker=panic@1;store::dir_sync=io_err").unwrap();
        trigger("store::dir_sync"); // io_err on a trigger site: counted, ignored
        let payload = std::panic::catch_unwind(|| trigger("engine::worker"))
            .expect_err("armed panic must fire");
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.contains("engine::worker"), "payload: {msg}");
        clear();
    }

    #[test]
    fn bad_specs_are_rejected() {
        let _guard = lock(&SERIAL);
        assert!(configure("nonsense").is_err());
        assert!(configure("no::such::site=io_err").is_err());
        assert!(configure("engine::worker=explode").is_err());
        assert!(configure("engine::worker=panic@zero").is_err());
        assert!(configure("engine::worker=panic@0").is_err());
        // A failed configure leaves nothing armed.
        for &site in SITES {
            io(site).unwrap();
        }
        clear();
    }

    #[test]
    fn metrics_mirror_counts_fired_faults() {
        let _guard = lock(&SERIAL);
        clear();
        let registry = MetricsRegistry::new();
        register_metrics(&registry);
        let handle = registry.counter(
            FIRED_METRIC,
            "Injected faults fired per failpoint site.",
            &[("site", "store::seal_header")],
        );
        let before = handle.get();
        configure("store::seal_header=io_err@1").unwrap();
        assert!(io("store::seal_header").is_err());
        assert_eq!(handle.get(), before + 1);
        assert_eq!(
            registry.metric_names(),
            vec![FIRED_METRIC.to_string()],
            "one family, one series per site"
        );
        clear();
    }
}
