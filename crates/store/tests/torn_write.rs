//! The torn-write property: for **every** instrumented crash site in
//! [`StoreWriter`], killing the writer there leaves the destination path
//! either the previous complete store or the new complete store — never a
//! torn file — and it opens cleanly. Crashes are simulated by arming one
//! failpoint per scenario with an injected I/O error and abandoning the
//! write exactly where a real crash would.
//!
//! Failpoint configuration is process-global, so the whole matrix runs
//! inside one `#[test]` (serially), mirroring the chaos step in
//! `scripts/verify.sh`.

use std::path::Path;
use std::sync::Mutex;

use regcluster_core::{mine, MiningParams, RegCluster};
use regcluster_datagen::running_example;
use regcluster_store::{ClusterStore, Generations, StoreWriter, CURRENT_FILE};

/// Failpoint state is process-global; tests arming it take this lock.
static SERIAL: Mutex<()> = Mutex::new(());

fn write_store(
    path: &Path,
    clusters: &[RegCluster],
    params: &MiningParams,
) -> Result<(), regcluster_store::StoreError> {
    let m = running_example();
    let w = StoreWriter::create(path, m.gene_names(), m.condition_names(), params)?;
    for c in clusters {
        w.write_cluster(c)?;
    }
    w.finish().map(|_| ())
}

fn stored_clusters(path: &Path) -> Vec<RegCluster> {
    let store = ClusterStore::open(path).expect("destination must open cleanly");
    (0..store.n_clusters())
        .map(|id| store.cluster(id).unwrap())
        .collect()
}

#[test]
fn killing_the_writer_at_every_failpoint_leaves_old_or_new_complete_store() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let dir = std::env::temp_dir().join(format!("regcluster-torn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("victim.rcs");

    let m = running_example();
    // Two distinguishable complete stores: the old generation (the full
    // 3×5 mining result) and a new generation with looser parameters.
    let old_params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    let old_set = mine(&m, &old_params).unwrap();
    let new_params = MiningParams::new(2, 3, 0.15, 0.1).unwrap();
    let new_set = mine(&m, &new_params).unwrap();
    assert!(!new_set.is_empty() && new_set != old_set);

    write_store(&path, &old_set, &old_params).unwrap();
    assert_eq!(stored_clusters(&path), old_set);

    // Every instrumented crash site, at every ordinal that can fire
    // during one store write. `store::section_flush` is evaluated once
    // per sealing section (seven of them); the others once per seal, and
    // `store::record_write` once per record.
    let mut scenarios: Vec<String> = Vec::new();
    for n in 1..=new_set.len().min(3) {
        scenarios.push(format!("store::record_write=io_err@{n}"));
    }
    for n in 1..=7 {
        scenarios.push(format!("store::section_flush=io_err@{n}"));
    }
    for site in [
        "store::seal_header",
        "store::fsync_file",
        "store::rename",
        "store::dir_sync",
    ] {
        scenarios.push(format!("{site}=io_err@1"));
    }

    let mut landed_new = 0;
    for scenario in &scenarios {
        regcluster_failpoint::configure(scenario).unwrap();
        let result = write_store(&path, &new_set, &new_params);
        regcluster_failpoint::clear();
        assert!(
            result.is_err(),
            "{scenario}: the injected fault must surface"
        );

        // The property under test: whatever the crash site, the
        // destination opens cleanly and holds exactly one complete
        // generation. Faults before the rename leave the old store;
        // faults at or after it leave the new one.
        let survivors = stored_clusters(&path);
        assert!(
            survivors == old_set || survivors == new_set,
            "{scenario}: destination is neither the old nor the new store"
        );
        assert!(
            ClusterStore::open(&path).is_ok(),
            "{scenario}: destination must stay openable"
        );
        if survivors == new_set {
            landed_new += 1;
            // Reset the destination to the old generation for the next
            // scenario so both outcomes stay distinguishable.
            write_store(&path, &old_set, &old_params).unwrap();
        }
        assert!(
            !dir.join("victim.rcs.tmp").exists(),
            "{scenario}: failed writes must not leak scratch files"
        );
    }
    // Exactly the post-commit-point scenario (dir_sync, after the rename)
    // lands the new generation.
    assert_eq!(landed_new, 1, "only the post-rename fault commits");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_publish_keeps_the_old_generation_and_sweeps_the_orphan_later() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // The generations variant of the torn-write property: a crash at the
    // `CURRENT` commit point leaves the pointer on the old generation
    // with the fully-written new store file orphaned beside it, and the
    // next successful publish sweeps the orphan away.
    let dir = std::env::temp_dir().join(format!("regcluster-torn-publish-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let gens = Generations::open(&dir).unwrap();

    let m = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    let set = mine(&m, &params).unwrap();
    write_store(&gens.path_for(0), &set, &params).unwrap();
    gens.publish(0).unwrap();
    assert_eq!(gens.current().unwrap(), Some(0));

    // Generation 1 is written completely, but the pointer flip dies at
    // the commit point (just before the rename).
    write_store(&gens.path_for(1), &set, &params).unwrap();
    regcluster_failpoint::configure("store::current_publish=io_err@1").unwrap();
    let result = gens.publish(1);
    regcluster_failpoint::clear();
    assert!(result.is_err(), "the injected fault must surface");

    // Old pointer intact, readable; no pointer scratch leaked; the new
    // generation survives as an orphan (sweep is publish-side only, so
    // nothing has cleaned it yet).
    assert_eq!(gens.current().unwrap(), Some(0));
    assert_eq!(stored_clusters(&gens.path_for(0)), set);
    assert!(
        !dir.join(format!("{CURRENT_FILE}.tmp")).exists(),
        "failed publish must not leak the pointer scratch file"
    );
    assert!(gens.path_for(1).is_file(), "orphan left for the sweep");

    // Recovery: rewrite and publish generation 1 for real. The publish
    // lands, and its sweep keeps current + predecessor (here: both).
    write_store(&gens.path_for(1), &set, &params).unwrap();
    gens.publish(1).unwrap();
    assert_eq!(gens.current().unwrap(), Some(1));
    assert_eq!(stored_clusters(&gens.path_for(1)), set);
    assert!(gens.path_for(0).is_file(), "predecessor kept for draining");

    // An orphan that stays above the pointer: crash the publish of a
    // speculative generation 3 (current is still 1), then successfully
    // publish 2. The sweep removes the gen-3 orphan — it sits above the
    // new pointer — along with the now-ancient gen-0.
    write_store(&gens.path_for(3), &set, &params).unwrap();
    regcluster_failpoint::configure("store::current_publish=io_err@1").unwrap();
    assert!(gens.publish(3).is_err());
    regcluster_failpoint::clear();
    assert_eq!(gens.current().unwrap(), Some(1));
    write_store(&gens.path_for(2), &set, &params).unwrap();
    gens.publish(2).unwrap();
    assert_eq!(gens.current().unwrap(), Some(2));
    assert!(
        !gens.path_for(3).exists(),
        "orphaned generation above the pointer must be swept"
    );
    assert!(!gens.path_for(0).exists(), "ancient generation swept");
    assert!(gens.path_for(1).is_file(), "predecessor kept for draining");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn poisoned_streaming_writer_keeps_the_destination_intact() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // An I/O failure during streaming (not sealing) poisons the writer:
    // finish reports it and the destination never changes.
    let dir = std::env::temp_dir().join(format!("regcluster-torn-poison-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("victim.rcs");

    let m = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    let set = mine(&m, &params).unwrap();
    write_store(&path, &set, &params).unwrap();

    regcluster_failpoint::configure("store::record_write=io_err@1").unwrap();
    let w = StoreWriter::create(&path, m.gene_names(), m.condition_names(), &params).unwrap();
    let first = w.write_cluster(&set[0]);
    regcluster_failpoint::clear();
    assert!(first.is_err());
    // Poisoned: later writes are refused, finish reports the failure.
    assert!(w.write_cluster(&set[0]).is_err());
    assert!(w.finish().is_err());
    assert_eq!(stored_clusters(&path), set, "destination untouched");
    std::fs::remove_dir_all(&dir).ok();
}
