//! Golden delta-mining tests: re-mining only the dirty enumeration roots
//! of a re-measured matrix and splicing in the unchanged roots' clusters
//! from the previous run must yield the **bit-identical** finalized
//! cluster set of a from-scratch mine — across thread counts 1–8 — while
//! visiting strictly fewer enumeration nodes (pinned through the obs node
//! counter, the same instrument production dashboards read).

use regcluster_core::metrics::MINE_NODES_METRIC;
use regcluster_core::{
    classify_roots, finalize_clusters, mine_prepared_roots_to_sink, mine_prepared_to_sink,
    root_fingerprints, DeltaPlan, EngineConfig, MetricsObserver, MineControl, Miner, MiningParams,
    NoopObserver, RegCluster, SyncMineObserver, VecSink,
};
use regcluster_datagen::{generate, PatternKind, SyntheticConfig};
use regcluster_matrix::{CondId, ExpressionMatrix};
use regcluster_obs::MetricsRegistry;

/// Help string [`MetricsObserver`] registers [`MINE_NODES_METRIC`] under;
/// re-fetching the counter requires the identical registration.
const NODES_HELP: &str = "Enumeration-tree nodes entered (partial representative chains expanded).";

/// The seeded 100×30 synthetic workload shared by the repo's golden-output
/// tests, plus a "re-measured" copy where one gene's row changed — the
/// gene is chosen (deterministically) so the delta plan has **both**
/// dirty and unchanged roots, i.e. a realistically partial invalidation.
fn delta_dataset() -> (ExpressionMatrix, ExpressionMatrix, MiningParams) {
    let cfg = SyntheticConfig {
        n_genes: 100,
        n_conds: 30,
        n_clusters: 6,
        avg_cluster_dims: 6,
        cluster_gene_frac: 0.06,
        neg_fraction: 0.3,
        plant_gamma: 0.15,
        pattern: PatternKind::ShiftScale,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed: 7,
    };
    let base = generate(&cfg).unwrap().matrix;
    let params = MiningParams::new(4, 4, 0.1, 0.05).unwrap();

    // Append a probe gene: flat at 1.5 except a monotone ramp `0,1,2,3`
    // over the first four conditions. Range 3 gives γ_i = 0.3, and the
    // longest regulation chain *starting* at any flat condition (or at an
    // interior ramp condition) is 3 < MinC = 4 in both directions — only
    // the ramp's endpoints `c0` (forward) and `c3` (backward) seed
    // 4-chains. The probe's level-1 membership — and with it the dirty
    // set when the probe is re-measured — is exactly those two roots.
    // Every pairwise comparison clears γ_i by a wide margin, so the
    // affine re-measurement below cannot flip membership through float
    // rounding.
    let n_conds = base.n_conditions();
    let mut data: Vec<f64> = (0..base.n_genes())
        .flat_map(|g| base.row(g).iter().copied())
        .collect();
    let mut probe = vec![1.5; n_conds];
    for (c, v) in probe.iter_mut().take(4).enumerate() {
        *v = c as f64;
    }
    data.extend(&probe);
    let before = ExpressionMatrix::from_flat_unlabeled(base.n_genes() + 1, n_conds, data).unwrap();

    let mut after = before.clone();
    for v in after.row_mut(base.n_genes()) {
        *v = *v * 1.05 + 0.25;
    }
    (before, after, params)
}

/// Classifies the dataset's roots and sanity-checks the plan is partial —
/// a fully-dirty or fully-clean plan would make the golden tests vacuous.
fn partial_plan(
    before: &ExpressionMatrix,
    after: &ExpressionMatrix,
    params: &MiningParams,
) -> DeltaPlan {
    let old = root_fingerprints(&Miner::new(before, params).unwrap());
    let new = root_fingerprints(&Miner::new(after, params).unwrap());
    let plan = classify_roots(&old, &new).unwrap();
    assert!(
        !plan.dirty.is_empty(),
        "mutation must dirty at least one root"
    );
    assert!(
        !plan.unchanged.is_empty(),
        "mutation must leave at least one root unchanged"
    );
    plan
}

/// Engine mine into a [`VecSink`]: the full tree when `roots` is `None`,
/// otherwise only the given subtrees. Arrival order, not finalized.
fn engine_mine(
    miner: &Miner<'_>,
    roots: Option<&[CondId]>,
    config: &EngineConfig,
    observer: &dyn SyncMineObserver,
) -> Vec<RegCluster> {
    let sink = VecSink::new();
    let control = MineControl::new();
    match roots {
        Some(r) => mine_prepared_roots_to_sink(miner, r, config, &control, observer, &sink),
        None => mine_prepared_to_sink(miner, config, &control, observer, &sink),
    }
    .unwrap();
    sink.into_clusters()
}

/// The tentpole guarantee: for every thread count 1–8, splicing the
/// previous run's unchanged-root clusters together with a re-mine of only
/// the dirty roots reproduces the from-scratch mine bit for bit.
#[test]
fn delta_mine_is_bit_identical_to_full_mine_across_threads() {
    let (before, after, params) = delta_dataset();
    let plan = partial_plan(&before, &after, &params);
    let mask = plan.unchanged_mask();
    let miner_before = Miner::new(&before, &params).unwrap();
    let miner_after = Miner::new(&after, &params).unwrap();

    for threads in 1..=8 {
        let config = EngineConfig::new(threads);

        let mut full = engine_mine(&miner_after, None, &config, &NoopObserver);
        finalize_clusters(&mut full, &params);

        // The "previous run" output, as a store of record would hold it.
        let previous = engine_mine(&miner_before, None, &config, &NoopObserver);

        // Splice: carry over every cluster rooted at an unchanged
        // condition, re-mine only the dirty subtrees, finalize the union.
        let mut delta: Vec<RegCluster> =
            previous.into_iter().filter(|c| mask[c.chain[0]]).collect();
        delta.extend(engine_mine(
            &miner_after,
            Some(&plan.dirty),
            &config,
            &NoopObserver,
        ));
        finalize_clusters(&mut delta, &params);

        assert_eq!(
            delta, full,
            "delta-mined output diverged from full re-mine at threads={threads}"
        );
    }
}

/// A clean plan (nothing re-measured) carries the previous run over
/// verbatim with zero re-mined roots.
#[test]
fn clean_plan_reuses_the_previous_run_verbatim() {
    let (before, _, params) = delta_dataset();
    let miner = Miner::new(&before, &params).unwrap();
    let fps = root_fingerprints(&miner);
    let plan = classify_roots(&fps, &fps).unwrap();
    assert!(plan.is_clean());
    assert_eq!(plan.unchanged.len(), before.n_conditions());

    // Mining the empty dirty set visits nothing and emits nothing.
    let config = EngineConfig::new(2);
    let fresh = engine_mine(&miner, Some(&[]), &config, &NoopObserver);
    assert!(fresh.is_empty());
}

/// The acceptance criterion on work saved: a delta mine re-enumerates
/// **only** the dirty subtrees. At one thread the traversal is
/// deterministic, so the node counter partitions exactly — the dirty-only
/// and unchanged-only runs together visit precisely the full run's nodes,
/// and the dirty-only run alone visits strictly fewer.
#[test]
fn delta_mine_re_enumerates_only_dirty_subtrees() {
    let (before, after, params) = delta_dataset();
    let plan = partial_plan(&before, &after, &params);
    let miner_after = Miner::new(&after, &params).unwrap();
    let config = EngineConfig::new(1);

    let nodes_entered = |roots: Option<&[CondId]>| -> u64 {
        let registry = MetricsRegistry::new();
        let observer = MetricsObserver::register(&registry);
        engine_mine(&miner_after, roots, &config, &observer);
        registry.counter(MINE_NODES_METRIC, NODES_HELP, &[]).get()
    };

    let full = nodes_entered(None);
    let dirty_only = nodes_entered(Some(&plan.dirty));
    let unchanged_only = nodes_entered(Some(&plan.unchanged));

    assert_eq!(
        dirty_only + unchanged_only,
        full,
        "per-root subtrees must partition the enumeration tree"
    );
    // Every seeded root enters at least its own node, so a non-empty
    // unchanged set forces a strict saving.
    assert!(
        dirty_only < full,
        "delta mine saved no work: {dirty_only} of {full} nodes"
    );
    assert!(unchanged_only >= plan.unchanged.len() as u64);
}
