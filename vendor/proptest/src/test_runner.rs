//! The case-driving runner: configuration, the deterministic RNG handed to
//! strategies, and the pass/fail/reject protocol.

use crate::strategy::Strategy;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed; the whole test fails.
    Fail(String),
    /// The generated input did not meet a precondition; the case is
    /// discarded and regenerated.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl std::fmt::Display) -> Self {
        TestCaseError::Fail(reason.to_string())
    }

    /// A discard with the given reason.
    pub fn reject(reason: impl std::fmt::Display) -> Self {
        TestCaseError::Reject(reason.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable via the `PROPTEST_CASES` environment variable.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies: deterministic per run so failures
/// reproduce.
pub struct TestRng(pub ChaCha8Rng);

impl TestRng {
    fn for_case(case: u64) -> Self {
        // A fixed base seed keeps runs reproducible; mixing in the case
        // index decorrelates consecutive cases.
        TestRng(ChaCha8Rng::seed_from_u64(
            0x243F_6A88_85A3_08D3 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

/// Drives a strategy through the configured number of cases.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `property` against `config.cases` generated inputs, panicking on
    /// the first failure (no shrinking).
    ///
    /// # Panics
    ///
    /// Panics when a case fails or when rejects exceed 16× the case budget.
    pub fn run<S: Strategy, F>(&mut self, strategy: &S, mut property: F)
    where
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let max_rejects = u64::from(self.config.cases) * 16;
        let mut rejects = 0u64;
        let mut passed = 0u32;
        let mut attempt = 0u64;
        while passed < self.config.cases {
            let mut rng = TestRng::for_case(attempt);
            attempt += 1;
            let input = strategy.generate(&mut rng);
            match property(input) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    assert!(
                        rejects <= max_rejects,
                        "too many rejected cases ({rejects}) after {passed} passes"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest case #{n} (of {total}) failed: {msg}\n\
                         (deterministic seed: rerun reproduces this case)",
                        n = passed + 1,
                        total = self.config.cases,
                    );
                }
            }
        }
    }
}
