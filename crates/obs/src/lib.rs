#![deny(missing_docs)]

//! Dependency-free telemetry for the regcluster workspace.
//!
//! Three pieces, deliberately small enough to sit on the mining hot path:
//!
//! * [`MetricsRegistry`] — a registry of named **counters** and
//!   **fixed-bucket histograms**. Instruments are registered once, up
//!   front, and hand back clonable handles whose update operations are
//!   single [`AtomicU64`](std::sync::atomic::AtomicU64) writes: no locks,
//!   no name lookups, and **no heap allocation per event**, which is what
//!   lets an instrumented observer ride inside the allocation-free
//!   enumeration core (enforced by `tests/alloc.rs` in the workspace
//!   root).
//! * [`span`] — phase timing. A [`PhaseSpans`] set
//!   registers one duration counter and one run counter per phase
//!   (`load → index_build → enumeration → postprocess → store_write`
//!   in the CLI), and [`Span`] guards measure wall-clock
//!   time through the [`Clock`] abstraction — monotonic in
//!   production ([`MonotonicClock`]), hand-cranked
//!   in tests ([`ManualClock`]).
//! * [`encode`] — exposition. [`MetricsRegistry::encode_prometheus`]
//!   renders the classic text format (`# HELP`/`# TYPE`, cumulative
//!   `_bucket{le=…}` series), and [`MetricsRegistry::encode_json`] a
//!   JSON snapshot stamped with [`SNAPSHOT_FORMAT_VERSION`].
//!
//! The full catalogue of metrics the workspace exports — names, labels,
//! units, and how to read them — is documented for operators in
//! `docs/OBSERVABILITY.md`, which a drift test keeps in sync with the
//! registry.
//!
//! # Example
//!
//! ```
//! use regcluster_obs::{MetricsRegistry, Unit};
//!
//! let registry = MetricsRegistry::new();
//! let hits = registry.counter(
//!     "cache_hits_total",
//!     "Cache hits since process start.",
//!     &[("tier", "l1")],
//! );
//! hits.add(3);
//!
//! let depth = registry.histogram(
//!     "probe_depth",
//!     "Probe depth per lookup.",
//!     &[],
//!     &[1.0, 2.0, 4.0, 8.0],
//! );
//! depth.observe(3.0);
//!
//! let text = registry.encode_prometheus();
//! assert!(text.contains("# TYPE cache_hits_total counter"));
//! assert!(text.contains("cache_hits_total{tier=\"l1\"} 3"));
//! assert!(text.contains("probe_depth_bucket{le=\"4\"} 1"));
//! # let _ = Unit::Count;
//! ```

pub mod encode;
pub mod registry;
pub mod span;

pub use registry::{Counter, Histogram, MetricKind, MetricsRegistry, Unit};
pub use span::{Clock, ManualClock, MonotonicClock, PhaseSpans, Span, PHASES};

/// Schema version stamped into JSON snapshots written by
/// [`MetricsRegistry::encode_json`]. Bump on incompatible layout changes;
/// readers should refuse snapshots stamped with a newer version.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;
