//! The `regcluster` binary: a thin wrapper around the library.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match regcluster_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try `regcluster help`");
            return ExitCode::FAILURE;
        }
    };
    match regcluster_cli::run(&command) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
