//! Work-stealing parallel mining engine.
//!
//! The engine decouples **enumeration** from **collection**. Enumeration is
//! driven by a pool of workers sharing the representative-chain tree through
//! a spill-based work-stealing scheme: every enumeration node is a `Task`
//! (chain prefix + surviving members), each worker runs an ordinary
//! depth-first traversal over its local LIFO deque, and when the local deque
//! grows past [`EngineConfig::spill_threshold`] while other workers are
//! starving, the *shallowest* pending subtrees are spilled from the front of
//! the deque into a shared queue. This splits the tree at any depth — a
//! single heavy root no longer serializes the run the way the old
//! static-per-root split did ([`SplitStrategy::StaticRoots`] reproduces that
//! behavior for comparison benchmarks).
//!
//! Collection goes through a [`ClusterSink`]: [`VecSink`] gathers everything
//! for the deterministic collect path, [`CappedSink`] stops the run
//! cooperatively after a fixed number of clusters, and [`StreamingSink`]
//! forwards clusters over a bounded channel while mining is still in
//! progress.
//!
//! # Determinism
//!
//! The collect path ([`mine_engine`]) is **bit-identical** to the sequential
//! miner at every thread count, including under
//! [`max_clusters`](crate::MiningParams::max_clusters):
//!
//! * node expansion is the shared `Miner::expand_node`, a pure function of
//!   the node state, so sequential and parallel runs expand the same tree;
//! * duplicate elimination (pruning (3)(b) of the paper) is a first-arrival
//!   race, but two nodes emitting the same `(chain, genes)` cluster
//!   necessarily carry the same member state and therefore root *identical
//!   subtrees* — whichever twin wins the race, the set of emitted clusters
//!   and the multiset of observer events are invariant (see DESIGN.md §7.6);
//! * the cap is applied by the internal `finalize` step to the
//!   canonically-sorted full
//!   result, making capped output a function of the cluster set alone.
//!
//! Delivery *order* into a sink is nondeterministic across workers; only the
//! final collected set is deterministic. Runs that stop early — through
//! [`MineControl::cancel`], a deadline, or a sink refusing clusters — yield
//! a prefix of the work whose content depends on scheduling, and are flagged
//! accordingly.
//!
//! # Checkpointing
//!
//! A run given a [`CheckpointPlan`] can snapshot its enumeration frontier —
//! the un-expanded subtree roots plus every cluster emitted so far — to a
//! [`CheckpointSink`](crate::checkpoint::CheckpointSink), periodically and
//! on every early shutdown (cancellation, deadline, sink stop, worker
//! panic). On any stop, each worker *drains* its pending local nodes back
//! to the shared queue, so after the workers park the queue is exactly the
//! frontier. Periodic snapshots pause the run between enumeration "legs":
//! workers park once the leg's deadline passes, the controlling thread
//! snapshots, and a fresh leg resumes from the queue in the same call.
//! Resuming a checkpoint later (see
//! [`CheckpointPlan::with_resume`]) completes the run with the
//! bit-identical collected cluster set an uninterrupted run produces — see
//! `DESIGN.md` §10 and `crates/core/tests/checkpoint.rs`.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use regcluster_matrix::{CondId, ExpressionMatrix};

use crate::checkpoint::{
    matrix_fingerprint, CheckpointPlan, CheckpointReport, EngineCheckpoint, PendingMember,
    PendingNode,
};
use crate::intern::{ClusterView, EmittedSet};
use crate::miner::{finalize, Dir, EmitOutcome, Member, Miner};
use crate::observer::{MineObserver, MiningStats, NoopObserver, PruneRule, SyncMineObserver};
use crate::scratch::{ChildBuf, NodeScratch};
use crate::{CoreError, MiningParams, RegCluster};

/// Default local-deque length above which a worker offers subtrees to idle
/// peers. Small enough to feed starving workers quickly, large enough that a
/// worker keeps a cache-warm runway of its own.
pub const DEFAULT_SPILL_THRESHOLD: usize = 4;

/// Acquires a mutex, ignoring poisoning: engine state stays usable after a
/// worker panic so the run can shut down and report the panic instead of
/// cascading.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How the enumeration tree is divided among workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Workers spill pending subtrees at any depth to idle peers (default).
    WorkStealing,
    /// Only whole root subtrees are distributed; no mid-tree splitting.
    /// This reproduces the pre-engine `mine_parallel` behavior and exists
    /// for benchmarking the work-stealing gain.
    StaticRoots,
}

/// Tuning knobs for a parallel mining run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads (≥ 1).
    pub threads: usize,
    /// Local-deque length above which a worker spills subtrees to idle
    /// peers. Ignored under [`SplitStrategy::StaticRoots`].
    pub spill_threshold: usize,
    /// Tree-splitting strategy.
    pub split: SplitStrategy,
}

impl EngineConfig {
    /// A work-stealing configuration with `threads` workers and the default
    /// spill threshold.
    pub fn new(threads: usize) -> Self {
        EngineConfig {
            threads,
            spill_threshold: DEFAULT_SPILL_THRESHOLD,
            split: SplitStrategy::WorkStealing,
        }
    }

    /// Replaces the spill threshold.
    #[must_use]
    pub fn with_spill_threshold(mut self, spill_threshold: usize) -> Self {
        self.spill_threshold = spill_threshold;
        self
    }

    /// Replaces the split strategy.
    #[must_use]
    pub fn with_split(mut self, split: SplitStrategy) -> Self {
        self.split = split;
        self
    }

    fn validate(&self) -> Result<(), CoreError> {
        if self.threads == 0 {
            return Err(CoreError::InvalidParams("threads must be ≥ 1".into()));
        }
        Ok(())
    }
}

impl Default for EngineConfig {
    /// One worker per available CPU.
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        EngineConfig::new(threads)
    }
}

/// A cancellation handle for a mining run.
///
/// Clone it (cheap, `Arc`-backed) and hand one copy to the run while another
/// thread keeps the original: [`cancel`](MineControl::cancel) stops the run
/// at the next enumeration node, as does an expired
/// [deadline](MineControl::with_deadline). A stopped run reports
/// `truncated = true` and [`MineReport::into_result`] turns that into
/// [`CoreError::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct MineControl {
    inner: Arc<ControlInner>,
}

#[derive(Debug, Default)]
struct ControlInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl MineControl {
    /// A control that never fires on its own.
    pub fn new() -> Self {
        Self::default()
    }

    /// A control whose run stops once `timeout` has elapsed (measured from
    /// this call). A timeout too large to represent is treated as "never".
    pub fn with_deadline(timeout: Duration) -> Self {
        MineControl {
            inner: Arc::new(ControlInner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(timeout),
            }),
        }
    }

    /// Requests that the run stop at the next enumeration node.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the run should stop: cancelled explicitly or past deadline.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
            || self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Receiver for validated clusters from concurrent workers.
///
/// Replaces the old hard-wired `Vec<RegCluster>` collection. Implementations
/// must be [`Sync`]; `accept` is called once per *fresh* cluster (duplicates
/// are eliminated before the sink) in nondeterministic cross-worker order.
pub trait ClusterSink: Sync {
    /// Delivers one cluster. Returning `false` asks the engine to stop
    /// enumerating — a cooperative early stop honored at node granularity.
    fn accept(&self, cluster: RegCluster) -> bool;
}

/// Collects every cluster; never stops the run. The engine's collect path
/// drains it and finalizes for deterministic output.
#[derive(Debug, Default)]
pub struct VecSink {
    clusters: Mutex<Vec<RegCluster>>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected clusters, in arrival order.
    pub fn into_clusters(self) -> Vec<RegCluster> {
        self.clusters
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl ClusterSink for VecSink {
    fn accept(&self, cluster: RegCluster) -> bool {
        lock(&self.clusters).push(cluster);
        true
    }
}

/// Collects up to `cap` clusters, then stops the run cooperatively.
///
/// *Which* clusters make the cut depends on worker scheduling; use the
/// collect path with [`MiningParams::max_clusters`] when the capped subset
/// must be deterministic.
#[derive(Debug)]
pub struct CappedSink {
    cap: usize,
    clusters: Mutex<Vec<RegCluster>>,
}

impl CappedSink {
    /// A sink refusing clusters beyond `cap`.
    pub fn new(cap: usize) -> Self {
        CappedSink {
            cap,
            clusters: Mutex::new(Vec::new()),
        }
    }

    /// The collected clusters (at most `cap`), in arrival order.
    pub fn into_clusters(self) -> Vec<RegCluster> {
        self.clusters
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl ClusterSink for CappedSink {
    fn accept(&self, cluster: RegCluster) -> bool {
        let mut clusters = lock(&self.clusters);
        if clusters.len() >= self.cap {
            return false;
        }
        clusters.push(cluster);
        clusters.len() < self.cap
    }
}

/// How often a control-aware [`StreamingSink`] blocked on a full channel
/// re-checks [`MineControl::is_cancelled`].
const SEND_POLL_INTERVAL: Duration = Duration::from_millis(1);

/// Streams clusters over a bounded channel while mining runs.
///
/// Dropping the receiver stops the run cooperatively at the next emission.
/// Back-pressure from a full channel blocks the emitting worker: attach the
/// run's [`MineControl`] via [`with_control`](StreamingSink::with_control)
/// so cancellation and deadlines can interrupt a blocked send. Without it, a
/// stalled receiver keeps the worker inside `accept`, and the "stops at the
/// next enumeration node" guarantee of [`MineControl`] does not hold until
/// the receiver drains or disconnects.
#[derive(Debug)]
pub struct StreamingSink {
    tx: SyncSender<RegCluster>,
    control: Option<MineControl>,
}

impl StreamingSink {
    /// Wraps an existing bounded sender.
    pub fn new(tx: SyncSender<RegCluster>) -> Self {
        StreamingSink { tx, control: None }
    }

    /// Creates a sink and its receiving end with channel capacity `bound`.
    pub fn channel(bound: usize) -> (Self, Receiver<RegCluster>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(bound);
        (StreamingSink { tx, control: None }, rx)
    }

    /// Makes sends interruptible by `control` (pass the same handle the run
    /// uses): a send blocked on a full channel polls for cancellation and,
    /// once `control` fires, refuses the cluster so the run stops instead of
    /// hanging on a stalled receiver.
    #[must_use]
    pub fn with_control(mut self, control: MineControl) -> Self {
        self.control = Some(control);
        self
    }
}

impl ClusterSink for StreamingSink {
    fn accept(&self, cluster: RegCluster) -> bool {
        let Some(control) = &self.control else {
            return self.tx.send(cluster).is_ok();
        };
        let mut cluster = cluster;
        loop {
            if control.is_cancelled() {
                return false;
            }
            match self.tx.try_send(cluster) {
                Ok(()) => return true,
                Err(TrySendError::Full(returned)) => {
                    cluster = returned;
                    std::thread::sleep(SEND_POLL_INTERVAL);
                }
                Err(TrySendError::Disconnected(_)) => return false,
            }
        }
    }
}

/// The outcome of a collect-mode engine run.
#[derive(Debug, Clone)]
pub struct MineReport {
    /// The mined clusters, finalized (canonical order, `maximal_only`
    /// filter, `max_clusters` cap). A partial set when `truncated`.
    pub clusters: Vec<RegCluster>,
    /// Merged per-worker search-effort counters. For complete runs these
    /// equal a sequential run's totals (asserted by tests).
    pub stats: MiningStats,
    /// The run was stopped by [`MineControl`] before the tree was exhausted.
    pub truncated: bool,
}

impl MineReport {
    /// Treats truncation as an error: `Ok(clusters)` for a complete run,
    /// [`CoreError::Cancelled`] otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Cancelled`] when the run was truncated.
    pub fn into_result(self) -> Result<Vec<RegCluster>, CoreError> {
        if self.truncated {
            Err(CoreError::Cancelled)
        } else {
            Ok(self.clusters)
        }
    }
}

/// The outcome of a sink-mode engine run (the clusters went to the sink).
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Merged per-worker search-effort counters.
    pub stats: MiningStats,
    /// The run was stopped by [`MineControl`] before the tree was exhausted.
    pub truncated: bool,
    /// The sink refused a cluster, stopping the run early (e.g. a
    /// [`CappedSink`] reaching its cap or a dropped [`StreamingSink`]
    /// receiver).
    pub stopped_by_sink: bool,
}

/// Mines `matrix` with the work-stealing engine, collecting everything.
///
/// Bit-identical to [`mine`](crate::mine) at every thread count.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] for invalid parameters or
/// configuration and [`CoreError::WorkerPanic`] if a worker panicked.
pub fn mine_engine(
    matrix: &ExpressionMatrix,
    params: &MiningParams,
    config: &EngineConfig,
) -> Result<MineReport, CoreError> {
    mine_engine_with(matrix, params, config, &MineControl::new(), &NoopObserver)
}

/// Like [`mine_engine`], with a cancellation handle and a thread-safe
/// observer receiving every enumeration event.
///
/// A run stopped through `control` returns `Ok` with
/// [`MineReport::truncated`] set (use [`MineReport::into_result`] to treat
/// that as [`CoreError::Cancelled`]); partial clusters and stats cover the
/// subtrees completed before the stop.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] for invalid parameters or
/// configuration and [`CoreError::WorkerPanic`] if a worker or the observer
/// panicked.
pub fn mine_engine_with(
    matrix: &ExpressionMatrix,
    params: &MiningParams,
    config: &EngineConfig,
    control: &MineControl,
    observer: &dyn SyncMineObserver,
) -> Result<MineReport, CoreError> {
    config.validate()?;
    let miner = Miner::new(matrix, params)?;
    let sink = VecSink::new();
    let outcome = run(
        &miner,
        matrix.n_conditions(),
        config,
        control,
        observer,
        &sink,
    )?;
    let mut clusters = sink.into_clusters();
    finalize(&mut clusters, params);
    Ok(MineReport {
        clusters,
        stats: outcome.stats,
        truncated: outcome.truncated,
    })
}

/// Mines `matrix`, delivering every fresh cluster to `sink` as it is found.
///
/// The clusters reaching the sink are exactly the deduplicated emission set
/// (for complete runs, the same set [`mine_engine`] collects) but **not**
/// finalized: order is nondeterministic and neither `maximal_only` nor
/// `max_clusters` from `params` is applied — capping is the sink's job
/// ([`CappedSink`]).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] for invalid parameters or
/// configuration and [`CoreError::WorkerPanic`] if a worker, the observer,
/// or the sink panicked.
pub fn mine_to_sink(
    matrix: &ExpressionMatrix,
    params: &MiningParams,
    config: &EngineConfig,
    control: &MineControl,
    observer: &dyn SyncMineObserver,
    sink: &dyn ClusterSink,
) -> Result<StreamReport, CoreError> {
    let miner = Miner::new(matrix, params)?;
    mine_prepared_to_sink(&miner, config, control, observer, sink)
}

/// As [`mine_to_sink`], but running an already-constructed [`Miner`].
///
/// Building the `RWave^γ` models ([`Miner::new`]) is a distinct pipeline
/// phase from the enumeration itself; callers that time or report the two
/// separately (the CLI's phase spans, see `docs/OBSERVABILITY.md`)
/// construct the miner themselves and enter here.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] for an invalid configuration and
/// [`CoreError::WorkerPanic`] if a worker, the observer, or the sink
/// panicked.
pub fn mine_prepared_to_sink(
    miner: &Miner<'_>,
    config: &EngineConfig,
    control: &MineControl,
    observer: &dyn SyncMineObserver,
    sink: &dyn ClusterSink,
) -> Result<StreamReport, CoreError> {
    config.validate()?;
    let outcome = run(miner, miner.n_conditions(), config, control, observer, sink)?;
    Ok(StreamReport {
        stats: outcome.stats,
        truncated: outcome.truncated,
        stopped_by_sink: outcome.stopped_by_sink,
    })
}

/// As [`mine_prepared_to_sink`], but enumerating **only the subtrees rooted
/// at the given conditions** — the delta-mining path
/// ([`delta`](crate::delta)): after
/// [`classify_roots`](crate::delta::classify_roots) marks which roots are
/// dirty, this re-mines exactly those subtrees while the unchanged roots'
/// clusters are spliced from the previous run.
///
/// The clusters delivered to `sink` are exactly the clusters a full run
/// emits with `chain[0]` in `roots` (subtree outputs are disjoint by root;
/// see the [`delta`](crate::delta) module docs for why). Duplicate entries
/// in `roots` are ignored.
///
/// # Errors
///
/// [`CoreError::InvalidParams`] for an invalid configuration or a root
/// outside the matrix's conditions, and [`CoreError::WorkerPanic`] if a
/// worker, the observer, or the sink panicked.
pub fn mine_prepared_roots_to_sink(
    miner: &Miner<'_>,
    roots: &[CondId],
    config: &EngineConfig,
    control: &MineControl,
    observer: &dyn SyncMineObserver,
    sink: &dyn ClusterSink,
) -> Result<StreamReport, CoreError> {
    config.validate()?;
    let n_roots = miner.n_conditions();
    if let Some(&bad) = roots.iter().find(|&&r| r >= n_roots) {
        return Err(CoreError::InvalidParams(format!(
            "root condition {bad} out of range (matrix has {n_roots} conditions)"
        )));
    }
    let mut subset: Vec<CondId> = roots.to_vec();
    subset.sort_unstable();
    subset.dedup();
    let outcome = run_checkpointed(
        miner,
        n_roots,
        Some(&subset),
        config,
        control,
        observer,
        sink,
        None,
    )
    .map(|(outcome, _)| outcome)?;
    Ok(StreamReport {
        stats: outcome.stats,
        truncated: outcome.truncated,
        stopped_by_sink: outcome.stopped_by_sink,
    })
}

/// As [`mine_prepared_roots_to_sink`], with crash-safety: the
/// roots-subset analogue of [`mine_prepared_to_sink_checkpointed`],
/// built for distributed workers mining a leased root range
/// ([`partition_roots`](crate::partition_roots)) that must survive their
/// own crashes.
///
/// A fresh run seeds the frontier with exactly `roots` and checkpoints
/// per the plan. A resumed run ignores `roots` and completes the
/// checkpoint's pending frontier instead — the checkpoint *is* the
/// remaining work, including roots that never left the queue. Callers
/// holding per-lease checkpoints must therefore only resume a
/// checkpoint taken for the **same** root subset (the cluster worker
/// keys checkpoint files by lease range for exactly this reason).
///
/// # Errors
///
/// As [`mine_prepared_roots_to_sink`] and
/// [`mine_prepared_to_sink_checkpointed`].
pub fn mine_prepared_roots_to_sink_checkpointed(
    miner: &Miner<'_>,
    roots: &[CondId],
    config: &EngineConfig,
    control: &MineControl,
    observer: &dyn SyncMineObserver,
    sink: &dyn ClusterSink,
    plan: CheckpointPlan<'_>,
) -> Result<(StreamReport, CheckpointReport), CoreError> {
    config.validate()?;
    let n_roots = miner.n_conditions();
    if let Some(&bad) = roots.iter().find(|&&r| r >= n_roots) {
        return Err(CoreError::InvalidParams(format!(
            "root condition {bad} out of range (matrix has {n_roots} conditions)"
        )));
    }
    let mut subset: Vec<CondId> = roots.to_vec();
    subset.sort_unstable();
    subset.dedup();
    let (outcome, report) = run_checkpointed(
        miner,
        n_roots,
        Some(&subset),
        config,
        control,
        observer,
        sink,
        Some(plan),
    )?;
    Ok((
        StreamReport {
            stats: outcome.stats,
            truncated: outcome.truncated,
            stopped_by_sink: outcome.stopped_by_sink,
        },
        report,
    ))
}

/// As [`mine_prepared_to_sink`], with crash-safety: snapshots the
/// enumeration frontier to the plan's
/// [`CheckpointSink`](crate::checkpoint::CheckpointSink) periodically
/// (when [`CheckpointPlan::every`] is set) and on every early shutdown,
/// and optionally resumes an interrupted run from
/// [`CheckpointPlan::resume`].
///
/// Resuming first replays the checkpoint's emitted clusters into `sink`
/// (so the sink receives the complete set) and then completes the pending
/// frontier. Stats cover only the work done by *this* call — resumed runs
/// do not repeat the interrupted run's enumeration effort, which is the
/// point.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] for an invalid configuration,
/// [`CoreError::Checkpoint`] when the resume checkpoint does not match
/// this run or a snapshot cannot be persisted, and
/// [`CoreError::WorkerPanic`] if a worker, the observer, or the sink
/// panicked — after flushing a final checkpoint (best-effort) that still
/// covers the panicking node's subtree.
pub fn mine_prepared_to_sink_checkpointed(
    miner: &Miner<'_>,
    config: &EngineConfig,
    control: &MineControl,
    observer: &dyn SyncMineObserver,
    sink: &dyn ClusterSink,
    plan: CheckpointPlan<'_>,
) -> Result<(StreamReport, CheckpointReport), CoreError> {
    config.validate()?;
    let (outcome, report) = run_checkpointed(
        miner,
        miner.n_conditions(),
        None,
        config,
        control,
        observer,
        sink,
        Some(plan),
    )?;
    Ok((
        StreamReport {
            stats: outcome.stats,
            truncated: outcome.truncated,
            stopped_by_sink: outcome.stopped_by_sink,
        },
        report,
    ))
}

/// The checkpointed collect path: like
/// [`mine_engine_with`] under a [`CheckpointPlan`].
///
/// A resumed run collects the checkpoint's emitted clusters plus
/// everything the completed frontier yields, then finalizes — producing
/// the **bit-identical** cluster set an uninterrupted [`mine_engine`] run
/// returns (golden-tested across thread counts in
/// `crates/core/tests/checkpoint.rs`).
///
/// # Errors
///
/// As [`mine_prepared_to_sink_checkpointed`].
pub fn mine_engine_checkpointed(
    matrix: &ExpressionMatrix,
    params: &MiningParams,
    config: &EngineConfig,
    control: &MineControl,
    observer: &dyn SyncMineObserver,
    plan: CheckpointPlan<'_>,
) -> Result<(MineReport, CheckpointReport), CoreError> {
    config.validate()?;
    let miner = Miner::new(matrix, params)?;
    let sink = VecSink::new();
    let (outcome, report) = run_checkpointed(
        &miner,
        matrix.n_conditions(),
        None,
        config,
        control,
        observer,
        &sink,
        Some(plan),
    )?;
    let mut clusters = sink.into_clusters();
    finalize(&mut clusters, params);
    Ok((
        MineReport {
            clusters,
            stats: outcome.stats,
            truncated: outcome.truncated,
        },
        report,
    ))
}

/// One enumeration node awaiting expansion on the **shared** queue. Shared
/// tasks own their data because they cross workers; a worker's local pending
/// nodes are [`NodeRef`] ranges into its arenas instead.
struct Task {
    chain: Vec<CondId>,
    members: Vec<Member>,
}

/// A pending enumeration node local to one worker: ranges into the worker's
/// chain and member arenas. See [`worker`] for the stack discipline that
/// keeps the back-of-deque node's ranges topmost in both arenas, letting a
/// pop reclaim its space with a plain `truncate`.
#[derive(Debug, Clone, Copy)]
struct NodeRef {
    chain_start: usize,
    chain_len: usize,
    member_start: usize,
    member_len: usize,
}

struct Outcome {
    stats: MiningStats,
    truncated: bool,
    stopped_by_sink: bool,
}

/// State shared by all workers of one run.
struct Shared<'e> {
    /// Spilled subtrees available for stealing (plus the initial roots).
    queue: Mutex<VecDeque<Task>>,
    /// Signaled on spills, on termination and on stop requests.
    available: Condvar,
    /// Live tasks: queued, local to a worker, or in expansion. Termination
    /// is `outstanding == 0`.
    outstanding: AtomicUsize,
    /// Workers currently blocked waiting for work — the spill heuristic.
    waiting: AtomicUsize,
    /// Global stop request (cancellation, sink refusal, or worker panic).
    stop: AtomicBool,
    truncated: AtomicBool,
    stopped_by_sink: AtomicBool,
    /// First captured worker-panic payload.
    panic_msg: Mutex<Option<String>>,
    /// Duplicate-elimination sets, sharded by root condition: clusters with
    /// different roots have different chains and can never collide, so
    /// cross-root emissions never contend on a lock.
    emitted: Vec<Mutex<EmittedSet>>,
    /// Checkpointing runs only: every cluster delivered to (and kept by)
    /// the sink, in emission order. Snapshots copy it; resume seeds it.
    journal: Option<Mutex<Vec<RegCluster>>>,
    /// This leg should end for a periodic snapshot (checked per node once
    /// `pause_at` passes). Distinct from `truncated`/`stopped_by_sink`: a
    /// paused run continues with a fresh leg after the snapshot.
    paused: AtomicBool,
    /// Deadline of the current enumeration leg (periodic checkpoints only).
    /// Written by the controlling thread between legs, read by workers.
    pause_at: Option<Instant>,
    /// The run carries a [`CheckpointPlan`]: stop paths preserve the
    /// frontier (drains, push-backs) instead of abandoning it.
    checkpointing: bool,
    sink: &'e dyn ClusterSink,
    observer: &'e dyn SyncMineObserver,
    control: &'e MineControl,
    spill_threshold: usize,
    stealing: bool,
}

impl Shared<'_> {
    fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        // Take (and release) the queue lock before notifying: a waiter in
        // `steal_or_wait` checks `stop` under this lock and then parks
        // atomically. Acquiring the lock here can't interleave with that
        // check-then-wait window, so the store above is either seen by the
        // check or the notify reaches an already-parked waiter — without the
        // lock the notify could land in the window and be lost forever.
        drop(lock(&self.queue));
        self.available.notify_all();
    }
}

/// Per-worker bridge: accumulates lock-free [`MiningStats`] and forwards
/// every event to the shared [`SyncMineObserver`].
struct WorkerObserver<'a> {
    stats: MiningStats,
    user: &'a dyn SyncMineObserver,
}

impl MineObserver for WorkerObserver<'_> {
    fn node_entered(&mut self, chain: &[CondId], n_p: usize, n_n: usize) {
        MineObserver::node_entered(&mut self.stats, chain, n_p, n_n);
        self.user.node_entered(chain, n_p, n_n);
    }
    fn pruned(&mut self, chain: &[CondId], rule: PruneRule) {
        MineObserver::pruned(&mut self.stats, chain, rule);
        self.user.pruned(chain, rule);
    }
    fn cluster_emitted(&mut self, cluster: &RegCluster) {
        MineObserver::cluster_emitted(&mut self.stats, cluster);
        self.user.cluster_emitted(cluster);
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run(
    miner: &Miner<'_>,
    n_roots: usize,
    config: &EngineConfig,
    control: &MineControl,
    observer: &dyn SyncMineObserver,
    sink: &dyn ClusterSink,
) -> Result<Outcome, CoreError> {
    run_checkpointed(miner, n_roots, None, config, control, observer, sink, None)
        .map(|(outcome, _)| outcome)
}

/// Refuses a resume checkpoint that does not belong to this run: different
/// parameters or matrix (the frontier's pruning decisions depend on both),
/// or structurally out-of-range ids (a corrupted or foreign snapshot).
fn validate_resume(miner: &Miner<'_>, ck: &EngineCheckpoint) -> Result<(), CoreError> {
    let matrix = miner.matrix();
    let fail = |msg: String| Err(CoreError::Checkpoint(msg));
    if ck.params != *miner.params() {
        return fail("resume checkpoint was taken under different mining parameters".into());
    }
    if ck.n_genes != matrix.n_genes() || ck.n_conditions != matrix.n_conditions() {
        return fail(format!(
            "resume checkpoint is for a {}×{} matrix, input is {}×{}",
            ck.n_genes,
            ck.n_conditions,
            matrix.n_genes(),
            matrix.n_conditions()
        ));
    }
    if ck.matrix_fingerprint != matrix_fingerprint(matrix) {
        return fail(
            "resume checkpoint does not match the input matrix (content fingerprint differs)"
                .into(),
        );
    }
    for node in &ck.pending {
        if node.chain.is_empty()
            || node.chain.iter().any(|&c| c >= matrix.n_conditions())
            || node.members.iter().any(|m| m.gene >= matrix.n_genes())
        {
            return fail("resume checkpoint holds an out-of-range pending node".into());
        }
    }
    for c in &ck.emitted {
        if c.chain.is_empty()
            || c.chain.iter().any(|&cc| cc >= matrix.n_conditions())
            || c.p_members
                .iter()
                .chain(&c.n_members)
                .any(|&g| g >= matrix.n_genes())
        {
            return fail("resume checkpoint holds an out-of-range emitted cluster".into());
        }
    }
    Ok(())
}

/// Snapshots the frontier (the shared queue, after workers drained into it)
/// and the emission journal. Called between legs — no worker is running.
fn snapshot(miner: &Miner<'_>, shared: &Shared<'_>, fingerprint: u64) -> EngineCheckpoint {
    let pending = lock(&shared.queue)
        .iter()
        .map(|task| PendingNode {
            chain: task.chain.clone(),
            members: task
                .members
                .iter()
                .map(|m| PendingMember {
                    gene: m.gene,
                    forward: m.dir == Dir::Fwd,
                    denom_bits: m.denom.to_bits(),
                })
                .collect(),
        })
        .collect();
    let emitted = shared
        .journal
        .as_ref()
        .map(|journal| lock(journal).clone())
        .unwrap_or_default();
    EngineCheckpoint {
        params: miner.params().clone(),
        n_genes: miner.matrix().n_genes(),
        n_conditions: miner.matrix().n_conditions(),
        matrix_fingerprint: fingerprint,
        pending,
        emitted,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_checkpointed(
    miner: &Miner<'_>,
    n_roots: usize,
    roots: Option<&[CondId]>,
    config: &EngineConfig,
    control: &MineControl,
    observer: &dyn SyncMineObserver,
    sink: &dyn ClusterSink,
    plan: Option<CheckpointPlan<'_>>,
) -> Result<(Outcome, CheckpointReport), CoreError> {
    let (ck_sink, every, resume) = match plan {
        Some(CheckpointPlan {
            sink,
            every,
            resume,
        }) => (Some(sink), every, resume),
        None => (None, None, None),
    };
    let checkpointing = ck_sink.is_some();
    let resumed = resume.is_some();

    // Seed the queue and the dedup shards: from the checkpoint when
    // resuming (replaying its emitted clusters into the sink so the sink
    // sees the complete set), from the roots otherwise.
    let emitted_shards: Vec<Mutex<EmittedSet>> = (0..n_roots)
        .map(|_| Mutex::new(EmittedSet::default()))
        .collect();
    let mut initial: VecDeque<Task> = VecDeque::new();
    let mut journal_seed: Vec<RegCluster> = Vec::new();
    match resume {
        Some(ck) => {
            validate_resume(miner, &ck)?;
            for cluster in &ck.emitted {
                let genes = cluster.genes();
                let view = ClusterView {
                    chain: &cluster.chain,
                    p_members: &cluster.p_members,
                    n_members: &cluster.n_members,
                    genes: &genes,
                };
                let fingerprint = view.fingerprint();
                lock(&emitted_shards[cluster.chain[0]]).insert(fingerprint, &view);
                // Replay delivery; refusal is ignored — a resumed sink that
                // wants to stop does so at the first fresh emission.
                let _ = sink.accept(cluster.clone());
            }
            journal_seed = ck.emitted;
            for node in ck.pending {
                initial.push_back(Task {
                    chain: node.chain,
                    members: node
                        .members
                        .iter()
                        .map(|m| Member {
                            gene: m.gene,
                            dir: if m.forward { Dir::Fwd } else { Dir::Bwd },
                            denom: f64::from_bits(m.denom_bits),
                        })
                        .collect(),
                });
            }
        }
        None => {
            // A roots subset (delta mining) seeds only the dirty subtrees;
            // the dedup shards stay sized n_roots so `chain[0]` indexing
            // holds either way.
            let mut seed = |root: CondId| {
                initial.push_back(Task {
                    chain: vec![root],
                    members: miner.root_members(root),
                });
            };
            match roots {
                Some(subset) => subset.iter().copied().for_each(&mut seed),
                None => (0..n_roots).for_each(&mut seed),
            }
        }
    }

    let outstanding = initial.len();
    let mut shared = Shared {
        queue: Mutex::new(initial),
        available: Condvar::new(),
        outstanding: AtomicUsize::new(outstanding),
        waiting: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        truncated: AtomicBool::new(false),
        stopped_by_sink: AtomicBool::new(false),
        panic_msg: Mutex::new(None),
        emitted: emitted_shards,
        journal: checkpointing.then(|| Mutex::new(journal_seed)),
        paused: AtomicBool::new(false),
        pause_at: None,
        checkpointing,
        sink,
        observer,
        control,
        spill_threshold: config.spill_threshold.max(1),
        stealing: config.split == SplitStrategy::WorkStealing,
    };
    // Computed once: snapshots of a large matrix would otherwise re-hash
    // every cell per checkpoint.
    let fingerprint = if checkpointing {
        matrix_fingerprint(miner.matrix())
    } else {
        0
    };

    let mut stats = MiningStats::default();
    let mut checkpoints_written = 0u64;
    // Each iteration is one enumeration leg. Legs after the first occur
    // only for periodic checkpoints: the paused leg's workers drained the
    // frontier into the queue, the snapshot was taken, and the next leg
    // resumes from the queue.
    let outcome = loop {
        shared.stop.store(false, Ordering::Release);
        shared.paused.store(false, Ordering::Release);
        shared.pause_at = every.and_then(|d| Instant::now().checked_add(d));
        std::thread::scope(|scope| {
            let shared = &shared;
            let mut handles = Vec::with_capacity(config.threads);
            for _ in 0..config.threads {
                handles.push(scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| worker(miner, n_roots, shared)))
                        .unwrap_or_else(|payload| {
                            let mut slot = lock(&shared.panic_msg);
                            if slot.is_none() {
                                *slot = Some(panic_message(payload));
                            }
                            drop(slot);
                            shared.request_stop();
                            MiningStats::default()
                        })
                }));
            }
            for handle in handles {
                if let Ok(worker_stats) = handle.join() {
                    stats.merge(&worker_stats);
                }
            }
        });

        if let Some(msg) = lock(&shared.panic_msg).take() {
            // Best-effort final checkpoint: the panic is the primary error
            // (so a save failure is swallowed here), but the frontier the
            // surviving workers drained — including the restored panicking
            // node — is persisted so the run can be resumed.
            if let Some(ck_sink) = ck_sink {
                let _ = ck_sink.save(&snapshot(miner, &shared, fingerprint));
            }
            return Err(CoreError::WorkerPanic(msg));
        }
        let truncated = shared.truncated.load(Ordering::Acquire);
        let stopped_by_sink = shared.stopped_by_sink.load(Ordering::Acquire);
        let stopping = truncated || stopped_by_sink;
        if stopping || shared.paused.load(Ordering::Acquire) {
            if let Some(ck_sink) = ck_sink {
                ck_sink
                    .save(&snapshot(miner, &shared, fingerprint))
                    .map_err(|e| CoreError::Checkpoint(format!("checkpoint save failed: {e}")))?;
                checkpoints_written += 1;
            }
            if !stopping {
                continue;
            }
        }
        break Outcome {
            stats: std::mem::take(&mut stats),
            truncated,
            stopped_by_sink,
        };
    };
    Ok((
        outcome,
        CheckpointReport {
            resumed,
            checkpoints_written,
        },
    ))
}

/// The worker loop: depth-first over the local deque, stealing from the
/// shared queue when the deque runs dry, spilling to it when peers starve.
///
/// # Steady-state allocation freedom
///
/// A worker holds every pending local node in two grow-only arenas (chain
/// ids and members) and its deque stores only [`NodeRef`] ranges. The LIFO
/// discipline maintains one invariant: **the back-of-deque node's ranges are
/// the topmost in both arenas.** Popping therefore copies the node into the
/// current-node buffers and reclaims its space with `truncate`; pushing
/// appends children in *reverse* child order so the next node to pop (the
/// first child — depth-first order) is again topmost. Nodes spilled from the
/// *front* of the deque leave dead ranges at the arena bottom; those are
/// reclaimed wholesale (`clear`) whenever the deque runs empty and the
/// worker turns to stealing. With warmed buffers the loop allocates only
/// when spilling (owned tasks must cross threads) and when emitting a fresh
/// cluster.
fn worker(miner: &Miner<'_>, n_conds: usize, shared: &Shared<'_>) -> MiningStats {
    let mut observer = WorkerObserver {
        stats: MiningStats::default(),
        user: shared.observer,
    };
    let mut scratch = NodeScratch::with_conds(n_conds);
    let mut children = ChildBuf::default();
    // The node currently being expanded.
    let mut chain: Vec<CondId> = Vec::new();
    let mut members: Vec<Member> = Vec::new();
    // Pristine pre-expansion copy of `chain`, maintained only on
    // checkpointing runs: `expand_node` mutates `chain` in place, so a
    // panicking expansion (or a sink-initiated stop, which discards the
    // children) restores the node for the frontier from this buffer.
    // Reused across nodes — no steady-state allocation.
    let mut chain_backup: Vec<CondId> = Vec::new();
    // Pending local nodes: ranges into the arenas, addressed by the deque.
    let mut chain_arena: Vec<CondId> = Vec::new();
    let mut member_arena: Vec<Member> = Vec::new();
    let mut local: VecDeque<NodeRef> = VecDeque::new();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            // A stopping checkpointing run must not lose this worker's
            // pending subtrees: they move to the shared queue, which
            // becomes the snapshot frontier once every worker has parked.
            drain_local(shared, &mut local, &chain_arena, &member_arena);
            break;
        }
        if let Some(node) = local.pop_back() {
            // Invariant: `node`'s ranges are topmost — copy out, truncate.
            chain.clear();
            chain.extend_from_slice(
                &chain_arena[node.chain_start..node.chain_start + node.chain_len],
            );
            members.clear();
            members.extend_from_slice(
                &member_arena[node.member_start..node.member_start + node.member_len],
            );
            chain_arena.truncate(node.chain_start);
            member_arena.truncate(node.member_start);
        } else {
            let Some(task) = steal_or_wait(shared) else {
                break;
            };
            // The deque is empty, so anything left in the arenas is dead
            // ranges from spilled nodes — reclaim everything.
            chain_arena.clear();
            member_arena.clear();
            chain.clear();
            chain.extend_from_slice(&task.chain);
            members.clear();
            members.extend_from_slice(&task.members);
        }
        // Cancellation and deadline are honored at enumeration-node
        // granularity: cheap enough to check per node, fine-grained enough
        // that even a single heavy subtree stops promptly.
        if shared.control.is_cancelled() {
            shared.truncated.store(true, Ordering::Release);
            // The popped node was not expanded: back to the queue it goes
            // (it still holds its `outstanding` slot), so a checkpoint
            // resumes from it. The loop-top stop check drains the rest.
            push_back_current(shared, &chain, &members);
            shared.request_stop();
            continue;
        }
        if shared.checkpointing {
            chain_backup.clear();
            chain_backup.extend_from_slice(&chain);
        }
        let expansion = catch_unwind(AssertUnwindSafe(|| {
            // Fault-injection site for worker-crash drills
            // (`FAILPOINTS=engine::worker=panic@N`).
            regcluster_failpoint::trigger("engine::worker");
            miner.expand_node(
                &mut chain,
                &members,
                None,
                &mut scratch,
                &mut children,
                &mut observer,
                &mut |view, obs| {
                    // The fingerprint is computed outside the shard lock; the
                    // shard resolves exact membership. Duplicate probes take the
                    // lock but allocate nothing.
                    let fingerprint = view.fingerprint();
                    let shard = &shared.emitted[view.chain[0]];
                    if !lock(shard).insert(fingerprint, view) {
                        return EmitOutcome::Duplicate;
                    }
                    // Fresh: materialize the cluster exactly once and move it
                    // into the sink — no clone anywhere on the emission path
                    // (checkpointing runs add one clone, for the journal).
                    let cluster = view.to_cluster();
                    obs.cluster_emitted(&cluster);
                    if let Some(journal) = &shared.journal {
                        // Journal the cluster only when the sink keeps the
                        // run alive: a refused cluster's node returns to the
                        // frontier un-journaled, so resume re-emits it and
                        // expands the subtree the stop abandoned.
                        let copy = cluster.clone();
                        if shared.sink.accept(cluster) {
                            lock(journal).push(copy);
                            EmitOutcome::Fresh
                        } else {
                            EmitOutcome::FreshAndStop
                        }
                    } else if shared.sink.accept(cluster) {
                        EmitOutcome::Fresh
                    } else {
                        EmitOutcome::FreshAndStop
                    }
                },
            )
        }));
        let stop = match expansion {
            Ok(stop) => stop,
            Err(payload) => {
                // Contain the panic at node granularity: record it, restore
                // the node it consumed (so the final checkpoint still covers
                // its subtree), and shut the run down.
                let mut slot = lock(&shared.panic_msg);
                if slot.is_none() {
                    *slot = Some(panic_message(payload));
                }
                drop(slot);
                push_back_current(shared, &chain_backup, &members);
                shared.request_stop();
                continue;
            }
        };
        if stop {
            // A control-aware sink refuses clusters once cancellation fires
            // mid-send; report that as truncation, not a sink-initiated stop.
            if shared.control.is_cancelled() {
                shared.truncated.store(true, Ordering::Release);
            } else {
                shared.stopped_by_sink.store(true, Ordering::Release);
            }
            // The stop abandoned this node's children before they were
            // materialized; restore the pre-expansion node so a checkpoint
            // re-expands it on resume.
            push_back_current(shared, &chain_backup, &members);
            shared.request_stop();
            continue;
        }
        if !children.index.is_empty() {
            // Count the children as live before retiring the parent so
            // `outstanding` can never dip to 0 while work remains.
            shared
                .outstanding
                .fetch_add(children.index.len(), Ordering::AcqRel);
            // Append in reverse child order: the deque pops from the back,
            // so the first child must be pushed last — it is expanded next
            // (local order stays depth-first) and its arena ranges are
            // topmost, upholding the pop invariant.
            for &child in children.index.iter().rev() {
                let chain_start = chain_arena.len();
                chain_arena.extend_from_slice(&chain);
                chain_arena.push(child.cond);
                let member_start = member_arena.len();
                member_arena.extend_from_slice(children.members_of(child));
                local.push_back(NodeRef {
                    chain_start,
                    chain_len: chain.len() + 1,
                    member_start,
                    member_len: child.len as usize,
                });
            }
            maybe_spill(shared, &mut local, &chain_arena, &member_arena);
        }
        finish_task(shared);
        // Periodic checkpoints: once the leg deadline passes, ask everyone
        // to park. Checked *after* a full node expansion, so every leg makes
        // progress on every worker — even `every = Duration::ZERO` (one node
        // per worker per leg) cannot livelock. Skipped when the tree is
        // already exhausted: termination needs no snapshot.
        if let Some(pause_at) = shared.pause_at {
            if Instant::now() >= pause_at
                && !shared.stop.load(Ordering::Acquire)
                && shared.outstanding.load(Ordering::Acquire) != 0
            {
                shared.paused.store(true, Ordering::Release);
                shared.request_stop();
            }
        }
    }
    observer.stats
}

/// Returns a popped-but-unfinished node to the shared queue (checkpointing
/// runs only). The node keeps the `outstanding` slot it has held since its
/// creation, so the termination counter needs no adjustment.
fn push_back_current(shared: &Shared<'_>, chain: &[CondId], members: &[Member]) {
    if !shared.checkpointing {
        return;
    }
    lock(&shared.queue).push_back(Task {
        chain: chain.to_vec(),
        members: members.to_vec(),
    });
}

/// Moves every pending local node to the shared queue when a checkpointing
/// run stops: once all workers park, the queue holds the complete
/// enumeration frontier for the snapshot. Each node keeps its
/// `outstanding` slot. Non-checkpointing runs skip this — their stop paths
/// simply abandon pending work, as before.
fn drain_local(
    shared: &Shared<'_>,
    local: &mut VecDeque<NodeRef>,
    chain_arena: &[CondId],
    member_arena: &[Member],
) {
    if !shared.checkpointing || local.is_empty() {
        return;
    }
    let mut queue = lock(&shared.queue);
    while let Some(node) = local.pop_front() {
        queue.push_back(Task {
            chain: chain_arena[node.chain_start..node.chain_start + node.chain_len].to_vec(),
            members: member_arena[node.member_start..node.member_start + node.member_len].to_vec(),
        });
    }
}

/// Retires one task; the last retirement wakes every waiter for shutdown.
fn finish_task(shared: &Shared<'_>) {
    if shared.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
        // Same discipline as `request_stop`: waiters check `outstanding`
        // under the queue lock before parking, so the notify must be
        // serialized through that lock or the final wakeup can be lost.
        drop(lock(&shared.queue));
        shared.available.notify_all();
    }
}

/// Moves surplus tasks from the front of the local deque (the shallowest,
/// largest pending subtrees) to the shared queue when peers are starving.
///
/// Spilling materializes owned [`Task`]s from the worker's arenas — the one
/// place the steady-state loop allocates, and inherently so: the data must
/// outlive this worker's arenas to cross threads. The spilled nodes' arena
/// ranges become dead; they sit at the arena *bottom* (front-of-deque nodes
/// are the oldest) and are reclaimed when the deque next runs empty.
fn maybe_spill(
    shared: &Shared<'_>,
    local: &mut VecDeque<NodeRef>,
    chain_arena: &[CondId],
    member_arena: &[Member],
) {
    if !shared.stealing
        || local.len() <= shared.spill_threshold
        || shared.waiting.load(Ordering::Relaxed) == 0
    {
        return;
    }
    let surplus = local.len() - shared.spill_threshold;
    {
        let mut queue = lock(&shared.queue);
        for _ in 0..surplus {
            if let Some(node) = local.pop_front() {
                queue.push_back(Task {
                    chain: chain_arena[node.chain_start..node.chain_start + node.chain_len]
                        .to_vec(),
                    members: member_arena[node.member_start..node.member_start + node.member_len]
                        .to_vec(),
                });
            }
        }
    }
    shared.available.notify_all();
}

/// Pops from the shared queue, blocking until work appears, the run
/// terminates (`outstanding == 0`), or a stop is requested.
fn steal_or_wait(shared: &Shared<'_>) -> Option<Task> {
    let mut queue = lock(&shared.queue);
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return None;
        }
        if let Some(task) = queue.pop_front() {
            return Some(task);
        }
        if shared.outstanding.load(Ordering::Acquire) == 0 {
            return None;
        }
        // Every signal this loop waits on is serialized through the queue
        // lock held here: spills push under it, and `finish_task` /
        // `request_stop` acquire it between their state change and the
        // notify. A state change therefore lands either before the checks
        // above or after this worker is parked — never in the gap between
        // check and wait, so no wakeup can be lost.
        shared.waiting.fetch_add(1, Ordering::SeqCst);
        queue = shared
            .available
            .wait(queue)
            .unwrap_or_else(PoisonError::into_inner);
        shared.waiting.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validates_threads() {
        assert!(EngineConfig::new(0).validate().is_err());
        assert!(EngineConfig::new(1).validate().is_ok());
        assert!(EngineConfig::default().threads >= 1);
    }

    #[test]
    fn control_cancel_and_deadline() {
        let control = MineControl::new();
        assert!(!control.is_cancelled());
        let clone = control.clone();
        clone.cancel();
        assert!(control.is_cancelled(), "cancel propagates through clones");

        let expired = MineControl::with_deadline(Duration::ZERO);
        assert!(expired.is_cancelled());
        let far = MineControl::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        // An unrepresentable deadline means "never", not "immediately".
        let never = MineControl::with_deadline(Duration::MAX);
        assert!(!never.is_cancelled());
    }

    fn cluster(chain: Vec<CondId>) -> RegCluster {
        RegCluster {
            chain,
            p_members: vec![0, 1],
            n_members: vec![],
        }
    }

    #[test]
    fn vec_sink_collects_everything() {
        let sink = VecSink::new();
        assert!(sink.accept(cluster(vec![0, 1])));
        assert!(sink.accept(cluster(vec![1, 2])));
        assert_eq!(sink.into_clusters().len(), 2);
    }

    #[test]
    fn capped_sink_refuses_past_cap() {
        let sink = CappedSink::new(2);
        assert!(sink.accept(cluster(vec![0, 1])));
        // The cap-filling cluster is kept, but the run is asked to stop.
        assert!(!sink.accept(cluster(vec![1, 2])));
        assert!(!sink.accept(cluster(vec![2, 3])));
        assert_eq!(sink.into_clusters().len(), 2);
    }

    #[test]
    fn streaming_sink_stops_when_receiver_drops() {
        let (sink, rx) = StreamingSink::channel(4);
        assert!(sink.accept(cluster(vec![0, 1])));
        assert_eq!(rx.recv().unwrap().chain, vec![0, 1]);
        drop(rx);
        assert!(!sink.accept(cluster(vec![1, 2])));
    }

    #[test]
    fn report_into_result_maps_truncation_to_cancelled() {
        let complete = MineReport {
            clusters: vec![cluster(vec![0, 1])],
            stats: MiningStats::default(),
            truncated: false,
        };
        assert_eq!(complete.into_result().unwrap().len(), 1);
        let truncated = MineReport {
            clusters: Vec::new(),
            stats: MiningStats::default(),
            truncated: true,
        };
        assert_eq!(truncated.into_result(), Err(CoreError::Cancelled));
    }
}
