//! Checkpoint/resume types for crash-safe mining runs.
//!
//! A mining run's recoverable state is its **enumeration frontier**: the
//! pending subtree roots no worker has expanded yet, plus the set of
//! clusters already emitted (which seeds duplicate elimination on resume so
//! nothing is re-emitted and no redundant subtree is re-explored). An
//! [`EngineCheckpoint`] captures exactly that, together with enough
//! provenance — parameters, matrix dimensions, a content fingerprint — to
//! refuse resumption against the wrong input.
//!
//! The engine hands snapshots to a [`CheckpointSink`]; persistence lives
//! elsewhere (the `.rck` file format is implemented by the store crate,
//! which depends on this one). [`MemoryCheckpointSink`] keeps the latest
//! snapshot in memory for tests and embedders.
//!
//! # Resume semantics
//!
//! Resuming replays the checkpoint's emitted clusters into the new run's
//! sink (so the sink sees the complete set), rebuilds the duplicate-
//! elimination tables from them, and seeds the work queue with the pending
//! frontier. A resumed collect-mode run therefore finishes with the
//! **bit-identical** cluster set an uninterrupted run would have produced —
//! finalization is a function of the cluster set alone (see
//! `DESIGN.md` §10 and the golden tests in `crates/core/tests/checkpoint.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use regcluster_matrix::{CondId, ExpressionMatrix, GeneId};

use crate::intern::mix;
use crate::{MiningParams, RegCluster};

/// One member gene of a pending enumeration node, in a form that
/// round-trips exactly: the baseline denominator is carried as raw IEEE-754
/// bits so a resumed node recomputes byte-identical coherence scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingMember {
    /// The member gene.
    pub gene: GeneId,
    /// `true` for a p-member (expression increases along the chain),
    /// `false` for an n-member (inverted chain).
    pub forward: bool,
    /// `f64::to_bits` of the baseline step `d[c_{k2}] − d[c_{k1}]` (zero
    /// bits before the chain reaches length 2).
    pub denom_bits: u64,
}

/// One un-expanded node of the enumeration frontier: a chain prefix plus
/// the members that survived to it. Expanding it (and its descendants)
/// on resume completes the subtree exactly as the interrupted run would
/// have.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingNode {
    /// The representative chain prefix (root condition first).
    pub chain: Vec<CondId>,
    /// Surviving members, in the order the miner tracked them.
    pub members: Vec<PendingMember>,
}

/// A complete, resumable snapshot of a mining run.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineCheckpoint {
    /// The mining parameters of the interrupted run. Resume refuses a
    /// mismatch: pruning decisions baked into the frontier depend on them.
    pub params: MiningParams,
    /// Number of genes in the mined matrix.
    pub n_genes: usize,
    /// Number of conditions in the mined matrix.
    pub n_conditions: usize,
    /// Content fingerprint of the mined matrix
    /// ([`matrix_fingerprint`]); resume refuses a different matrix even
    /// when the dimensions happen to agree.
    pub matrix_fingerprint: u64,
    /// The un-expanded enumeration frontier.
    pub pending: Vec<PendingNode>,
    /// Every cluster emitted before the snapshot, exactly as delivered to
    /// the sink. Seeds duplicate elimination and sink replay on resume.
    pub emitted: Vec<RegCluster>,
}

/// Receiver for engine checkpoints. Implementations persist the snapshot
/// atomically (see `regcluster-store`'s `.rck` writer) or retain it in
/// memory ([`MemoryCheckpointSink`]).
pub trait CheckpointSink {
    /// Persists one snapshot. Called between enumeration legs, never
    /// concurrently. An error aborts the run with
    /// [`CoreError::Checkpoint`](crate::CoreError::Checkpoint) — except
    /// after a worker panic, where the panic takes precedence.
    ///
    /// # Errors
    ///
    /// Any I/O failure while persisting the snapshot.
    fn save(&self, checkpoint: &EngineCheckpoint) -> std::io::Result<()>;
}

/// How a mining run checkpoints: where snapshots go, how often periodic
/// snapshots are taken, and optionally a checkpoint to resume from.
pub struct CheckpointPlan<'a> {
    /// Destination for every snapshot.
    pub sink: &'a dyn CheckpointSink,
    /// Periodic checkpoint interval. `None` checkpoints only on early
    /// shutdown (cancellation, deadline, sink stop, worker panic).
    /// `Duration::ZERO` checkpoints after every worker's next node — only
    /// useful for tests.
    pub every: Option<Duration>,
    /// Resume from this snapshot instead of starting at the roots.
    pub resume: Option<EngineCheckpoint>,
}

impl<'a> CheckpointPlan<'a> {
    /// A plan that checkpoints into `sink` only on early shutdown.
    pub fn new(sink: &'a dyn CheckpointSink) -> Self {
        CheckpointPlan {
            sink,
            every: None,
            resume: None,
        }
    }

    /// Adds a periodic checkpoint interval.
    #[must_use]
    pub fn with_every(mut self, every: Duration) -> Self {
        self.every = Some(every);
        self
    }

    /// Resumes from `checkpoint` instead of starting fresh.
    #[must_use]
    pub fn with_resume(mut self, checkpoint: EngineCheckpoint) -> Self {
        self.resume = Some(checkpoint);
        self
    }
}

/// What checkpointing did during a run, reported alongside the mining
/// outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The run was seeded from a resume checkpoint.
    pub resumed: bool,
    /// Snapshots successfully handed to the sink (periodic + shutdown).
    pub checkpoints_written: u64,
}

/// A [`CheckpointSink`] retaining the most recent snapshot in memory.
/// The test double for the engine's checkpoint path, and a building block
/// for embedders that manage persistence themselves.
#[derive(Debug, Default)]
pub struct MemoryCheckpointSink {
    last: Mutex<Option<EngineCheckpoint>>,
    saves: AtomicU64,
}

impl MemoryCheckpointSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recent snapshot, if any was saved.
    pub fn last(&self) -> Option<EngineCheckpoint> {
        self.last
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Number of snapshots saved so far.
    pub fn saves(&self) -> u64 {
        self.saves.load(Ordering::Relaxed)
    }
}

impl CheckpointSink for MemoryCheckpointSink {
    fn save(&self, checkpoint: &EngineCheckpoint) -> std::io::Result<()> {
        *self
            .last
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(checkpoint.clone());
        self.saves.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// A deterministic 64-bit content fingerprint of an expression matrix:
/// dimensions plus the raw bits of every cell, in row-major order.
///
/// Used by [`EngineCheckpoint`] to refuse resuming a frontier against a
/// matrix other than the one it was mined from. Like the dedup
/// fingerprints, it is seedless so it is stable across processes; it
/// guards against mix-ups, not adversaries.
pub fn matrix_fingerprint(matrix: &ExpressionMatrix) -> u64 {
    let mut h: u64 = 0x9D_3A_55_C1_0B_71_EE_D7;
    h = mix(h, matrix.n_genes() as u64);
    h = mix(h, matrix.n_conditions() as u64);
    for (_, row) in matrix.rows() {
        for &v in row {
            h = mix(h, v.to_bits());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_matrix(scale: f64) -> ExpressionMatrix {
        ExpressionMatrix::from_flat_unlabeled(2, 3, vec![1.0, 2.0, 3.0, 4.0 * scale, 5.0, 6.0])
            .unwrap()
    }

    #[test]
    fn matrix_fingerprint_sees_content_and_shape() {
        let a = matrix_fingerprint(&tiny_matrix(1.0));
        assert_eq!(a, matrix_fingerprint(&tiny_matrix(1.0)), "deterministic");
        assert_ne!(
            a,
            matrix_fingerprint(&tiny_matrix(2.0)),
            "content-sensitive"
        );
        let transposed =
            ExpressionMatrix::from_flat_unlabeled(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
                .unwrap();
        assert_ne!(a, matrix_fingerprint(&transposed), "shape-sensitive");
    }

    #[test]
    fn memory_sink_keeps_the_latest_snapshot() {
        let sink = MemoryCheckpointSink::new();
        assert!(sink.last().is_none());
        let mut ck = EngineCheckpoint {
            params: MiningParams::new(2, 2, 0.1, 0.1).unwrap(),
            n_genes: 2,
            n_conditions: 3,
            matrix_fingerprint: 7,
            pending: vec![PendingNode {
                chain: vec![0],
                members: vec![PendingMember {
                    gene: 1,
                    forward: true,
                    denom_bits: 0,
                }],
            }],
            emitted: Vec::new(),
        };
        sink.save(&ck).unwrap();
        ck.matrix_fingerprint = 8;
        sink.save(&ck).unwrap();
        assert_eq!(sink.saves(), 2);
        assert_eq!(sink.last().unwrap().matrix_fingerprint, 8);
    }
}
