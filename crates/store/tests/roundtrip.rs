//! Lossless round-trip guarantees of the store: write → read reproduces the
//! golden cluster sets bit-identically, sequentially and streamed from the
//! engine at 1–8 threads, and every index agrees with a linear scan.

use std::path::PathBuf;

use regcluster_core::{
    mine, mine_to_sink, ClusterSink, EngineConfig, MineControl, MiningParams, NoopObserver,
    RegCluster, SplitStrategy,
};
use regcluster_datagen::{generate, running_example, PatternKind, SyntheticConfig};
use regcluster_matrix::ExpressionMatrix;
use regcluster_store::{ClusterStore, Query, StoreWriter};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("regcluster-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn golden(name: &str) -> Vec<RegCluster> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name);
    serde_json::from_str(&std::fs::read_to_string(&path).expect("golden file readable"))
        .expect("golden file parses")
}

/// The same seeded 100×30 workload the golden-output tests mine.
fn synthetic_100x30() -> (ExpressionMatrix, MiningParams) {
    let cfg = SyntheticConfig {
        n_genes: 100,
        n_conds: 30,
        n_clusters: 6,
        avg_cluster_dims: 6,
        cluster_gene_frac: 0.06,
        neg_fraction: 0.3,
        plant_gamma: 0.15,
        pattern: PatternKind::ShiftScale,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed: 7,
    };
    let matrix = generate(&cfg).expect("config is feasible").matrix;
    let params = MiningParams::new(4, 4, 0.1, 0.05).expect("valid");
    (matrix, params)
}

fn write_store(
    path: &PathBuf,
    m: &ExpressionMatrix,
    params: &MiningParams,
    clusters: &[RegCluster],
) {
    let w = StoreWriter::create(path, m.gene_names(), m.condition_names(), params).unwrap();
    for c in clusters {
        w.write_cluster(c).unwrap();
    }
    w.finish().unwrap();
}

fn read_all(store: &ClusterStore) -> Vec<RegCluster> {
    store.iter().collect::<Result<_, _>>().unwrap()
}

#[test]
fn running_example_roundtrips_bit_identically_to_golden() {
    let m = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    let mined = mine(&m, &params).unwrap();
    let path = tmp("running.rcs");
    write_store(&path, &m, &params, &mined);

    let store = ClusterStore::open(&path).unwrap();
    let read = read_all(&store);
    assert_eq!(read, golden("running_example.json"));
    assert_eq!(read, mined);
    assert_eq!(store.params(), &params, "γ/ε provenance survives");
    assert_eq!(store.gene_names(), m.gene_names());
    assert_eq!(store.cond_names(), m.condition_names());
    assert_eq!(store.n_genes() as usize, m.n_genes());
    assert_eq!(store.n_conds() as usize, m.n_conditions());
}

#[test]
fn synthetic_roundtrips_bit_identically_to_golden() {
    let (m, params) = synthetic_100x30();
    let mined = mine(&m, &params).unwrap();
    let path = tmp("synthetic.rcs");
    write_store(&path, &m, &params, &mined);
    let store = ClusterStore::open(&path).unwrap();
    assert_eq!(read_all(&store), golden("synthetic_100x30.json"));
}

#[test]
fn engine_streamed_store_matches_vecsink_at_every_thread_count() {
    let (m, params) = synthetic_100x30();
    // The canonical collect-path result (== finalized VecSink output).
    let expected = mine(&m, &params).unwrap();
    for threads in 1..=8usize {
        for split in [SplitStrategy::WorkStealing, SplitStrategy::StaticRoots] {
            let path = tmp(&format!("stream-{threads}-{split:?}.rcs"));
            let writer =
                StoreWriter::create(&path, m.gene_names(), m.condition_names(), &params).unwrap();
            let config = EngineConfig::new(threads).with_split(split);
            let report = mine_to_sink(
                &m,
                &params,
                &config,
                &MineControl::new(),
                &NoopObserver,
                &writer,
            )
            .unwrap();
            assert!(!report.truncated && !report.stopped_by_sink);
            writer.finish().unwrap();

            let store = ClusterStore::open(&path).unwrap();
            assert_eq!(
                read_all(&store),
                expected,
                "store drifted from collect path (threads = {threads}, {split:?})"
            );
        }
    }
}

#[test]
fn indexes_agree_with_linear_scan() {
    let (m, params) = synthetic_100x30();
    let mined = mine(&m, &params).unwrap();
    let path = tmp("indexes.rcs");
    write_store(&path, &m, &params, &mined);
    let store = ClusterStore::open(&path).unwrap();

    for g in 0..store.n_genes() {
        let from_index: Vec<u32> = store.clusters_with_gene(g).collect();
        let from_scan: Vec<u32> = mined
            .iter()
            .enumerate()
            .filter(|(_, c)| c.genes_iter().any(|x| x == g as usize))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(from_index, from_scan, "gene {g} postings");
    }
    for c in 0..store.n_conds() {
        let from_index: Vec<u32> = store.clusters_with_cond(c).collect();
        let from_scan: Vec<u32> = mined
            .iter()
            .enumerate()
            .filter(|(_, cl)| cl.chain.contains(&(c as usize)))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(from_index, from_scan, "cond {c} postings");
    }
    // Size table matches the records.
    for (i, c) in mined.iter().enumerate() {
        assert_eq!(
            store.cluster_dims(i as u32).unwrap(),
            (c.n_genes() as u32, c.n_conditions() as u32)
        );
    }
}

#[test]
fn queries_match_reference_filters() {
    let (m, params) = synthetic_100x30();
    let mined = mine(&m, &params).unwrap();
    let path = tmp("queries.rcs");
    write_store(&path, &m, &params, &mined);
    let store = ClusterStore::open(&path).unwrap();

    // Conjunctive gene+cond+size query vs. brute force.
    let probe = &mined[0];
    let g = probe.p_members[0] as u32;
    let c = probe.chain[0] as u32;
    let q = Query::new()
        .with_gene(g)
        .with_cond(c)
        .with_min_genes(params.min_genes as u32)
        .with_min_conds((params.min_conds + 1) as u32);
    let got = store.query(&q).unwrap();
    let want: Vec<u32> = mined
        .iter()
        .enumerate()
        .filter(|(_, cl)| {
            cl.genes_iter().any(|x| x == g as usize)
                && cl.chain.contains(&(c as usize))
                && cl.n_genes() >= params.min_genes
                && cl.n_conditions() > params.min_conds
        })
        .map(|(i, _)| i as u32)
        .collect();
    assert_eq!(got, want);

    // Top-k keeps the k largest by covered cells.
    let top = store.query(&Query::new().with_top_k(3)).unwrap();
    assert_eq!(top.len(), 3.min(mined.len()));
    let mut cells: Vec<u64> = mined.iter().map(|c| c.n_cells() as u64).collect();
    cells.sort_unstable_by(|a, b| b.cmp(a));
    for (rank, id) in top.iter().enumerate() {
        assert_eq!(mined[*id as usize].n_cells() as u64, cells[rank]);
    }

    // Overlap: shares ≥1 listed gene and ≥1 listed condition.
    let genes: Vec<u32> = probe.p_members.iter().map(|&x| x as u32).collect();
    let conds: Vec<u32> = probe.chain.iter().map(|&x| x as u32).collect();
    let got = store.overlapping(&genes, &conds);
    let want: Vec<u32> = mined
        .iter()
        .enumerate()
        .filter(|(_, cl)| {
            cl.genes_iter().any(|x| genes.contains(&(x as u32)))
                && cl.chain.iter().any(|&x| conds.contains(&(x as u32)))
        })
        .map(|(i, _)| i as u32)
        .collect();
    assert_eq!(got, want);

    // Containment: superclusters of a stored cluster include itself.
    let supers = store.superclusters_of(probe);
    assert!(supers.contains(&0));
    let want: Vec<u32> = mined
        .iter()
        .enumerate()
        .filter(|&(_, cl)| probe.is_subcluster_of(cl))
        .map(|(i, _)| i as u32)
        .collect();
    assert_eq!(supers, want);

    // Out-of-dictionary query ids are a typed error, not a panic.
    assert!(store.query(&Query::new().with_gene(u32::MAX)).is_err());
    assert!(store.query(&Query::new().with_cond(u32::MAX)).is_err());
}

#[test]
fn empty_store_roundtrips() {
    let m = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    let path = tmp("empty.rcs");
    write_store(&path, &m, &params, &[]);
    let store = ClusterStore::open(&path).unwrap();
    assert_eq!(store.n_clusters(), 0);
    assert_eq!(read_all(&store), Vec::<RegCluster>::new());
    assert_eq!(store.query(&Query::new()).unwrap(), Vec::<u32>::new());
    assert!(matches!(
        store.cluster(0),
        Err(regcluster_store::StoreError::ClusterOutOfBounds { .. })
    ));
}

#[test]
fn writer_rejects_out_of_dictionary_ids_and_poisons() {
    let m = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    let path = tmp("poison.rcs");
    let w = StoreWriter::create(&path, m.gene_names(), m.condition_names(), &params).unwrap();
    let bad = RegCluster {
        chain: vec![0, 99],
        p_members: vec![0],
        n_members: vec![],
    };
    // As a sink: refuses the cluster (cooperative engine stop)…
    assert!(!w.accept(bad));
    // …and keeps refusing afterwards, reporting the failure from finish.
    let ok = RegCluster {
        chain: vec![0, 1],
        p_members: vec![0],
        n_members: vec![],
    };
    assert!(!w.accept(ok));
    assert!(w.finish().is_err());
}

#[test]
fn engine_provenance_roundtrips_and_pre_engine_stores_read_as_none() {
    let m = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    let cluster = RegCluster {
        chain: vec![0, 1],
        p_members: vec![0],
        n_members: vec![],
    };

    // A store written with engine provenance reports it back verbatim —
    // including an engine params string that itself needs JSON escaping.
    let engine_params = r#"{"delta":0.1,"note":"quote \" inside"}"#;
    let path = tmp("provenance.rcs");
    let w = StoreWriter::create_with_engine(
        &path,
        m.gene_names(),
        m.condition_names(),
        &params,
        "pcluster",
        engine_params,
    )
    .unwrap();
    w.write_cluster(&cluster).unwrap();
    w.finish().unwrap();
    let store = ClusterStore::open(&path).unwrap();
    assert_eq!(store.engine(), Some("pcluster"));
    assert_eq!(store.engine_params_json(), Some(engine_params));
    assert_eq!(store.params(), &params);
    assert_eq!(store.stats().engine.as_deref(), Some("pcluster"));

    // A store written through the pre-engine entry point reads back with no
    // engine recorded (the reg-cluster-only era).
    let legacy = tmp("provenance-legacy.rcs");
    let w = StoreWriter::create(&legacy, m.gene_names(), m.condition_names(), &params).unwrap();
    w.write_cluster(&cluster).unwrap();
    w.finish().unwrap();
    let store = ClusterStore::open(&legacy).unwrap();
    assert_eq!(store.engine(), None);
    assert_eq!(store.engine_params_json(), None);
    assert_eq!(store.params(), &params);
    assert_eq!(store.stats().engine, None);
}
