//! Regulation-threshold strategies.
//!
//! §3.1 of the paper defines the default per-gene threshold as a fraction
//! of each gene's expression range (Equation 4) and explicitly lists the
//! alternatives used elsewhere in the literature — an absolute threshold,
//! the average closest-pair difference (OP-Cluster), and a fraction of the
//! average expression value. All four ship with this crate; this example
//! shows how the choice changes what counts as "regulation" for genes with
//! very different dynamic ranges (the hormone-sensitivity motivation of the
//! paper).
//!
//! Run with `cargo run --example custom_threshold`.

use regcluster::core::{mine, MiningParams, RegulationThreshold};
use regcluster::matrix::ExpressionMatrix;

fn main() {
    // One pathway, two sensitivities: the "loud" genes swing over ~40
    // units, the "quiet" genes over ~2 — a 20× difference in magnitude but
    // the same shifting-and-scaling response.
    let base = [0.0, 0.3, 0.55, 0.78, 1.0];
    let mut names: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (i, s1) in [40.0, 36.0].iter().enumerate() {
        names.push(format!("loud{i}"));
        rows.push(base.iter().map(|&b| s1 * b + 5.0).collect());
    }
    for (i, s1) in [2.0, 1.8].iter().enumerate() {
        names.push(format!("quiet{i}"));
        rows.push(base.iter().map(|&b| s1 * b + 1.0).collect());
    }
    let conds = (1..=5).map(|i| format!("t{i}")).collect();
    let matrix = ExpressionMatrix::from_rows(names, conds, rows).expect("well-formed");

    let strategies: Vec<(&str, RegulationThreshold)> = vec![
        (
            "fraction-of-range 0.2 (Eq. 4, the paper's default)",
            RegulationThreshold::FractionOfRange(0.2),
        ),
        (
            "absolute 1.5 (one global γ for all genes)",
            RegulationThreshold::Absolute(1.5),
        ),
        (
            "avg-closest-pair ×0.5",
            RegulationThreshold::AvgClosestPairDiff(0.5),
        ),
        (
            "fraction-of-avg-expression 0.05",
            RegulationThreshold::FractionOfAvgExpression(0.05),
        ),
    ];

    for (label, strategy) in strategies {
        println!("\n=== {label} ===");
        for g in 0..matrix.n_genes() {
            println!(
                "  γ_{} = {:.3}",
                matrix.gene_name(g),
                strategy.resolve(matrix.row(g))
            );
        }
        let params = MiningParams::new(4, 5, 0.0, 0.05)
            .expect("valid")
            .with_threshold(strategy)
            .expect("valid strategy");
        let clusters = mine(&matrix, &params).expect("mining succeeds");
        match clusters.first() {
            Some(c) => println!(
                "  → one cluster with {} genes over {} conditions",
                c.n_genes(),
                c.n_conditions()
            ),
            None => println!("  → no cluster: the quiet genes' steps fall below this γ"),
        }
    }

    println!(
        "\nThe per-gene strategies (fraction-of-range, closest-pair,\n\
         fraction-of-average) keep the quiet genes in the cluster because\n\
         their γ_i scales with their own dynamics; the absolute threshold\n\
         silences them — the exact problem Equation 4 is designed to avoid."
    );
}
