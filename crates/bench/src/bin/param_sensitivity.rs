//! Parameter-sensitivity experiment — how γ and ε shape the output on the
//! (simulated) yeast benchmark.
//!
//! The paper picks `γ = 0.05`, `ε = 1.0` for its §5.2 run and notes that a
//! tighter γ yields fewer genes per cluster. This sweep makes the two dials
//! measurable: cluster count, mean size and runtime as one threshold varies
//! with the other fixed at the paper's setting. Expected shape: raising γ
//! prunes chains (fewer, smaller clusters, faster); raising ε widens
//! windows (more and larger clusters, slower) until it saturates.
//! Results: `results/param_sensitivity.json` + SVGs.

use regcluster_bench::plot::{line_chart, Series};
use regcluster_bench::{quick_mode, time, write_json, write_text};
use regcluster_core::{mine, MiningParams, RegCluster};
use regcluster_datagen::{yeast_like, YeastConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    gamma: f64,
    epsilon: f64,
    n_clusters: usize,
    mean_genes: f64,
    mean_conds: f64,
    runtime_s: f64,
}

fn run_point(matrix: &regcluster_matrix::ExpressionMatrix, gamma: f64, epsilon: f64) -> Point {
    let params = MiningParams::new(20, 6, gamma, epsilon).expect("valid parameters");
    let (clusters, secs) = time(|| mine(matrix, &params).expect("mining succeeds"));
    let n = clusters.len();
    let mean_genes = if n == 0 {
        0.0
    } else {
        clusters.iter().map(RegCluster::n_genes).sum::<usize>() as f64 / n as f64
    };
    let mean_conds = if n == 0 {
        0.0
    } else {
        clusters.iter().map(RegCluster::n_conditions).sum::<usize>() as f64 / n as f64
    };
    Point {
        gamma,
        epsilon,
        n_clusters: n,
        mean_genes,
        mean_conds,
        runtime_s: secs,
    }
}

fn main() {
    let cfg = if quick_mode() {
        YeastConfig {
            n_genes: 800,
            n_modules: 6,
            ..YeastConfig::default()
        }
    } else {
        YeastConfig::default()
    };
    let data = yeast_like(&cfg).expect("feasible");
    println!(
        "parameter sensitivity on the simulated yeast matrix ({} × {})",
        data.matrix.n_genes(),
        data.matrix.n_conditions()
    );

    let gammas = [0.01, 0.02, 0.03, 0.05, 0.07, 0.09, 0.12];
    let epsilons = [0.05, 0.1, 0.25, 0.5, 1.0, 1.5, 2.0];

    let mut points = Vec::new();
    println!("\nγ sweep at ε = 1.0 (the paper's ε):");
    println!(
        "{:>7} {:>9} {:>11} {:>11} {:>9}",
        "γ", "clusters", "mean genes", "mean conds", "time(s)"
    );
    for &g in &gammas {
        let p = run_point(&data.matrix, g, 1.0);
        println!(
            "{:>7.2} {:>9} {:>11.1} {:>11.1} {:>9.2}",
            p.gamma, p.n_clusters, p.mean_genes, p.mean_conds, p.runtime_s
        );
        points.push(p);
    }
    println!("\nε sweep at γ = 0.05 (the paper's γ):");
    println!(
        "{:>7} {:>9} {:>11} {:>11} {:>9}",
        "ε", "clusters", "mean genes", "mean conds", "time(s)"
    );
    for &e in &epsilons {
        let p = run_point(&data.matrix, 0.05, e);
        println!(
            "{:>7.2} {:>9} {:>11.1} {:>11.1} {:>9.2}",
            p.epsilon, p.n_clusters, p.mean_genes, p.mean_conds, p.runtime_s
        );
        points.push(p);
    }

    let gamma_curve = Series::solid(
        "clusters",
        points
            .iter()
            .filter(|p| p.epsilon == 1.0)
            .map(|p| (p.gamma, p.n_clusters as f64))
            .collect(),
    );
    write_text(
        "param_sensitivity_gamma.svg",
        &line_chart(
            "Clusters vs regulation threshold γ (ε = 1.0)",
            "γ",
            "clusters",
            &[gamma_curve],
        ),
    );
    let eps_curve = Series::solid(
        "clusters",
        points
            .iter()
            .filter(|p| p.gamma == 0.05)
            .map(|p| (p.epsilon, p.n_clusters as f64))
            .collect(),
    );
    write_text(
        "param_sensitivity_epsilon.svg",
        &line_chart(
            "Clusters vs coherence threshold ε (γ = 0.05)",
            "ε",
            "clusters",
            &[eps_curve],
        ),
    );
    write_json("param_sensitivity.json", &points);
}
