//! Property-based tests of the matrix substrate.

use proptest::prelude::*;

use regcluster_matrix::{io, missing, stats, transform, ExpressionMatrix};

fn matrix_strategy() -> impl Strategy<Value = ExpressionMatrix> {
    (1usize..=8, 1usize..=8).prop_flat_map(|(g, c)| {
        prop::collection::vec(-1e6f64..1e6, g * c).prop_map(move |values| {
            ExpressionMatrix::from_flat_unlabeled(g, c, values).expect("finite values")
        })
    })
}

proptest! {
    /// Tab-delimited write → read is the identity (values survive the
    /// decimal round-trip because Rust prints f64 with round-trip
    /// precision).
    #[test]
    fn io_roundtrip(m in matrix_strategy()) {
        let mut buf = Vec::new();
        io::write_matrix(&m, &mut buf).expect("write succeeds");
        let back = io::read_matrix(buf.as_slice()).expect("read succeeds");
        prop_assert_eq!(m, back);
    }

    /// Submatrix of everything is the identity; double submatrix composes.
    #[test]
    fn submatrix_identity(m in matrix_strategy()) {
        let all_g: Vec<usize> = (0..m.n_genes()).collect();
        let all_c: Vec<usize> = (0..m.n_conditions()).collect();
        let s = m.submatrix(&all_g, &all_c).expect("in bounds");
        prop_assert_eq!(&m, &s);
    }

    /// Row-mean imputation never changes present cells and fills every hole
    /// with a value inside the row's [min, max] (or the global mean).
    #[test]
    fn imputation_fills_within_row_range(
        m in matrix_strategy(),
        holes in prop::collection::vec(any::<bool>(), 64),
    ) {
        let n = m.n_conditions();
        let cells: Vec<Option<f64>> = m
            .flat_values()
            .iter()
            .enumerate()
            .map(|(i, &v)| if holes[i % holes.len()] { None } else { Some(v) })
            .collect();
        prop_assume!(cells.iter().any(Option::is_some));
        let ragged = io::RaggedMatrix {
            genes: m.gene_names().to_vec(),
            conditions: m.condition_names().to_vec(),
            cells: cells.clone(),
        };
        let filled = missing::impute(&ragged, missing::Imputation::RowMean).expect("imputable");
        for (i, cell) in cells.iter().enumerate() {
            let (g, c) = (i / n, i % n);
            if let Some(v) = cell {
                prop_assert_eq!(filled.value(g, c), *v);
            }
        }
    }

    /// z-score standardization yields mean ≈ 0 and std ∈ {0, 1} per gene.
    #[test]
    fn zscore_properties(m in matrix_strategy()) {
        let z = transform::zscore_by_gene(&m);
        for g in 0..z.n_genes() {
            prop_assert!(z.gene_mean(g).abs() < 1e-6);
            let s = z.gene_std(g);
            prop_assert!(s.abs() < 1e-6 || (s - 1.0).abs() < 1e-6);
        }
    }

    /// Quantile normalization makes all condition distributions identical
    /// and preserves within-condition value order.
    #[test]
    fn quantile_normalization_properties(m in matrix_strategy()) {
        let q = stats::quantile_normalize(&m);
        let sorted_col = |mat: &ExpressionMatrix, c: usize| {
            let mut v: Vec<f64> = mat.column_iter(c).collect();
            v.sort_by(f64::total_cmp);
            v
        };
        let reference = sorted_col(&q, 0);
        for c in 1..q.n_conditions() {
            let col = sorted_col(&q, c);
            for (a, b) in col.iter().zip(reference.iter()) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
        // Order preservation within each column (strict order never flips).
        for c in 0..m.n_conditions() {
            for g1 in 0..m.n_genes() {
                for g2 in 0..m.n_genes() {
                    if m.value(g1, c) < m.value(g2, c) {
                        prop_assert!(q.value(g1, c) <= q.value(g2, c));
                    }
                }
            }
        }
    }

    /// Pearson correlation is symmetric and within [-1, 1].
    #[test]
    fn pearson_properties(m in matrix_strategy()) {
        for g1 in 0..m.n_genes() {
            for g2 in 0..m.n_genes() {
                let r = stats::pearson(&m, g1, g2);
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
                let r2 = stats::pearson(&m, g2, g1);
                prop_assert!((r - r2).abs() < 1e-12);
            }
        }
    }
}
