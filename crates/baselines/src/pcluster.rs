//! pCluster: mining pure *shifting* patterns (Wang et al., SIGMOD 2002).
//!
//! A submatrix `(X, Y)` is a **δ-pCluster** when every 2 × 2 submatrix
//! `({i, j}, {a, b})` has
//!
//! ```text
//! pScore = |(d_ia − d_ib) − (d_ja − d_jb)| ≤ δ,
//! ```
//!
//! equivalently: for every gene pair `i, j ∈ X`, the spread of the
//! differences `{d_ia − d_ja : a ∈ Y}` is at most δ. This captures pure
//! shifting patterns (`d_i ≈ d_j + s2`) — the paper's Equation 1 family —
//! and, run on log-transformed data, pure scaling patterns (see
//! [`crate::scaling`]).
//!
//! ### Implementation fidelity
//!
//! Candidate condition sets are generated exactly as in the original paper:
//! for every gene pair, the **maximal dimension sets** (MDS) are the maximal
//! windows of δ-close differences with at least `MinC` conditions. The
//! original then intersects candidates through a prefix tree; we keep the
//! candidate pool explicit (pair MDS plus one round of pairwise
//! intersections of the most frequent sets, bounded by
//! [`PClusterParams::max_candidate_sets`]) and find the maximal gene cliques
//! for each candidate with a pivoting Bron–Kerbosch, then grow each
//! cluster's condition set to maximality. Every reported bicluster is exact
//! (pairwise-validated); the bounded candidate pool only limits *recall* on
//! adversarial inputs, which we accept for a baseline and verify is
//! irrelevant on the planted benchmarks (see tests).

use std::collections::HashMap;

use regcluster_core::MineControl;
use regcluster_matrix::{CondId, ExpressionMatrix, GeneId};

use crate::bicluster::{retain_maximal, BaselineRun};
use crate::Bicluster;

/// Parameters of the pCluster miner.
#[derive(Debug, Clone, PartialEq)]
pub struct PClusterParams {
    /// Maximum pScore `δ`.
    pub delta: f64,
    /// Minimum genes per cluster.
    pub min_genes: usize,
    /// Minimum conditions per cluster.
    pub min_conds: usize,
    /// Bound on the candidate condition-set pool (most frequent kept).
    pub max_candidate_sets: usize,
    /// Bound on maximal cliques enumerated per candidate set.
    pub clique_budget: usize,
}

impl Default for PClusterParams {
    fn default() -> Self {
        Self {
            delta: 0.1,
            min_genes: 2,
            min_conds: 2,
            max_candidate_sets: 2000,
            clique_budget: 5000,
        }
    }
}

/// Mines δ-pClusters of at least `min_genes × min_conds`.
///
/// Output clusters are maximal (none contained in another), sorted by
/// descending cell count then lexicographically.
///
/// ```
/// use regcluster_baselines::{pcluster, PClusterParams};
/// use regcluster_matrix::ExpressionMatrix;
///
/// // Three genes that are exact shifts of one another.
/// let base = [1.0, 4.0, 2.0, 8.0];
/// let m = ExpressionMatrix::from_flat_unlabeled(
///     3,
///     4,
///     base.iter()
///         .map(|v| *v)
///         .chain(base.iter().map(|v| v + 3.0))
///         .chain(base.iter().map(|v| v - 2.0))
///         .collect(),
/// )
/// .unwrap();
/// let params = PClusterParams { delta: 1e-9, min_genes: 3, min_conds: 4, ..Default::default() };
/// let found = pcluster(&m, &params);
/// assert_eq!(found.len(), 1);
/// assert_eq!(found[0].genes, vec![0, 1, 2]);
/// ```
pub fn pcluster(matrix: &ExpressionMatrix, params: &PClusterParams) -> Vec<Bicluster> {
    pcluster_with_control(matrix, params, &MineControl::new()).clusters
}

/// As [`pcluster`], polling `control` so a deadline or cancellation bounds
/// the run.
///
/// The two long-running phases — pairwise candidate generation and
/// per-candidate clique search — each check the control once per outer
/// unit of work (gene, candidate set). A tripped control stops the search
/// and finalizes whatever was found so far: the returned
/// [`BaselineRun::clusters`] are still pairwise-validated and maximal,
/// only incomplete, and [`BaselineRun::truncated`] is set.
pub fn pcluster_with_control(
    matrix: &ExpressionMatrix,
    params: &PClusterParams,
    control: &MineControl,
) -> BaselineRun {
    assert!(params.delta >= 0.0, "delta must be ≥ 0");
    assert!(
        params.min_genes >= 2 && params.min_conds >= 2,
        "pClusters need ≥ 2 genes and ≥ 2 conditions"
    );
    let n_genes = matrix.n_genes();
    let n_conds = matrix.n_conditions();
    if n_genes < params.min_genes || n_conds < params.min_conds {
        return BaselineRun {
            clusters: Vec::new(),
            truncated: control.is_cancelled(),
        };
    }
    let mut truncated = false;

    // 1. Pairwise maximal dimension sets.
    let mut candidate_freq: HashMap<Vec<CondId>, usize> = HashMap::new();
    let mut diffs: Vec<(f64, CondId)> = Vec::with_capacity(n_conds);
    for i in 0..n_genes {
        if control.is_cancelled() {
            truncated = true;
            break;
        }
        let row_i = matrix.row(i);
        for j in i + 1..n_genes {
            let row_j = matrix.row(j);
            diffs.clear();
            diffs.extend((0..n_conds).map(|c| (row_i[c] - row_j[c], c)));
            diffs.sort_by(|a, b| a.0.total_cmp(&b.0));
            // Maximal windows with span ≤ δ.
            let mut end = 0usize;
            let mut prev_end = 0usize;
            for start in 0..n_conds {
                if end < start {
                    end = start;
                }
                while end < n_conds && diffs[end].0 - diffs[start].0 <= params.delta {
                    end += 1;
                }
                if (start == 0 || prev_end < end) && end - start >= params.min_conds {
                    let mut set: Vec<CondId> = diffs[start..end].iter().map(|&(_, c)| c).collect();
                    set.sort_unstable();
                    *candidate_freq.entry(set).or_insert(0) += 1;
                }
                prev_end = end;
                if end == n_conds && diffs[n_conds - 1].0 - diffs[start].0 <= params.delta {
                    break;
                }
            }
        }
    }

    // 2. Bound the pool, then add one round of pairwise intersections of the
    // most frequent candidates (recovers condition sets that are never a
    // single pair's full MDS).
    let mut candidates: Vec<(Vec<CondId>, usize)> = candidate_freq.into_iter().collect();
    candidates.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then(b.0.len().cmp(&a.0.len()))
            .then(a.0.cmp(&b.0))
    });
    candidates.truncate(params.max_candidate_sets);
    let intersect_top = candidates.len().min(200);
    let mut extra: Vec<Vec<CondId>> = Vec::new();
    for a in 0..intersect_top {
        for b in a + 1..intersect_top {
            let inter = intersect_sorted(&candidates[a].0, &candidates[b].0);
            if inter.len() >= params.min_conds
                && inter != candidates[a].0
                && inter != candidates[b].0
            {
                extra.push(inter);
            }
        }
    }
    let mut pool: Vec<Vec<CondId>> = candidates.into_iter().map(|(s, _)| s).collect();
    pool.extend(extra);
    pool.sort();
    pool.dedup();

    // 3. For each candidate set, find maximal gene cliques under the
    // pairwise-spread-≤-δ relation, then grow conditions to maximality.
    let mut out: Vec<Bicluster> = Vec::new();
    for y in &pool {
        if control.is_cancelled() {
            truncated = true;
            break;
        }
        let cliques = gene_cliques(matrix, y, params);
        for clique in cliques {
            let full_y = grow_conditions(matrix, &clique, y, params.delta);
            out.push(Bicluster::new(clique, full_y));
        }
    }

    let mut out = retain_maximal(out);
    out.sort_by(|a, b| {
        (b.n_genes() * b.n_conds())
            .cmp(&(a.n_genes() * a.n_conds()))
            .then_with(|| a.genes.cmp(&b.genes))
            .then_with(|| a.conds.cmp(&b.conds))
    });
    BaselineRun {
        clusters: out,
        truncated,
    }
}

fn intersect_sorted(a: &[CondId], b: &[CondId]) -> Vec<CondId> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Spread of `d_i − d_j` over `y`; a pair is compatible iff spread ≤ δ.
fn pair_spread(matrix: &ExpressionMatrix, i: GeneId, j: GeneId, y: &[CondId]) -> f64 {
    let row_i = matrix.row(i);
    let row_j = matrix.row(j);
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &c in y {
        let d = row_i[c] - row_j[c];
        lo = lo.min(d);
        hi = hi.max(d);
    }
    hi - lo
}

/// Maximal cliques (size ≥ MinG) of the compatibility graph over `y`.
fn gene_cliques(
    matrix: &ExpressionMatrix,
    y: &[CondId],
    params: &PClusterParams,
) -> Vec<Vec<GeneId>> {
    let n = matrix.n_genes();
    // Adjacency over genes; degree-prune to members of ≥ MinG−1 edges.
    let mut adj: Vec<Vec<bool>> = vec![vec![false; n]; n];
    let mut degree = vec![0usize; n];
    for i in 0..n {
        for j in i + 1..n {
            if pair_spread(matrix, i, j, y) <= params.delta {
                adj[i][j] = true;
                adj[j][i] = true;
                degree[i] += 1;
                degree[j] += 1;
            }
        }
    }
    let vertices: Vec<GeneId> = (0..n)
        .filter(|&g| degree[g] + 1 >= params.min_genes)
        .collect();
    if vertices.len() < params.min_genes {
        return Vec::new();
    }

    let mut cliques = Vec::new();
    let mut budget = params.clique_budget;
    let mut r: Vec<GeneId> = Vec::new();
    bron_kerbosch(
        &adj,
        &mut r,
        vertices.clone(),
        Vec::new(),
        params.min_genes,
        &mut cliques,
        &mut budget,
    );
    cliques
}

/// Pivoting Bron–Kerbosch, pruned when `|R| + |P|` cannot reach `min_size`,
/// stopping once the budget is exhausted.
fn bron_kerbosch(
    adj: &[Vec<bool>],
    r: &mut Vec<GeneId>,
    mut p: Vec<GeneId>,
    mut x: Vec<GeneId>,
    min_size: usize,
    out: &mut Vec<Vec<GeneId>>,
    budget: &mut usize,
) {
    if *budget == 0 {
        return;
    }
    *budget -= 1;
    if p.is_empty() && x.is_empty() {
        if r.len() >= min_size {
            let mut clique = r.clone();
            clique.sort_unstable();
            out.push(clique);
        }
        return;
    }
    if r.len() + p.len() < min_size {
        return;
    }
    // Pivot: vertex of P ∪ X with most neighbours in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&v| adj[u][v]).count())
        .expect("P ∪ X non-empty here");
    let ext: Vec<GeneId> = p.iter().copied().filter(|&v| !adj[pivot][v]).collect();
    for v in ext {
        let p_next: Vec<GeneId> = p.iter().copied().filter(|&u| adj[v][u]).collect();
        let x_next: Vec<GeneId> = x.iter().copied().filter(|&u| adj[v][u]).collect();
        r.push(v);
        bron_kerbosch(adj, r, p_next, x_next, min_size, out, budget);
        r.pop();
        p.retain(|&u| u != v);
        x.push(v);
    }
}

/// Greedily adds conditions that keep every gene pair's spread within δ.
fn grow_conditions(
    matrix: &ExpressionMatrix,
    genes: &[GeneId],
    y: &[CondId],
    delta: f64,
) -> Vec<CondId> {
    let mut current: Vec<CondId> = y.to_vec();
    loop {
        let mut added = false;
        for c in 0..matrix.n_conditions() {
            if current.contains(&c) {
                continue;
            }
            let mut trial = current.clone();
            trial.push(c);
            let ok = genes.iter().enumerate().all(|(idx, &i)| {
                genes[idx + 1..]
                    .iter()
                    .all(|&j| pair_spread(matrix, i, j, &trial) <= delta)
            });
            if ok {
                current.push(c);
                added = true;
            }
        }
        if !added {
            break;
        }
    }
    current.sort_unstable();
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: Vec<Vec<f64>>) -> ExpressionMatrix {
        let genes = (0..rows.len()).map(|i| format!("g{i}")).collect();
        let conds = (0..rows[0].len()).map(|i| format!("c{i}")).collect();
        ExpressionMatrix::from_rows(genes, conds, rows).unwrap()
    }

    #[test]
    fn finds_exact_shifting_family() {
        // g0..g2 are shifts of one another on all 5 conditions; g3 is noise.
        let base = [1.0f64, 4.0, 2.0, 8.0, 5.0];
        let rows = vec![
            base.to_vec(),
            base.iter().map(|v| v + 3.0).collect(),
            base.iter().map(|v| v - 2.0).collect(),
            vec![9.0, 0.0, 7.0, 1.0, 3.0],
        ];
        let m = matrix(rows);
        let params = PClusterParams {
            delta: 1e-9,
            min_genes: 3,
            min_conds: 5,
            ..Default::default()
        };
        let found = pcluster(&m, &params);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].genes, vec![0, 1, 2]);
        assert_eq!(found[0].conds, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn subspace_shifting_pattern_is_found() {
        // Shifting only on conditions {0, 2, 4}; other columns scrambled
        // per gene.
        let rows = vec![
            vec![1.0, 9.0, 4.0, 0.5, 6.0],
            vec![3.0, 2.0, 6.0, 9.5, 8.0],
            vec![0.0, 5.5, 3.0, 3.3, 5.0],
        ];
        let m = matrix(rows);
        let params = PClusterParams {
            delta: 1e-9,
            min_genes: 3,
            min_conds: 3,
            ..Default::default()
        };
        let found = pcluster(&m, &params);
        assert!(
            found
                .iter()
                .any(|b| b.genes == vec![0, 1, 2] && b.conds == vec![0, 2, 4]),
            "{found:?}"
        );
    }

    #[test]
    fn delta_tolerance_admits_near_shifts() {
        let base = [1.0f64, 4.0, 2.0, 8.0];
        let rows = vec![
            base.to_vec(),
            base.iter().map(|v| v + 3.0).collect(),
            // Off by up to 0.2 from a perfect shift.
            vec![2.1, 5.0, 3.2, 9.0],
        ];
        let m = matrix(rows);
        let strict = PClusterParams {
            delta: 0.01,
            min_genes: 3,
            min_conds: 4,
            ..Default::default()
        };
        assert!(pcluster(&m, &strict).is_empty());
        let loose = PClusterParams {
            delta: 0.5,
            min_genes: 3,
            min_conds: 4,
            ..Default::default()
        };
        let found = pcluster(&m, &loose);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].genes, vec![0, 1, 2]);
    }

    #[test]
    fn every_output_is_a_valid_delta_pcluster() {
        // Deterministic pseudo-random matrix; all outputs must verify.
        let rows: Vec<Vec<f64>> = (0..8)
            .map(|i| {
                (0..6)
                    .map(|j| (((i * 31 + j * 17 + 5) % 23) as f64) / 2.3)
                    .collect()
            })
            .collect();
        let m = matrix(rows);
        let params = PClusterParams {
            delta: 0.8,
            min_genes: 2,
            min_conds: 2,
            ..Default::default()
        };
        for bc in pcluster(&m, &params) {
            for (ai, &i) in bc.genes.iter().enumerate() {
                for &j in &bc.genes[ai + 1..] {
                    assert!(pair_spread(&m, i, j, &bc.conds) <= params.delta + 1e-12);
                }
            }
            assert!(bc.n_genes() >= 2 && bc.n_conds() >= 2);
        }
    }

    #[test]
    fn output_is_maximal() {
        let base = [1.0f64, 4.0, 2.0, 8.0, 5.0];
        let rows = vec![
            base.to_vec(),
            base.iter().map(|v| v + 1.0).collect(),
            base.iter().map(|v| v + 2.0).collect(),
        ];
        let m = matrix(rows);
        let params = PClusterParams {
            delta: 1e-9,
            min_genes: 2,
            min_conds: 2,
            ..Default::default()
        };
        let found = pcluster(&m, &params);
        // The full 3×5 cluster subsumes all 2-gene subsets.
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].genes.len(), 3);
        assert_eq!(found[0].conds.len(), 5);
    }

    #[test]
    fn misses_shifting_and_scaling_patterns() {
        // The paper's core claim: a mixed shifting-and-scaling family is NOT
        // a δ-pCluster for small δ. g1 = 2·g0 + 1 on all conditions.
        let g0 = [1.0f64, 4.0, 2.0, 8.0, 5.0];
        let rows = vec![g0.to_vec(), g0.iter().map(|v| 2.0 * v + 1.0).collect()];
        let m = matrix(rows);
        let params = PClusterParams {
            delta: 0.5,
            min_genes: 2,
            min_conds: 4,
            ..Default::default()
        };
        assert!(pcluster(&m, &params).is_empty());
    }

    #[test]
    fn precancelled_control_returns_truncated_and_empty() {
        let base = [1.0f64, 4.0, 2.0, 8.0, 5.0];
        let rows = vec![
            base.to_vec(),
            base.iter().map(|v| v + 3.0).collect(),
            base.iter().map(|v| v - 2.0).collect(),
        ];
        let m = matrix(rows);
        let params = PClusterParams {
            delta: 1e-9,
            min_genes: 3,
            min_conds: 5,
            ..Default::default()
        };
        let control = MineControl::new();
        control.cancel();
        let run = pcluster_with_control(&m, &params, &control);
        assert!(run.truncated);
        assert!(run.clusters.is_empty());
        // An untripped control reproduces the plain entry point.
        let run = pcluster_with_control(&m, &params, &MineControl::new());
        assert!(!run.truncated);
        assert_eq!(run.clusters, pcluster(&m, &params));
    }

    #[test]
    fn empty_and_small_inputs() {
        let m = matrix(vec![vec![1.0, 2.0]]);
        let params = PClusterParams {
            min_genes: 2,
            min_conds: 2,
            ..Default::default()
        };
        assert!(pcluster(&m, &params).is_empty());
    }
}
