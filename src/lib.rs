#![warn(missing_docs)]

//! # regcluster
//!
//! A Rust reproduction of Xu, Lu, Tung & Wang, *Mining Shifting-and-Scaling
//! Co-Regulation Patterns on Gene Expression Profiles* (ICDE 2006).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`matrix`] — the expression-matrix substrate (storage, I/O, transforms,
//!   missing values);
//! * [`core`] — the reg-cluster model and miner (`RWave^γ` models,
//!   coherence, bi-directional depth-first chain enumeration);
//! * [`datagen`] — dataset generators (running example, the paper's
//!   synthetic generator, simulated yeast benchmark, synthetic GO database);
//! * [`baselines`] — the prior-work algorithms the paper compares against
//!   (Cheng–Church, pCluster, log-space scaling miner, OPSM);
//! * [`engines`] — every algorithm behind the uniform
//!   [`BiclusterEngine`](regcluster_core::BiclusterEngine) contract, plus
//!   a name-keyed registry (`mine --engine <name>` dispatch);
//! * [`eval`] — evaluation (recovery/relevance match scores, overlap
//!   statistics, GO enrichment, reports);
//! * [`store`] — the indexed on-disk `.rcs` cluster store (streaming
//!   writer sink, checksum-verified reader, by-gene/by-condition queries);
//! * [`cluster`] — the distributed mining cluster (coordinator/worker
//!   root-leasing over HTTP, bit-identical shard merge into generations;
//!   the `regcluster coordinator` / `regcluster worker` subcommands);
//! * [`obs`] — dependency-free telemetry (lock-free metrics registry,
//!   phase spans, Prometheus/JSON exposition; the metric catalogue is
//!   documented in `docs/OBSERVABILITY.md`).
//!
//! The most common entry point:
//!
//! ```
//! use regcluster::prelude::*;
//!
//! let matrix = regcluster::datagen::running_example();
//! let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
//! let clusters = mine(&matrix, &params).unwrap();
//! assert_eq!(clusters.len(), 1);
//! ```

pub use regcluster_baselines as baselines;
pub use regcluster_cluster as cluster;
pub use regcluster_core as core;
pub use regcluster_datagen as datagen;
pub use regcluster_engines as engines;
pub use regcluster_eval as eval;
pub use regcluster_matrix as matrix;
pub use regcluster_obs as obs;
pub use regcluster_store as store;

/// The names needed by almost every user of the library.
pub mod prelude {
    pub use regcluster_core::{
        mine, mine_engine, mine_engine_with, mine_parallel, mine_with_observer, EngineConfig,
        MineControl, MiningParams, RegCluster, RegulationThreshold,
    };
    pub use regcluster_matrix::ExpressionMatrix;
}
