//! Tab-delimited expression-matrix I/O.
//!
//! The on-disk format follows the convention of the yeast benchmark referenced
//! by the paper (Tavazoie et al., available from the Church lab): a header
//! line of condition labels, then one line per gene consisting of a gene label
//! followed by one expression value per condition, all tab-separated:
//!
//! ```text
//! GENE\tc1\tc2\tc3
//! g1\t10\t-14.5\t15
//! g2\t20\t15\t15
//! ```
//!
//! Missing values are common in microarray data; tokens that are empty, `NA`,
//! `NaN` or `?` (case-insensitive) parse to holes. [`read_matrix`] rejects
//! holes; [`read_ragged`] keeps them as `Option<f64>` so callers can impute
//! them with [`crate::missing`].
//!
//! Unquoted comma-separated files are accepted too: when the header line
//! contains commas and no tabs, `,` is used as the delimiter.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::{ExpressionMatrix, MatrixError};

/// A parsed matrix that may contain missing values.
#[derive(Debug, Clone, PartialEq)]
pub struct RaggedMatrix {
    /// Gene labels, one per data row.
    pub genes: Vec<String>,
    /// Condition labels from the header.
    pub conditions: Vec<String>,
    /// Row-major cells; `None` marks a missing value.
    pub cells: Vec<Option<f64>>,
}

impl RaggedMatrix {
    /// Number of missing cells.
    pub fn n_missing(&self) -> usize {
        self.cells.iter().filter(|c| c.is_none()).count()
    }

    /// Converts into a complete [`ExpressionMatrix`].
    ///
    /// # Errors
    ///
    /// Returns an error naming the first missing cell, if any.
    pub fn into_complete(self) -> Result<ExpressionMatrix, MatrixError> {
        let n = self.conditions.len();
        let mut values = Vec::with_capacity(self.cells.len());
        for (i, cell) in self.cells.iter().enumerate() {
            match cell {
                Some(v) => values.push(*v),
                None => {
                    return Err(MatrixError::BadValue {
                        row: i / n,
                        col: i % n,
                        token: "<missing>".into(),
                    })
                }
            }
        }
        ExpressionMatrix::from_flat(self.genes, self.conditions, values)
    }
}

fn is_missing_token(tok: &str) -> bool {
    tok.is_empty()
        || tok.eq_ignore_ascii_case("na")
        || tok.eq_ignore_ascii_case("nan")
        || tok == "?"
}

/// Parses a tab-delimited matrix, keeping missing values as holes.
///
/// Blank lines and lines starting with `#` are skipped. The first cell of the
/// header (the corner above the gene-label column) is ignored.
///
/// # Errors
///
/// Returns an error on ragged rows, unparsable numeric tokens, duplicate
/// labels or an empty matrix.
pub fn read_ragged<R: Read>(reader: R) -> Result<RaggedMatrix, MatrixError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines();

    let header = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                let trimmed = line.trim_end_matches(['\r', '\n']);
                if trimmed.trim().is_empty() || trimmed.starts_with('#') {
                    continue;
                }
                break trimmed.to_string();
            }
            None => return Err(MatrixError::Empty),
        }
    };

    // Delimiter auto-detection: tab-separated is the native format; a
    // header with commas and no tabs is treated as (unquoted) CSV.
    let delimiter = if header.contains('\t') || !header.contains(',') {
        '\t'
    } else {
        ','
    };

    let mut header_cells = header.split(delimiter);
    let _corner = header_cells.next();
    let conditions: Vec<String> = header_cells.map(|s| s.trim().to_string()).collect();
    if conditions.is_empty() {
        return Err(MatrixError::Empty);
    }

    let mut genes = Vec::new();
    let mut cells = Vec::new();
    let mut row = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.trim().is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split(delimiter);
        let gene = fields
            .next()
            .expect("split always yields at least one field")
            .trim()
            .to_string();
        let mut count = 0usize;
        for (col, tok) in fields.enumerate() {
            let tok = tok.trim();
            if col >= conditions.len() {
                return Err(MatrixError::RaggedRow {
                    row,
                    expected: conditions.len(),
                    found: col + 1,
                });
            }
            if is_missing_token(tok) {
                cells.push(None);
            } else {
                let v: f64 = tok.parse().map_err(|_| MatrixError::BadValue {
                    row,
                    col,
                    token: tok.to_string(),
                })?;
                if !v.is_finite() {
                    return Err(MatrixError::NonFinite {
                        gene: row,
                        cond: col,
                    });
                }
                cells.push(Some(v));
            }
            count += 1;
        }
        if count != conditions.len() {
            return Err(MatrixError::RaggedRow {
                row,
                expected: conditions.len(),
                found: count,
            });
        }
        genes.push(gene);
        row += 1;
    }
    if genes.is_empty() {
        return Err(MatrixError::Empty);
    }
    // Validate label uniqueness by round-tripping through the constructor on
    // a dummy buffer only when complete; do it directly here instead.
    {
        let mut seen = std::collections::HashSet::new();
        for g in &genes {
            if !seen.insert(g.as_str()) {
                return Err(MatrixError::DuplicateLabel(g.clone()));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for c in &conditions {
            if !seen.insert(c.as_str()) {
                return Err(MatrixError::DuplicateLabel(c.clone()));
            }
        }
    }
    Ok(RaggedMatrix {
        genes,
        conditions,
        cells,
    })
}

/// Parses a tab-delimited matrix that must be complete (no missing values).
///
/// # Errors
///
/// As [`read_ragged`], plus an error if any cell is missing.
pub fn read_matrix<R: Read>(reader: R) -> Result<ExpressionMatrix, MatrixError> {
    read_ragged(reader)?.into_complete()
}

/// Reads a matrix from a file path. See [`read_matrix`].
///
/// # Errors
///
/// As [`read_matrix`], plus file-open failures.
pub fn read_matrix_file(path: impl AsRef<Path>) -> Result<ExpressionMatrix, MatrixError> {
    let file = std::fs::File::open(path)?;
    read_matrix(file)
}

/// Reads a possibly-incomplete matrix from a file path. See [`read_ragged`].
///
/// # Errors
///
/// As [`read_ragged`], plus file-open failures.
pub fn read_ragged_file(path: impl AsRef<Path>) -> Result<RaggedMatrix, MatrixError> {
    let file = std::fs::File::open(path)?;
    read_ragged(file)
}

/// Writes a matrix in the tab-delimited format accepted by [`read_matrix`].
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_matrix<W: Write>(
    matrix: &ExpressionMatrix,
    writer: &mut W,
) -> Result<(), MatrixError> {
    write!(writer, "GENE")?;
    for c in matrix.condition_names() {
        write!(writer, "\t{c}")?;
    }
    writeln!(writer)?;
    for (g, row) in matrix.rows() {
        write!(writer, "{}", matrix.gene_name(g))?;
        for v in row {
            write!(writer, "\t{v}")?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Writes a matrix to a file path. See [`write_matrix`].
///
/// # Errors
///
/// As [`write_matrix`], plus file-create failures.
pub fn write_matrix_file(
    matrix: &ExpressionMatrix,
    path: impl AsRef<Path>,
) -> Result<(), MatrixError> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_matrix(matrix, &mut file)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "GENE\tc1\tc2\tc3\ng1\t1.5\t-2\t3\ng2\t0\t0.25\t-0.5\n";

    #[test]
    fn parses_complete_matrix() {
        let m = read_matrix(SAMPLE.as_bytes()).unwrap();
        assert_eq!(m.n_genes(), 2);
        assert_eq!(m.n_conditions(), 3);
        assert_eq!(m.value(0, 1), -2.0);
        assert_eq!(m.gene_name(1), "g2");
        assert_eq!(m.condition_name(2), "c3");
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# a comment\n\nGENE\tc1\n# another\ng1\t4\n\n";
        let m = read_matrix(text.as_bytes()).unwrap();
        assert_eq!(m.n_genes(), 1);
        assert_eq!(m.value(0, 0), 4.0);
    }

    #[test]
    fn handles_crlf() {
        let text = "GENE\tc1\tc2\r\ng1\t1\t2\r\n";
        let m = read_matrix(text.as_bytes()).unwrap();
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn csv_delimiter_is_auto_detected() {
        let text = "GENE,c1,c2\ng1,1.5,-2\ng2,0,3\n";
        let m = read_matrix(text.as_bytes()).unwrap();
        assert_eq!(m.n_genes(), 2);
        assert_eq!(m.value(0, 1), -2.0);
        assert_eq!(m.condition_name(0), "c1");
        // A tab header with commas inside labels stays tab-delimited.
        let text = "GENE\ta,b\tc\ng1\t1\t2\n";
        let m = read_matrix(text.as_bytes()).unwrap();
        assert_eq!(m.condition_name(0), "a,b");
    }

    #[test]
    fn missing_markers_become_holes() {
        let text = "GENE\tc1\tc2\tc3\tc4\ng1\t1\tNA\t?\t\n";
        let r = read_ragged(text.as_bytes()).unwrap();
        assert_eq!(r.n_missing(), 3);
        assert_eq!(r.cells[0], Some(1.0));
        assert!(read_matrix(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_ragged_rows() {
        let text = "GENE\tc1\tc2\ng1\t1\n";
        assert!(matches!(
            read_matrix(text.as_bytes()),
            Err(MatrixError::RaggedRow {
                row: 0,
                expected: 2,
                found: 1
            })
        ));
        let text = "GENE\tc1\ng1\t1\t2\n";
        assert!(matches!(
            read_matrix(text.as_bytes()),
            Err(MatrixError::RaggedRow { .. })
        ));
    }

    #[test]
    fn rejects_bad_tokens() {
        let text = "GENE\tc1\ng1\tabc\n";
        assert!(matches!(
            read_matrix(text.as_bytes()),
            Err(MatrixError::BadValue { row: 0, col: 0, .. })
        ));
    }

    #[test]
    fn rejects_duplicate_gene_labels() {
        let text = "GENE\tc1\ng1\t1\ng1\t2\n";
        assert!(matches!(
            read_matrix(text.as_bytes()),
            Err(MatrixError::DuplicateLabel(_))
        ));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(
            read_matrix("".as_bytes()),
            Err(MatrixError::Empty)
        ));
        assert!(matches!(
            read_matrix("GENE\tc1\n".as_bytes()),
            Err(MatrixError::Empty)
        ));
    }

    #[test]
    fn write_read_roundtrip() {
        let m = read_matrix(SAMPLE.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_matrix(&m, &mut buf).unwrap();
        let back = read_matrix(buf.as_slice()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("regcluster-matrix-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.tsv");
        let m = read_matrix(SAMPLE.as_bytes()).unwrap();
        write_matrix_file(&m, &path).unwrap();
        let back = read_matrix_file(&path).unwrap();
        assert_eq!(m, back);
        std::fs::remove_file(&path).ok();
    }
}
