//! MicroCluster — the 2D core of TriCluster (Zhao & Zaki, SIGMOD 2005),
//! the paper's pure-*scaling* comparator \[26\], mined natively.
//!
//! TriCluster's model on a gene × condition slice: a cluster is valid when
//! for every condition pair `(a, b)` the **expression ratios**
//! `d_gb / d_ga` of all member genes agree within a multiplicative
//! tolerance (`max/min ≤ 1 + ε`). That is exactly the pure scaling pattern
//! `d_i = s1 · d_j` of the paper's Equation 2 family; shifting-and-scaling
//! patterns blow the ratio range up, which is the limitation §1.3 points
//! out ("the coexistence of positively and negatively correlated genes
//! would lead to a rather large … expression ratio range").
//!
//! The algorithm follows TriCluster's first phase:
//!
//! 1. for every ordered condition pair `(a, b)`, sort the genes by ratio
//!    and extract the maximal ratio-range windows with ≥ `MinG` genes —
//!    these form a **multigraph** over conditions whose edges carry gene
//!    sets;
//! 2. depth-first extend condition sets along the edges, intersecting the
//!    gene sets, pruning when the intersection drops below `MinG`;
//! 3. validate every candidate against the pairwise ratio-range definition
//!    and keep the maximal biclusters.
//!
//! Complementary to [`crate::scaling`] (pCluster after a log transform):
//! the two find the same family on clean data but tolerate noise
//! differently (multiplicative band here, additive log-space band there).

use regcluster_matrix::{CondId, ExpressionMatrix, GeneId};

use crate::bicluster::retain_maximal;
use crate::Bicluster;

/// Parameters of the MicroCluster miner.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroClusterParams {
    /// Multiplicative ratio tolerance: a window is coherent when
    /// `max_ratio / min_ratio ≤ 1 + epsilon`.
    pub epsilon: f64,
    /// Minimum genes per cluster.
    pub min_genes: usize,
    /// Minimum conditions per cluster.
    pub min_conds: usize,
    /// Cap on reported clusters.
    pub max_clusters: usize,
    /// Bound on DFS states visited (a completeness budget, like
    /// [`crate::pcluster::PClusterParams::clique_budget`]): generous for
    /// real workloads, prevents blow-ups at extreme ε.
    pub state_budget: usize,
}

impl Default for MicroClusterParams {
    fn default() -> Self {
        Self {
            epsilon: 0.01,
            min_genes: 2,
            min_conds: 2,
            max_clusters: 100,
            state_budget: 100_000,
        }
    }
}

/// One multigraph edge: condition pair plus a coherent gene set.
struct Edge {
    a: CondId,
    b: CondId,
    genes: Vec<GeneId>,
}

/// Maximal ratio windows for one ordered condition pair.
fn ratio_windows(
    matrix: &ExpressionMatrix,
    a: CondId,
    b: CondId,
    params: &MicroClusterParams,
) -> Vec<Vec<GeneId>> {
    let mut ratios: Vec<(f64, GeneId)> = (0..matrix.n_genes())
        .filter_map(|g| {
            let da = matrix.value(g, a);
            let db = matrix.value(g, b);
            // TriCluster's ratios are defined on positive expression; skip
            // genes where the ratio is undefined or non-positive.
            (da > 0.0 && db > 0.0).then(|| (db / da, g))
        })
        .collect();
    if ratios.len() < params.min_genes {
        return Vec::new();
    }
    ratios.sort_by(|x, y| x.0.total_cmp(&y.0));
    let band = 1.0 + params.epsilon;

    let mut out = Vec::new();
    let n = ratios.len();
    let mut end = 0usize;
    let mut prev_end = 0usize;
    for start in 0..n {
        if end < start {
            end = start;
        }
        while end < n && ratios[end].0 <= ratios[start].0 * band {
            end += 1;
        }
        if (start == 0 || prev_end < end) && end - start >= params.min_genes {
            let mut genes: Vec<GeneId> = ratios[start..end].iter().map(|&(_, g)| g).collect();
            genes.sort_unstable();
            out.push(genes);
        }
        prev_end = end;
        if end == n && ratios[n - 1].0 <= ratios[start].0 * band {
            break;
        }
    }
    out
}

fn intersect_sorted(a: &[GeneId], b: &[GeneId]) -> Vec<GeneId> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Pairwise ratio-coherence check straight from the model definition.
fn is_valid(matrix: &ExpressionMatrix, genes: &[GeneId], conds: &[CondId], epsilon: f64) -> bool {
    for (ai, &a) in conds.iter().enumerate() {
        for &b in &conds[ai + 1..] {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &g in genes {
                let da = matrix.value(g, a);
                let db = matrix.value(g, b);
                if da <= 0.0 || db <= 0.0 {
                    return false;
                }
                let r = db / da;
                lo = lo.min(r);
                hi = hi.max(r);
            }
            if hi > lo * (1.0 + epsilon) {
                return false;
            }
        }
    }
    true
}

/// Mines pure-scaling biclusters via the ratio-range multigraph.
///
/// Output clusters are maximal and pairwise-validated against the model
/// definition; genes with non-positive values on a cluster's conditions
/// can never be members (TriCluster's ratios are undefined there).
pub fn microcluster(matrix: &ExpressionMatrix, params: &MicroClusterParams) -> Vec<Bicluster> {
    assert!(params.epsilon >= 0.0, "epsilon must be ≥ 0");
    assert!(
        params.min_genes >= 2 && params.min_conds >= 2,
        "clusters need ≥ 2 genes and ≥ 2 conditions"
    );
    let n_conds = matrix.n_conditions();
    if n_conds < params.min_conds {
        return Vec::new();
    }

    // Phase 1: the condition multigraph. Ordered pairs (a < b) suffice —
    // the reverse edge carries the reciprocal ratios and the same windows.
    let mut edges: Vec<Edge> = Vec::new();
    for a in 0..n_conds {
        for b in a + 1..n_conds {
            for genes in ratio_windows(matrix, a, b, params) {
                edges.push(Edge { a, b, genes });
            }
        }
    }

    // Phase 2: DFS over condition sets. A state is (condition set, gene
    // intersection); extend with any edge connecting a member condition to
    // a new one.
    let mut out: Vec<Bicluster> = Vec::new();
    let mut stack: Vec<(Vec<CondId>, Vec<GeneId>)> = edges
        .iter()
        .map(|e| (vec![e.a, e.b], e.genes.clone()))
        .collect();
    let mut seen: std::collections::HashSet<(Vec<CondId>, Vec<GeneId>)> =
        std::collections::HashSet::new();
    let mut budget = params.state_budget;
    while let Some((conds, genes)) = stack.pop() {
        if budget == 0 {
            break;
        }
        if !seen.insert((conds.clone(), genes.clone())) {
            continue;
        }
        budget -= 1;
        if conds.len() >= params.min_conds && is_valid(matrix, &genes, &conds, params.epsilon) {
            out.push(Bicluster::new(genes.clone(), conds.clone()));
        }
        for e in &edges {
            let has_a = conds.contains(&e.a);
            let has_b = conds.contains(&e.b);
            if has_a == has_b {
                continue; // either disconnected or already inside
            }
            let next_cond = if has_a { e.b } else { e.a };
            let next_genes = intersect_sorted(&genes, &e.genes);
            if next_genes.len() < params.min_genes {
                continue;
            }
            let mut next_conds = conds.clone();
            next_conds.push(next_cond);
            next_conds.sort_unstable();
            stack.push((next_conds, next_genes));
        }
    }

    let mut out = retain_maximal(out);
    out.sort_by(|x, y| {
        (y.n_genes() * y.n_conds())
            .cmp(&(x.n_genes() * x.n_conds()))
            .then_with(|| x.genes.cmp(&y.genes))
            .then_with(|| x.conds.cmp(&y.conds))
    });
    out.truncate(params.max_clusters);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: Vec<Vec<f64>>) -> ExpressionMatrix {
        let genes = (0..rows.len()).map(|i| format!("g{i}")).collect();
        let conds = (0..rows[0].len()).map(|i| format!("c{i}")).collect();
        ExpressionMatrix::from_rows(genes, conds, rows).unwrap()
    }

    #[test]
    fn finds_exact_scaling_family() {
        let base = [1.0f64, 4.0, 2.0, 8.0, 5.0];
        let rows = vec![
            base.to_vec(),
            base.iter().map(|v| v * 3.0).collect(),
            base.iter().map(|v| v * 0.5).collect(),
            vec![9.0, 1.0, 7.0, 2.0, 3.0], // noise
        ];
        let m = matrix(rows);
        let params = MicroClusterParams {
            epsilon: 1e-9,
            min_genes: 3,
            min_conds: 5,
            ..Default::default()
        };
        let found = microcluster(&m, &params);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].genes, vec![0, 1, 2]);
        assert_eq!(found[0].conds, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn subspace_scaling_is_found() {
        // Scaling only on conditions {0, 2, 3}; other columns scrambled.
        let rows = vec![
            vec![1.0, 9.0, 2.0, 4.0, 6.0],
            vec![2.0, 3.0, 4.0, 8.0, 1.0],
            vec![5.0, 1.0, 10.0, 20.0, 3.0],
        ];
        let m = matrix(rows);
        let params = MicroClusterParams {
            epsilon: 1e-9,
            min_genes: 3,
            min_conds: 3,
            ..Default::default()
        };
        let found = microcluster(&m, &params);
        assert!(
            found
                .iter()
                .any(|b| b.genes == vec![0, 1, 2] && b.conds == vec![0, 2, 3]),
            "{found:?}"
        );
    }

    #[test]
    fn misses_shifting_and_mixed_patterns() {
        // Pure shift: ratios are not constant.
        let base = [1.0f64, 4.0, 2.0, 8.0];
        let m = matrix(vec![base.to_vec(), base.iter().map(|v| v + 5.0).collect()]);
        let params = MicroClusterParams {
            epsilon: 0.05,
            min_genes: 2,
            min_conds: 4,
            ..Default::default()
        };
        assert!(microcluster(&m, &params).is_empty());
        // Shifting-and-scaling: also invisible.
        let m = matrix(vec![
            base.to_vec(),
            base.iter().map(|v| 2.0 * v + 3.0).collect(),
        ]);
        assert!(microcluster(&m, &params).is_empty());
    }

    #[test]
    fn every_output_is_ratio_coherent() {
        let rows: Vec<Vec<f64>> = (0..8)
            .map(|i| {
                (0..5)
                    .map(|j| 1.0 + ((i * 31 + j * 17 + 5) % 23) as f64)
                    .collect()
            })
            .collect();
        let m = matrix(rows);
        let params = MicroClusterParams {
            epsilon: 0.3,
            min_genes: 2,
            min_conds: 2,
            ..Default::default()
        };
        for bc in microcluster(&m, &params) {
            assert!(is_valid(&m, &bc.genes, &bc.conds, params.epsilon + 1e-12));
            assert!(bc.n_genes() >= 2 && bc.n_conds() >= 2);
        }
    }

    #[test]
    fn tolerance_band_admits_near_scalings() {
        let base = [1.0f64, 4.0, 2.0, 8.0];
        let rows = vec![
            base.to_vec(),
            // Ratios 2.0, 2.04, 1.95, 2.02 — within a 5% band, not 0.1%.
            vec![2.0, 8.16, 3.9, 16.16],
        ];
        let m = matrix(rows);
        let tight = MicroClusterParams {
            epsilon: 0.001,
            min_genes: 2,
            min_conds: 4,
            ..Default::default()
        };
        assert!(microcluster(&m, &tight).is_empty());
        let loose = MicroClusterParams {
            epsilon: 0.05,
            min_genes: 2,
            min_conds: 4,
            ..Default::default()
        };
        assert_eq!(microcluster(&m, &loose).len(), 1);
    }

    #[test]
    fn non_positive_values_are_excluded_not_fatal() {
        let rows = vec![
            vec![1.0, 2.0, 4.0],
            vec![2.0, 4.0, 8.0],
            vec![-1.0, 3.0, 6.0], // undefined ratio on c0
        ];
        let m = matrix(rows);
        let params = MicroClusterParams {
            epsilon: 1e-9,
            min_genes: 2,
            min_conds: 3,
            ..Default::default()
        };
        let found = microcluster(&m, &params);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].genes, vec![0, 1]);
    }
}
