//! The paper's synthetic data generator (§5).
//!
//! > "The synthetic dataset is initialized with random values ranging from 0
//! > to 10. Then a number of `#clus` perfect shifting-and-scaling clusters of
//! > average dimensionality 6 and average number of genes (including both
//! > p-member genes and n-member genes) equal to `0.01 · #g` are embedded
//! > into the data, which are reg-clusters with parameter settings `ε = 0`
//! > and `γ = 0.15`."
//!
//! Each embedded cluster is built from a strictly increasing **base profile**
//! `b ∈ [0, 1]^m` whose adjacent gaps all exceed a floor chosen so that every
//! member gene's steps clear the planted regulation threshold: a member gene
//! receives `s1 · b + s2` with `|s1|` large enough that
//! `|s1| · gap > γ_plant · value_max ≥ γ_i` (the gene's own range can never
//! exceed `value_max`, so this bound is conservative and the planted cluster
//! is a valid reg-cluster regardless of the background values in the gene's
//! other conditions). Negative `s1` plants negatively co-regulated
//! (n-member) genes.
//!
//! Besides the paper's shifting-and-scaling clusters, the generator can plant
//! three degenerate variants used by the baseline-comparison experiment:
//! pure shifting (pCluster's model), pure positive scaling (Tricluster's
//! model) and order-only tendencies (OPSM/OP-Cluster's model, deliberately
//! incoherent).

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use regcluster_matrix::{CondId, ExpressionMatrix, GeneId};

use crate::DatagenError;

/// Safety margin factor for planted regulation steps.
const DELTA: f64 = 0.05;

/// The kind of pattern each embedded cluster follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternKind {
    /// `d = s1 · b + s2` with per-gene `s1` (positive or negative) and `s2` —
    /// the paper's reg-cluster pattern.
    ShiftScale,
    /// `d = S · b + s2` with one shared `S` per cluster: pairwise pure
    /// shifting (the pCluster/δ-cluster model).
    ShiftOnly,
    /// `d = s1 · b` with per-gene positive `s1`: pairwise pure scaling
    /// (the Tricluster model).
    ScaleOnly,
    /// Each gene rises through the cluster conditions in the same order but
    /// with its own incoherent step sizes (the OPSM/OP-Cluster model; **not**
    /// a shifting-and-scaling pattern).
    Tendency,
}

/// Configuration of the synthetic generator. [`SyntheticConfig::default`]
/// reproduces the paper's defaults (`#g = 3000`, `#cond = 30`,
/// `#clus = 30`, average dimensionality 6, average cluster genes
/// `0.01 · #g`, planted `γ = 0.15`, `ε = 0`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of genes `#g`.
    pub n_genes: usize,
    /// Number of conditions `#cond`.
    pub n_conds: usize,
    /// Number of embedded clusters `#clus`.
    pub n_clusters: usize,
    /// Average cluster dimensionality (conditions per cluster); individual
    /// clusters use `avg ± 1`, clamped to feasibility.
    pub avg_cluster_dims: usize,
    /// Average fraction of all genes per cluster (`0.01` in the paper);
    /// individual clusters jitter by ±30%. Gene sets are disjoint so the
    /// ground truth is unambiguous.
    pub cluster_gene_frac: f64,
    /// Probability that a member gene is planted negatively co-regulated.
    /// Ignored (forced to 0) for [`PatternKind::ScaleOnly`], whose model has
    /// no negative scalings.
    pub neg_fraction: f64,
    /// The regulation threshold the planted clusters are guaranteed to
    /// satisfy (as a fraction of `value_max`, which upper-bounds every
    /// gene's range).
    pub plant_gamma: f64,
    /// Pattern family of the embedded clusters.
    pub pattern: PatternKind,
    /// Values live in `[0, value_max]`; the paper uses 10.
    pub value_max: f64,
    /// Standard deviation of Gaussian noise added to every **planted**
    /// cell (clamped back into the value range). The paper's generator is
    /// noise-free (`0.0`, the default); the noise-robustness experiment
    /// sweeps this to measure how recovery degrades as planted patterns
    /// blur — the knob the coherence threshold ε exists for.
    pub noise_sigma: f64,
    /// RNG seed; every run with the same config is identical.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            n_genes: 3000,
            n_conds: 30,
            n_clusters: 30,
            avg_cluster_dims: 6,
            cluster_gene_frac: 0.01,
            neg_fraction: 0.25,
            plant_gamma: 0.15,
            pattern: PatternKind::ShiftScale,
            value_max: 10.0,
            noise_sigma: 0.0,
            seed: 42,
        }
    }
}

/// Ground truth for one embedded cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantedCluster {
    /// Member genes, sorted ascending.
    pub genes: Vec<GeneId>,
    /// The cluster's conditions in **chain order** (ascending base value):
    /// the representative regulation chain of the positively-scaled members.
    pub chain: Vec<CondId>,
    /// Parallel to `genes`: `true` for negatively co-regulated members.
    pub negated: Vec<bool>,
}

impl PlantedCluster {
    /// The cluster's conditions, sorted ascending by id.
    pub fn conditions_sorted(&self) -> Vec<CondId> {
        let mut c = self.chain.clone();
        c.sort_unstable();
        c
    }

    /// Number of member genes.
    pub fn n_genes(&self) -> usize {
        self.genes.len()
    }

    /// Number of cluster conditions.
    pub fn n_conditions(&self) -> usize {
        self.chain.len()
    }
}

/// A generated dataset with its ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The expression matrix (background noise + embedded clusters).
    pub matrix: ExpressionMatrix,
    /// Ground truth of every embedded cluster.
    pub planted: Vec<PlantedCluster>,
}

/// Generates a dataset according to `config`.
///
/// ```
/// use regcluster_datagen::{generate, SyntheticConfig};
///
/// let cfg = SyntheticConfig {
///     n_genes: 200,
///     n_conds: 12,
///     n_clusters: 2,
///     cluster_gene_frac: 0.05,
///     ..SyntheticConfig::default()
/// };
/// let data = generate(&cfg).unwrap();
/// assert_eq!(data.matrix.n_genes(), 200);
/// assert_eq!(data.planted.len(), 2);
/// // Deterministic: the same seed regenerates the same dataset.
/// assert_eq!(generate(&cfg).unwrap().matrix, data.matrix);
/// ```
///
/// # Errors
///
/// * [`DatagenError::InvalidConfig`] for out-of-domain configuration values;
/// * [`DatagenError::Infeasible`] when the requested clusters need more
///   disjoint genes than exist, or `plant_gamma` is too large for any
///   2-condition chain to fit in `[0, value_max]`.
pub fn generate(config: &SyntheticConfig) -> Result<SyntheticDataset, DatagenError> {
    validate(config)?;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    // Noise uses an independent stream so the planted structure (gene sets,
    // condition sets, scalings) is identical across noise levels — sweeping
    // `noise_sigma` is then a controlled experiment.
    let mut noise_rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x9E37_79B9_7F4A_7C15);
    let vm = config.value_max;

    // Background noise: U[0.01, value_max). The paper initializes with
    // values "ranging from 0 to 10"; the tiny positive floor keeps the data
    // valid for the log transform the scaling baseline requires.
    let mut values: Vec<f64> = (0..config.n_genes * config.n_conds)
        .map(|_| rng.gen_range(0.001 * vm..vm))
        .collect();

    // Disjoint gene pool.
    let mut pool: Vec<GeneId> = (0..config.n_genes).collect();
    pool.shuffle(&mut rng);
    let mut pool_next = 0usize;

    // Pure-scaling clusters need a strictly positive base profile (their
    // values are s1 · b, and the log-space baseline requires positivity), so
    // the base then spends one extra gap on the offset before b_0.
    let positive_start = config.pattern == PatternKind::ScaleOnly;
    let avg_genes = (config.cluster_gene_frac * config.n_genes as f64)
        .round()
        .max(2.0) as usize;
    let max_dims = feasible_max_dims(config.plant_gamma, positive_start).min(config.n_conds);

    let mut planted = Vec::with_capacity(config.n_clusters);
    for _ in 0..config.n_clusters {
        // Cluster size: average ± 30%, at least 2 genes.
        let jitter = rng.gen_range(0.7..=1.3);
        let k = ((avg_genes as f64 * jitter).round() as usize).max(2);
        if pool_next + k > pool.len() {
            return Err(DatagenError::Infeasible(format!(
                "cluster gene pools exhausted: need {} more genes but only {} remain \
                 (reduce n_clusters or cluster_gene_frac)",
                k,
                pool.len() - pool_next
            )));
        }
        let mut genes: Vec<GeneId> = pool[pool_next..pool_next + k].to_vec();
        pool_next += k;
        genes.sort_unstable();

        // Dimensionality: average ± 1, clamped to [2, max_dims].
        let m = (config.avg_cluster_dims as i64 + rng.gen_range(-1i64..=1))
            .clamp(2, max_dims as i64) as usize;

        // Condition subset (may overlap across clusters); chain order is the
        // base-profile order, i.e. the sampled order.
        let mut conds: Vec<CondId> = (0..config.n_conds).collect();
        conds.shuffle(&mut rng);
        conds.truncate(m);

        // Base profile b_0 < … < b_{m-1} = 1 with all gaps ≥ gap_floor
        // (b_0 = 0, or one gap above 0 for pure-scaling clusters).
        let base = base_profile(m, config.plant_gamma, positive_start, &mut rng);
        let min_gap = base
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(f64::INFINITY, f64::min);

        // Minimum |s1| so that |s1| · min_gap > plant_gamma · value_max with
        // margin (the gene's range never exceeds value_max).
        let s_min = if config.plant_gamma == 0.0 {
            0.3 * vm
        } else {
            (config.plant_gamma * vm * (1.0 + DELTA / 2.0)) / min_gap
        };
        debug_assert!(s_min <= vm + 1e-9, "s_min {s_min} exceeds value_max {vm}");
        let s_min = s_min.min(vm);

        let shared_scale = rng.gen_range(s_min..=vm); // used by ShiftOnly
        let mut negated = Vec::with_capacity(k);
        for &g in &genes {
            let neg = match config.pattern {
                PatternKind::ScaleOnly => false,
                _ => rng.gen_bool(config.neg_fraction),
            };
            negated.push(neg);
            let row_start = g * config.n_conds;
            match config.pattern {
                PatternKind::ShiftScale => {
                    let s_mag = rng.gen_range(s_min..=vm);
                    let (s1, s2) = if neg {
                        (-s_mag, rng.gen_range(s_mag..=vm))
                    } else {
                        (s_mag, rng.gen_range(0.0..=(vm - s_mag)))
                    };
                    for (j, &c) in conds.iter().enumerate() {
                        values[row_start + c] = s1 * base[j] + s2;
                    }
                }
                PatternKind::ShiftOnly => {
                    let (s1, s2) = if neg {
                        (-shared_scale, rng.gen_range(shared_scale..=vm))
                    } else {
                        (shared_scale, rng.gen_range(0.0..=(vm - shared_scale)))
                    };
                    for (j, &c) in conds.iter().enumerate() {
                        values[row_start + c] = s1 * base[j] + s2;
                    }
                }
                PatternKind::ScaleOnly => {
                    let s1 = rng.gen_range(s_min..=vm);
                    for (j, &c) in conds.iter().enumerate() {
                        values[row_start + c] = s1 * base[j];
                    }
                }
                PatternKind::Tendency => {
                    // Same order, incoherent per-gene steps, each step still
                    // clearing the planted regulation threshold.
                    let floor_step = config.plant_gamma * vm * (1.0 + DELTA);
                    let spare = (vm - floor_step * (m - 1) as f64).max(0.0);
                    let mut steps: Vec<f64> = (0..m - 1).map(|_| rng.gen_range(0.1..1.0)).collect();
                    let sum: f64 = steps.iter().sum();
                    let budget = rng.gen_range(0.5..=1.0) * spare;
                    for s in &mut steps {
                        *s = floor_step + budget * (*s / sum);
                    }
                    let total: f64 = steps.iter().sum();
                    let start = rng.gen_range(0.0..=(vm - total));
                    let mut v = start;
                    let mut profile = vec![v];
                    for s in &steps {
                        v += s;
                        profile.push(v);
                    }
                    for (j, &c) in conds.iter().enumerate() {
                        let val = if neg { vm - profile[j] } else { profile[j] };
                        values[row_start + c] = val;
                    }
                }
            }
        }
        // Optional measurement noise on the planted cells.
        if config.noise_sigma > 0.0 {
            for &g in &genes {
                for &c in &conds {
                    let idx = g * config.n_conds + c;
                    values[idx] = (values[idx] + gaussian(&mut noise_rng) * config.noise_sigma)
                        .clamp(0.0, vm);
                }
            }
        }
        planted.push(PlantedCluster {
            genes,
            chain: conds,
            negated,
        });
    }

    let matrix = ExpressionMatrix::from_flat_unlabeled(config.n_genes, config.n_conds, values)
        .expect("generated values are finite and dimensions match");
    Ok(SyntheticDataset { matrix, planted })
}

fn validate(config: &SyntheticConfig) -> Result<(), DatagenError> {
    if config.n_genes == 0 || config.n_conds < 2 {
        return Err(DatagenError::InvalidConfig(
            "need at least 1 gene and 2 conditions".into(),
        ));
    }
    if !(config.value_max.is_finite() && config.value_max > 0.0) {
        return Err(DatagenError::InvalidConfig(
            "value_max must be positive".into(),
        ));
    }
    if !(0.0..=1.0).contains(&config.cluster_gene_frac) {
        return Err(DatagenError::InvalidConfig(
            "cluster_gene_frac must be in [0, 1]".into(),
        ));
    }
    if !(0.0..=1.0).contains(&config.neg_fraction) {
        return Err(DatagenError::InvalidConfig(
            "neg_fraction must be in [0, 1]".into(),
        ));
    }
    if !(config.plant_gamma.is_finite() && (0.0..0.45).contains(&config.plant_gamma)) {
        return Err(DatagenError::InvalidConfig(
            "plant_gamma must be in [0, 0.45) so a 2-step chain fits the value range".into(),
        ));
    }
    if config.avg_cluster_dims < 2 {
        return Err(DatagenError::InvalidConfig(
            "avg_cluster_dims must be ≥ 2".into(),
        ));
    }
    if !(config.noise_sigma.is_finite() && config.noise_sigma >= 0.0) {
        return Err(DatagenError::InvalidConfig(
            "noise_sigma must be ≥ 0".into(),
        ));
    }
    Ok(())
}

/// Standard-normal sample via Box–Muller (keeps the dependency surface to
/// `rand` itself).
fn gaussian(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Largest chain length for which gaps above the regulation floor can sum
/// to 1 (one extra gap is consumed by a positive starting offset).
fn feasible_max_dims(plant_gamma: f64, positive_start: bool) -> usize {
    if plant_gamma == 0.0 {
        usize::MAX
    } else {
        let gap_floor = plant_gamma * (1.0 + DELTA);
        let slots = (1.0 / gap_floor).floor() as usize;
        if positive_start {
            slots.max(2)
        } else {
            slots + 1
        }
    }
}

/// A strictly increasing profile ending at exactly 1 with `m` points whose
/// adjacent gaps all exceed the floor implied by `plant_gamma`. With
/// `positive_start`, the first point sits one further gap above zero.
fn base_profile(
    m: usize,
    plant_gamma: f64,
    positive_start: bool,
    rng: &mut ChaCha8Rng,
) -> Vec<f64> {
    let n_gaps = m - 1 + usize::from(positive_start);
    let gap_floor = if plant_gamma == 0.0 {
        (0.5 / n_gaps as f64).min(0.02)
    } else {
        // Keep gaps comfortably above the regulation floor while staying
        // feasible: at least the floor, at most (almost) the uniform gap.
        (plant_gamma * (1.0 + DELTA)).min(0.98 / n_gaps as f64)
    };
    let slack = 1.0 - gap_floor * n_gaps as f64;
    debug_assert!(slack >= 0.0, "infeasible gap floor");
    let mut weights: Vec<f64> = (0..n_gaps).map(|_| rng.gen_range(0.05..1.0)).collect();
    let sum: f64 = weights.iter().sum();
    for w in &mut weights {
        *w = gap_floor + slack * (*w / sum);
    }
    let mut base = Vec::with_capacity(m);
    let mut v = 0.0;
    if positive_start {
        v += weights[0];
    }
    base.push(v);
    for w in &weights[usize::from(positive_start)..] {
        v += w;
        base.push(v);
    }
    // Normalize the tiny floating-point drift so the last point is exactly 1.
    let last = *base.last().expect("m ≥ 2");
    for b in &mut base {
        *b /= last;
    }
    base
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SyntheticConfig {
        SyntheticConfig {
            n_genes: 120,
            n_conds: 15,
            n_clusters: 3,
            avg_cluster_dims: 5,
            cluster_gene_frac: 0.05,
            neg_fraction: 0.3,
            plant_gamma: 0.15,
            pattern: PatternKind::ShiftScale,
            value_max: 10.0,
            noise_sigma: 0.0,
            seed: 7,
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&small_config()).unwrap();
        let b = generate(&small_config()).unwrap();
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.planted, b.planted);
        let mut other = small_config();
        other.seed = 8;
        let c = generate(&other).unwrap();
        assert_ne!(a.matrix, c.matrix);
    }

    #[test]
    fn shapes_and_disjoint_gene_sets() {
        let d = generate(&small_config()).unwrap();
        assert_eq!(d.matrix.n_genes(), 120);
        assert_eq!(d.matrix.n_conditions(), 15);
        assert_eq!(d.planted.len(), 3);
        let mut all_genes: Vec<GeneId> = d
            .planted
            .iter()
            .flat_map(|p| p.genes.iter().copied())
            .collect();
        let before = all_genes.len();
        all_genes.sort_unstable();
        all_genes.dedup();
        assert_eq!(
            before,
            all_genes.len(),
            "cluster gene sets must be disjoint"
        );
        for p in &d.planted {
            assert!(p.n_genes() >= 2);
            assert!((4..=6).contains(&p.n_conditions()));
            assert_eq!(p.genes.len(), p.negated.len());
        }
    }

    #[test]
    fn values_stay_in_range() {
        for pattern in [
            PatternKind::ShiftScale,
            PatternKind::ShiftOnly,
            PatternKind::ScaleOnly,
            PatternKind::Tendency,
        ] {
            let mut cfg = small_config();
            cfg.pattern = pattern;
            cfg.plant_gamma = 0.1;
            let d = generate(&cfg).unwrap();
            for &v in d.matrix.flat_values() {
                assert!(
                    (0.0..=10.0 + 1e-9).contains(&v),
                    "{pattern:?}: value {v} out of range"
                );
            }
        }
    }

    /// Every planted gene's chain steps clear the *actual* per-gene γ_i at
    /// the planted threshold, for all pattern kinds.
    #[test]
    fn planted_steps_clear_regulation_threshold() {
        for pattern in [
            PatternKind::ShiftScale,
            PatternKind::ShiftOnly,
            PatternKind::ScaleOnly,
            PatternKind::Tendency,
        ] {
            let mut cfg = small_config();
            cfg.pattern = pattern;
            cfg.plant_gamma = 0.12;
            let d = generate(&cfg).unwrap();
            for p in &d.planted {
                for (gi, &g) in p.genes.iter().enumerate() {
                    let row = d.matrix.row(g);
                    let (lo, hi) = d.matrix.gene_range(g);
                    let gamma_i = cfg.plant_gamma * (hi - lo);
                    let sign = if p.negated[gi] { -1.0 } else { 1.0 };
                    for w in p.chain.windows(2) {
                        let step = (row[w[1]] - row[w[0]]) * sign;
                        assert!(
                            step > gamma_i,
                            "{pattern:?}: gene {g} step {step} ≤ γ_i {gamma_i}"
                        );
                    }
                }
            }
        }
    }

    /// Shifting-and-scaling clusters are planted with ε = 0: all member
    /// genes share identical H-score series (up to float rounding).
    #[test]
    fn shift_scale_clusters_are_perfectly_coherent() {
        let d = generate(&small_config()).unwrap();
        for p in &d.planted {
            let series: Vec<Vec<f64>> = p
                .genes
                .iter()
                .map(|&g| {
                    let row = d.matrix.row(g);
                    let baseline = row[p.chain[1]] - row[p.chain[0]];
                    p.chain
                        .windows(2)
                        .map(|w| (row[w[1]] - row[w[0]]) / baseline)
                        .collect()
                })
                .collect();
            for s in &series[1..] {
                for (a, b) in s.iter().zip(series[0].iter()) {
                    assert!((a - b).abs() < 1e-9, "H spread {} too large", (a - b).abs());
                }
            }
        }
    }

    #[test]
    fn shift_only_is_pairwise_pure_shifting() {
        let mut cfg = small_config();
        cfg.pattern = PatternKind::ShiftOnly;
        cfg.plant_gamma = 0.05;
        cfg.neg_fraction = 0.0;
        let d = generate(&cfg).unwrap();
        for p in &d.planted {
            let g0 = d.matrix.row(p.genes[0]);
            for &g in &p.genes[1..] {
                let row = d.matrix.row(g);
                let shift = row[p.chain[0]] - g0[p.chain[0]];
                for &c in &p.chain {
                    assert!((row[c] - g0[c] - shift).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn scale_only_is_pairwise_pure_scaling() {
        let mut cfg = small_config();
        cfg.pattern = PatternKind::ScaleOnly;
        cfg.plant_gamma = 0.05;
        let d = generate(&cfg).unwrap();
        for p in &d.planted {
            assert!(
                p.negated.iter().all(|&n| !n),
                "scale-only plants no n-members"
            );
            let g0 = d.matrix.row(p.genes[0]);
            for &g in &p.genes[1..] {
                let row = d.matrix.row(g);
                let ratio = row[p.chain[1]] / g0[p.chain[1]];
                for &c in &p.chain[1..] {
                    assert!((row[c] / g0[c] - ratio).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn scale_only_values_are_strictly_positive() {
        // The log-space scaling baseline requires positivity everywhere.
        let mut cfg = small_config();
        cfg.pattern = PatternKind::ScaleOnly;
        cfg.plant_gamma = 0.08;
        let d = generate(&cfg).unwrap();
        for &v in d.matrix.flat_values() {
            assert!(v > 0.0, "value {v} not strictly positive");
        }
    }

    #[test]
    fn tendency_shares_order_but_not_ratios() {
        let mut cfg = small_config();
        cfg.pattern = PatternKind::Tendency;
        cfg.plant_gamma = 0.05;
        cfg.neg_fraction = 0.0;
        cfg.seed = 3;
        let d = generate(&cfg).unwrap();
        let mut found_incoherent = false;
        for p in &d.planted {
            for (gi, &g) in p.genes.iter().enumerate() {
                let row = d.matrix.row(g);
                let sign = if p.negated[gi] { -1.0 } else { 1.0 };
                for w in p.chain.windows(2) {
                    assert!((row[w[1]] - row[w[0]]) * sign > 0.0, "order must be shared");
                }
            }
            // At least one cluster must have genuinely different H-series.
            let h = |g: GeneId| -> Vec<f64> {
                let row = d.matrix.row(g);
                let baseline = row[p.chain[1]] - row[p.chain[0]];
                p.chain
                    .windows(2)
                    .map(|w| (row[w[1]] - row[w[0]]) / baseline)
                    .collect()
            };
            let h0 = h(p.genes[0]);
            for &g in &p.genes[1..] {
                if h(g)
                    .iter()
                    .zip(h0.iter())
                    .any(|(a, b)| (a - b).abs() > 0.05)
                {
                    found_incoherent = true;
                }
            }
        }
        assert!(found_incoherent, "tendency clusters should not be coherent");
    }

    #[test]
    fn infeasible_and_invalid_configs_error() {
        let mut cfg = small_config();
        cfg.cluster_gene_frac = 0.5;
        cfg.n_clusters = 10; // 10 × ~60 genes ≫ 120
        assert!(matches!(generate(&cfg), Err(DatagenError::Infeasible(_))));

        let mut cfg = small_config();
        cfg.plant_gamma = 0.6;
        assert!(matches!(
            generate(&cfg),
            Err(DatagenError::InvalidConfig(_))
        ));

        let mut cfg = small_config();
        cfg.n_conds = 1;
        assert!(generate(&cfg).is_err());

        let mut cfg = small_config();
        cfg.value_max = 0.0;
        assert!(generate(&cfg).is_err());
    }

    #[test]
    fn paper_default_config_is_feasible() {
        let cfg = SyntheticConfig {
            n_genes: 300,
            ..SyntheticConfig::default()
        };
        // Scale the gene count down 10× for test speed; the full default is
        // exercised by the Figure 7 benchmark harness.
        let d = generate(&cfg).unwrap();
        assert_eq!(d.planted.len(), 30);
    }

    #[test]
    fn noise_perturbs_only_planted_cells() {
        let clean = generate(&small_config()).unwrap();
        let mut noisy_cfg = small_config();
        noisy_cfg.noise_sigma = 0.2;
        let noisy = generate(&noisy_cfg).unwrap();

        let planted_cells: std::collections::HashSet<(usize, usize)> = clean
            .planted
            .iter()
            .flat_map(|p| {
                p.genes
                    .iter()
                    .flat_map(|&g| p.chain.iter().map(move |&c| (g, c)))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut changed = 0usize;
        for g in 0..clean.matrix.n_genes() {
            for c in 0..clean.matrix.n_conditions() {
                let delta = (clean.matrix.value(g, c) - noisy.matrix.value(g, c)).abs();
                if planted_cells.contains(&(g, c)) {
                    changed += usize::from(delta > 0.0);
                } else {
                    assert_eq!(delta, 0.0, "background cell ({g},{c}) must not change");
                }
            }
        }
        assert!(
            changed > planted_cells.len() / 2,
            "noise should touch most planted cells"
        );
        for &v in noisy.matrix.flat_values() {
            assert!((0.0..=10.0).contains(&v), "noise must stay clamped");
        }
    }

    #[test]
    fn noise_sigma_must_be_finite_nonnegative() {
        let mut cfg = small_config();
        cfg.noise_sigma = -0.1;
        assert!(generate(&cfg).is_err());
        cfg.noise_sigma = f64::NAN;
        assert!(generate(&cfg).is_err());
    }

    #[test]
    fn zero_plant_gamma_still_strictly_monotone() {
        let mut cfg = small_config();
        cfg.plant_gamma = 0.0;
        let d = generate(&cfg).unwrap();
        for p in &d.planted {
            for (gi, &g) in p.genes.iter().enumerate() {
                let row = d.matrix.row(g);
                let sign = if p.negated[gi] { -1.0 } else { 1.0 };
                for w in p.chain.windows(2) {
                    assert!((row[w[1]] - row[w[0]]) * sign > 0.0);
                }
            }
        }
    }
}
