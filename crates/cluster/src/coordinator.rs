//! The cluster coordinator: owns the root partition, leases ranges to
//! workers, collects their shards, merges and publishes.
//!
//! # Lifecycle
//!
//! 1. Load the matrix, fingerprint it, partition `0..n_conditions` into
//!    [`partition_roots`] ranges.
//! 2. Serve the control plane ([`protocol`](crate::protocol)): grant a
//!    lease per range, renew on heartbeat, expire-and-return leases
//!    whose worker has gone silent (the expired range is simply granted
//!    to the next caller — reassignment *is* re-granting).
//! 3. Validate every uploaded shard (readable, same matrix fingerprint,
//!    same params, same generation, roots inside the leased range) and
//!    stage it durably under the work dir.
//! 4. When every range has a shard: [`merge_shards`] into
//!    `gen-<N>.rcs` and [`Generations::publish`] — the merged store is
//!    bit-identical to a single-node run (see `crates/store/src/merge.rs`
//!    for the determinism argument), so replicas hot-swap onto it
//!    exactly as they would a locally-mined generation.
//!
//! # Crash safety
//!
//! Every control-plane transition — job creation, grants, renewals,
//! expiries, staged shards, publication — is appended to a checksummed
//! write-ahead journal (`control.rcj`, [`regcluster_store::Journal`])
//! *before* the in-memory state changes. On restart the coordinator
//! replays the journal, reconciles it against the staged shards on disk
//! (disk wins: a journal `Done` without a valid shard re-opens the
//! slot), restores live leases with a fresh deadline — their workers
//! keep mining and their renews are honored, not fenced — and resumes
//! minting epochs above every epoch the journal ever saw, so a fenced
//! epoch can never be resurrected. A journal whose `JobCreated` identity
//! disagrees with the restarted configuration (different generation,
//! matrix, params, or partition) is stale and replaced. Failpoint sites
//! `cluster::lease_grant`, `cluster::shard_upload`,
//! `cluster::journal_append` and `cluster::publish` let the fault
//! harness kill each transition; `store::merge_seal` covers the merge
//! itself.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use regcluster_core::{matrix_fingerprint, partition_roots, MiningParams};
use regcluster_matrix::io::read_matrix_file;
use regcluster_obs::MetricsRegistry;
use regcluster_store::{merge_shards, ClusterStore, Generations, Journal, JournalRecord};

use crate::error::ClusterError;
use crate::http::{HttpServer, Request, Response, MAX_INFLIGHT};
use crate::metrics::ClusterMetrics;
use crate::protocol::{AcquireRequest, AcquireResponse, JobInfo, RenewRequest, StatusDoc};

/// Engine name stamped into every shard's provenance. Only the default
/// reg-cluster engine supports roots-subset mining today.
pub const CLUSTER_ENGINE: &str = "reg-cluster";

/// How often the main loop sweeps expired leases.
const SWEEP_EVERY: Duration = Duration::from_millis(50);

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Expression matrix file (workers load the same file and must agree
    /// on its fingerprint).
    pub matrix_path: PathBuf,
    /// Mining parameters; every worker mines under exactly these.
    pub params: MiningParams,
    /// Generations directory the merged store publishes into.
    pub store_dir: PathBuf,
    /// Scratch directory for staged shards (survives restarts).
    pub work_dir: PathBuf,
    /// Control-plane port (0 picks an ephemeral one).
    pub port: u16,
    /// Number of root leases to partition into.
    pub n_leases: usize,
    /// How long a granted lease survives without a heartbeat.
    pub lease_ttl: Duration,
    /// Keep serving `/status` and `/metrics` after publishing instead of
    /// exiting (for long-lived deployments; harnesses kill the process).
    pub linger: bool,
}

/// What a completed coordination run did.
#[derive(Debug, Clone)]
pub struct CoordinatorReport {
    /// Generation published.
    pub generation: u64,
    /// Ranges in the partition.
    pub n_leases: usize,
    /// Clusters in the merged store.
    pub n_clusters: u64,
    /// Leases that expired and were re-granted.
    pub reassignments: u64,
}

#[derive(Debug, Clone)]
enum SlotState {
    Pending,
    Leased {
        worker: String,
        epoch: u64,
        deadline: Instant,
    },
    Done,
}

#[derive(Debug)]
struct Slot {
    start: usize,
    end: usize,
    state: SlotState,
}

struct CoordState {
    slots: Mutex<Vec<Slot>>,
    /// The write-ahead journal. Lock order: `slots` before `journal`.
    journal: Mutex<Journal>,
    next_epoch: AtomicU64,
    phase: Mutex<&'static str>,
    job_json: String,
    params: MiningParams,
    matrix_fp: u64,
    generation: u64,
    work_dir: PathBuf,
    lease_ttl: Duration,
    metrics: ClusterMetrics,
    registry: MetricsRegistry,
    /// Set by `POST /shutdown`; the run loop and the linger park both
    /// watch it, so shutdown drains promptly instead of on a timer.
    shutdown: (Mutex<bool>, Condvar),
}

impl CoordState {
    fn shard_path(&self, lease: usize) -> PathBuf {
        self.work_dir.join(format!("shard-{lease}.rcs"))
    }

    /// Appends one journal record, counting it. An `Err` means the
    /// transition must not take effect in memory (write-ahead ordering).
    fn journal_append(&self, rec: &JournalRecord) -> Result<(), regcluster_store::StoreError> {
        self.journal.lock().unwrap().append(rec)?;
        self.metrics.journal_records.inc();
        Ok(())
    }

    fn shutdown_requested(&self) -> bool {
        *self.shutdown.0.lock().unwrap()
    }
}

/// Journal file name under the coordinator's work dir.
const JOURNAL_FILE: &str = "control.rcj";

/// Per-slot lease state reconstructed from a journal replay.
enum ReplaySlot {
    Pending,
    Leased { worker: String, epoch: u64 },
    Done,
}

/// Replays journal records into per-slot state (last write wins) and the
/// highest epoch ever minted. `Published` and `JobCreated` carry no slot
/// state; an expiry only clears the grant it fenced.
fn replay_records(records: &[JournalRecord], n_slots: usize) -> (Vec<ReplaySlot>, u64) {
    let mut slots: Vec<ReplaySlot> = (0..n_slots).map(|_| ReplaySlot::Pending).collect();
    let mut max_epoch = 0u64;
    for rec in records {
        match rec {
            JournalRecord::JobCreated { .. } | JournalRecord::Published { .. } => {}
            JournalRecord::LeaseGranted {
                lease,
                epoch,
                worker,
            } => {
                max_epoch = max_epoch.max(*epoch);
                if let Some(s) = slots.get_mut(*lease as usize) {
                    *s = ReplaySlot::Leased {
                        worker: worker.clone(),
                        epoch: *epoch,
                    };
                }
            }
            JournalRecord::LeaseRenewed { epoch, .. } => {
                max_epoch = max_epoch.max(*epoch);
            }
            JournalRecord::LeaseExpired { lease, epoch } => {
                max_epoch = max_epoch.max(*epoch);
                if let Some(s) = slots.get_mut(*lease as usize) {
                    if matches!(s, ReplaySlot::Leased { epoch: e, .. } if e == epoch) {
                        *s = ReplaySlot::Pending;
                    }
                }
            }
            JournalRecord::ShardStaged { lease, epoch } => {
                max_epoch = max_epoch.max(*epoch);
                if let Some(s) = slots.get_mut(*lease as usize) {
                    *s = ReplaySlot::Done;
                }
            }
        }
    }
    (slots, max_epoch)
}

/// Creates a fresh journal at `path` seeded with the run's `JobCreated`
/// identity record.
fn fresh_journal(
    path: &Path,
    identity: &JournalRecord,
    metrics: &ClusterMetrics,
) -> Result<Journal, ClusterError> {
    let mut journal = Journal::create(path)?;
    journal.append(identity)?;
    metrics.journal_records.inc();
    Ok(journal)
}

/// Checks a staged or uploaded shard against the run's identity and the
/// lease's root range. `Ok` means the shard can participate in the merge.
fn validate_shard(
    store: &ClusterStore,
    params: &MiningParams,
    matrix_fp: u64,
    generation: u64,
    start: usize,
    end: usize,
) -> Result<(), String> {
    if store.engine() != Some(CLUSTER_ENGINE) {
        return Err(format!(
            "engine {:?} is not {CLUSTER_ENGINE}",
            store.engine()
        ));
    }
    if store.matrix_fingerprint() != Some(matrix_fp) {
        return Err("matrix fingerprint mismatch".into());
    }
    if store.generation() != generation {
        return Err(format!(
            "shard generation {} != run generation {generation}",
            store.generation()
        ));
    }
    if store.params() != params {
        return Err("params mismatch".into());
    }
    for id in 0..store.n_clusters() {
        let root = store.cluster_root(id).map_err(|e| e.to_string())? as usize;
        if root < start || root >= end {
            return Err(format!(
                "cluster rooted at {root} outside lease [{start}, {end})"
            ));
        }
    }
    Ok(())
}

/// Runs a full coordination round: serve leases, collect shards, merge,
/// publish. Returns after publishing unless `linger` is set (then it
/// serves `/status` + `/metrics` until the process is killed).
///
/// # Errors
///
/// [`ClusterError`] for an unreadable matrix, invalid params, store
/// failures during merge/publish, or a port that cannot be bound.
pub fn run_coordinator(cfg: &CoordinatorConfig) -> Result<CoordinatorReport, ClusterError> {
    cfg.params.validate()?;
    let matrix = read_matrix_file(&cfg.matrix_path)?;
    let n_roots = matrix.n_conditions();
    let matrix_fp = matrix_fingerprint(&matrix);
    drop(matrix);

    let gens = Generations::open(&cfg.store_dir)?;
    let generation = gens.next()?;
    std::fs::create_dir_all(&cfg.work_dir)?;

    let ranges = partition_roots(n_roots, cfg.n_leases);
    if ranges.is_empty() {
        return Err(ClusterError::Protocol(
            "matrix has no conditions to partition".into(),
        ));
    }

    let registry = MetricsRegistry::new();
    let metrics = ClusterMetrics::register(&registry);
    regcluster_failpoint::register_metrics(&registry);

    let job = JobInfo {
        params_json: serde_json::to_string(&cfg.params)?,
        engine: CLUSTER_ENGINE.to_string(),
        generation,
        matrix_fingerprint: matrix_fp,
        n_roots: n_roots as u64,
    };

    // Journal recovery: replay a journal whose JobCreated identity
    // matches this run; anything else (missing, stale, unreadable) means
    // a fresh journal seeded with this run's identity.
    let journal_path = cfg.work_dir.join(JOURNAL_FILE);
    let identity = JournalRecord::JobCreated {
        generation,
        matrix_fingerprint: matrix_fp,
        params_json: job.params_json.clone(),
        n_roots: n_roots as u64,
        n_leases: ranges.len() as u64,
    };
    let mut replayed: Vec<ReplaySlot> = Vec::new();
    let mut max_epoch = 0u64;
    let journal = if journal_path.exists() {
        match Journal::recover(&journal_path) {
            Ok(rec) if rec.records.first() == Some(&identity) => {
                metrics.journal_replayed.add(rec.records.len() as u64);
                metrics.journal_truncated_bytes.add(rec.truncated_bytes);
                eprintln!(
                    "coordinator: replayed {} journal records ({} torn bytes truncated)",
                    rec.records.len(),
                    rec.truncated_bytes
                );
                let (slots, epoch) = replay_records(&rec.records, ranges.len());
                replayed = slots;
                max_epoch = epoch;
                rec.journal
            }
            Ok(_) => {
                eprintln!("coordinator: journal belongs to a different run; starting fresh");
                fresh_journal(&journal_path, &identity, &metrics)?
            }
            Err(e) => {
                eprintln!("coordinator: journal unrecoverable ({e}); starting fresh");
                fresh_journal(&journal_path, &identity, &metrics)?
            }
        }
    } else {
        fresh_journal(&journal_path, &identity, &metrics)?
    };

    // Reconcile replayed state against the shards actually on disk. Disk
    // wins for completion: a valid staged shard closes its slot even if
    // the journal never saw it, and a journal `Done` without a valid
    // shard re-opens the slot. Live leases are restored with a full TTL
    // from now — their workers keep mining and renewing.
    let mut slots = Vec::with_capacity(ranges.len());
    let mut recovered_leases = 0u64;
    for (i, &(start, end)) in ranges.iter().enumerate() {
        let path = cfg.work_dir.join(format!("shard-{i}.rcs"));
        let disk_ok = match ClusterStore::open(&path) {
            Ok(store) => {
                validate_shard(&store, &cfg.params, matrix_fp, generation, start, end).is_ok()
            }
            Err(_) => false,
        };
        if !disk_ok && path.exists() {
            let _ = std::fs::remove_file(&path);
        }
        let slot_state = if disk_ok {
            SlotState::Done
        } else {
            match replayed.get(i) {
                Some(ReplaySlot::Leased { worker, epoch }) => {
                    recovered_leases += 1;
                    SlotState::Leased {
                        worker: worker.clone(),
                        epoch: *epoch,
                        deadline: Instant::now() + cfg.lease_ttl,
                    }
                }
                _ => SlotState::Pending,
            }
        };
        slots.push(Slot {
            start,
            end,
            state: slot_state,
        });
    }
    if recovered_leases > 0 {
        metrics.leases_recovered.add(recovered_leases);
        eprintln!("coordinator: restored {recovered_leases} live leases from the journal");
    }

    let state = Arc::new(CoordState {
        slots: Mutex::new(slots),
        journal: Mutex::new(journal),
        next_epoch: AtomicU64::new(max_epoch + 1),
        phase: Mutex::new("mining"),
        job_json: serde_json::to_string(&job)?,
        params: cfg.params.clone(),
        matrix_fp,
        generation,
        work_dir: cfg.work_dir.clone(),
        lease_ttl: cfg.lease_ttl,
        metrics,
        registry,
        shutdown: (Mutex::new(false), Condvar::new()),
    });

    let handler_state = Arc::clone(&state);
    let shed_counter = state.metrics.requests_shed.clone();
    let server =
        HttpServer::start_capped(cfg.port, MAX_INFLIGHT, Some(shed_counter), move |req| {
            handle(&handler_state, req)
        })?;
    eprintln!(
        "coordinator: serving {} leases on 127.0.0.1:{} (generation {generation})",
        ranges.len(),
        server.port()
    );

    // Main loop: sweep silent workers' leases back to the pool until
    // every range has a validated shard.
    loop {
        std::thread::sleep(SWEEP_EVERY);
        if state.shutdown_requested() {
            server.shutdown();
            return Err(ClusterError::Protocol(
                "shutdown requested before the run completed".into(),
            ));
        }
        let mut slots = state.slots.lock().unwrap();
        let now = Instant::now();
        for (i, slot) in slots.iter_mut().enumerate() {
            if let SlotState::Leased {
                deadline,
                worker,
                epoch,
            } = &slot.state
            {
                if *deadline < now {
                    // Write-ahead: the expiry is durable before the slot
                    // returns to the pool. If the append fails the lease
                    // stays leased and the next sweep retries.
                    let rec = JournalRecord::LeaseExpired {
                        lease: i as u64,
                        epoch: *epoch,
                    };
                    if state.journal_append(&rec).is_err() {
                        continue;
                    }
                    eprintln!(
                        "coordinator: lease on roots [{}, {}) expired (worker {worker}); reassigning",
                        slot.start, slot.end
                    );
                    state.metrics.leases_expired.inc();
                    slot.state = SlotState::Pending;
                }
            }
        }
        if slots.iter().all(|s| matches!(s.state, SlotState::Done)) {
            break;
        }
    }

    *state.phase.lock().unwrap() = "merging";
    let shard_paths: Vec<PathBuf> = (0..ranges.len()).map(|i| state.shard_path(i)).collect();
    let summary = merge_shards(&shard_paths, gens.path_for(generation))?;
    regcluster_failpoint::io("cluster::publish").map_err(ClusterError::Io)?;
    gens.publish(generation)?;
    // The run is already durable (CURRENT points at the generation);
    // the Published record is informational, so a journal hiccup here
    // must not fail a completed run.
    let _ = state.journal_append(&JournalRecord::Published { generation });
    state.metrics.merges.inc();
    *state.phase.lock().unwrap() = "published";
    eprintln!(
        "coordinator: published generation {generation} ({} clusters from {} shards)",
        summary.n_clusters,
        ranges.len()
    );

    let report = CoordinatorReport {
        generation,
        n_leases: ranges.len(),
        n_clusters: summary.n_clusters,
        reassignments: state.metrics.leases_expired.get(),
    };
    if cfg.linger {
        // Interruptible park: `POST /shutdown` (or any notifier) wakes
        // the condvar and the process drains immediately — no
        // sleep-loop latency between the signal and the exit.
        let (lock, cvar) = &state.shutdown;
        let mut stopped = lock.lock().unwrap();
        while !*stopped {
            stopped = cvar.wait(stopped).unwrap();
        }
        drop(stopped);
        eprintln!("coordinator: shutdown requested; draining");
    }
    server.shutdown();
    Ok(report)
}

fn handle(state: &CoordState, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/job") => Response::json(200, state.job_json.clone()),
        ("GET", "/status") => status(state),
        ("GET", "/metrics") => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: state.registry.encode_prometheus().into_bytes(),
            retry_after: None,
        },
        ("POST", "/lease/acquire") => acquire(state, &req.body),
        ("POST", "/lease/renew") => renew(state, &req.body),
        ("POST", "/shutdown") => request_shutdown(state),
        ("POST", path) if path.starts_with("/shard/") => upload(state, path, &req.body),
        _ => Response::text(404, "not found"),
    }
}

/// `POST /shutdown`: wakes the linger park (and the mining sweep loop)
/// so the process drains promptly.
fn request_shutdown(state: &CoordState) -> Response {
    let (lock, cvar) = &state.shutdown;
    *lock.lock().unwrap() = true;
    cvar.notify_all();
    Response::json(200, "{\"kind\":\"stopping\"}".to_string())
}

fn status(state: &CoordState) -> Response {
    let slots = state.slots.lock().unwrap();
    let doc = StatusDoc {
        state: state.phase.lock().unwrap().to_string(),
        generation: state.generation,
        leases_total: slots.len() as u64,
        leases_done: slots
            .iter()
            .filter(|s| matches!(s.state, SlotState::Done))
            .count() as u64,
    };
    match serde_json::to_string(&doc) {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::text(500, e.to_string()),
    }
}

fn parse_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, Response> {
    std::str::from_utf8(body)
        .ok()
        .and_then(|s| serde_json::from_str(s).ok())
        .ok_or_else(|| Response::text(400, "malformed request body"))
}

fn acquire(state: &CoordState, body: &[u8]) -> Response {
    let req: AcquireRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    if regcluster_failpoint::io("cluster::lease_grant").is_err() {
        return Response::text(500, "lease grant fault injected");
    }
    let mut slots = state.slots.lock().unwrap();
    let all_done = slots.iter().all(|s| matches!(s.state, SlotState::Done));
    let grant = slots
        .iter_mut()
        .enumerate()
        .find_map(|(i, slot)| matches!(slot.state, SlotState::Pending).then_some((i, slot)));
    let response = match grant {
        Some((lease, slot)) => {
            let epoch = state.next_epoch.fetch_add(1, Ordering::SeqCst);
            // Write-ahead: the grant is durable before the worker can
            // ever see it. A failed append refuses the grant (the epoch
            // is burned — epochs only ever move forward).
            let rec = JournalRecord::LeaseGranted {
                lease: lease as u64,
                epoch,
                worker: req.worker.clone(),
            };
            if let Err(e) = state.journal_append(&rec) {
                return Response::text(500, format!("journal append failed: {e}"));
            }
            slot.state = SlotState::Leased {
                worker: req.worker.clone(),
                epoch,
                deadline: Instant::now() + state.lease_ttl,
            };
            state.metrics.leases_granted.inc();
            AcquireResponse {
                kind: "grant".to_string(),
                lease: lease as u64,
                start: slot.start as u64,
                end: slot.end as u64,
                epoch,
                ttl_ms: state.lease_ttl.as_millis() as u64,
            }
        }
        None if all_done => AcquireResponse::signal("done"),
        None => AcquireResponse::signal("wait"),
    };
    match serde_json::to_string(&response) {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::text(500, e.to_string()),
    }
}

fn renew(state: &CoordState, body: &[u8]) -> Response {
    let req: RenewRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let mut slots = state.slots.lock().unwrap();
    let Some(slot) = slots.get_mut(req.lease as usize) else {
        return Response::text(409, "unknown lease");
    };
    match &mut slot.state {
        SlotState::Leased {
            worker,
            epoch,
            deadline,
        } if *epoch == req.epoch && *worker == req.worker => {
            *deadline = Instant::now() + state.lease_ttl;
            state.metrics.lease_renewals.inc();
            // Best-effort: deadlines restart from "now + TTL" on replay
            // anyway, so a journal hiccup must not fence a live worker.
            let _ = state.journal_append(&JournalRecord::LeaseRenewed {
                lease: req.lease,
                epoch: req.epoch,
            });
            Response::json(200, "{\"kind\":\"ok\"}".to_string())
        }
        _ => Response::text(409, "lease lost"),
    }
}

fn upload(state: &CoordState, path: &str, body: &[u8]) -> Response {
    // Path shape: /shard/<lease>/<epoch>
    let mut parts = path.trim_start_matches("/shard/").split('/');
    let (Some(Ok(lease)), Some(Ok(epoch)), None) = (
        parts.next().map(str::parse::<usize>),
        parts.next().map(str::parse::<u64>),
        parts.next(),
    ) else {
        return Response::text(400, "shard path must be /shard/<lease>/<epoch>");
    };
    // The torn-upload site: fires before anything is staged, so an
    // injected fault (or a crash here) leaves no partial shard behind.
    if regcluster_failpoint::io("cluster::shard_upload").is_err() {
        state.metrics.shards_rejected.inc();
        return Response::text(500, "shard upload fault injected");
    }
    let store = match ClusterStore::from_bytes(body.to_vec()) {
        Ok(s) => s,
        Err(e) => {
            state.metrics.shards_rejected.inc();
            return Response::text(400, format!("unreadable shard: {e}"));
        }
    };

    let mut slots = state.slots.lock().unwrap();
    let Some(slot) = slots.get_mut(lease) else {
        state.metrics.shards_rejected.inc();
        return Response::text(409, "unknown lease");
    };
    if let Err(why) = validate_shard(
        &store,
        &state.params,
        state.matrix_fp,
        state.generation,
        slot.start,
        slot.end,
    ) {
        state.metrics.shards_rejected.inc();
        return Response::text(400, format!("shard failed validation: {why}"));
    }
    match &slot.state {
        // Idempotent: the shard is already in (e.g. the worker's earlier
        // 200 was lost in flight and it retried).
        SlotState::Done => Response::text(200, "already staged"),
        SlotState::Leased { epoch: current, .. } if *current == epoch => {
            if let Err(e) = stage_shard(&state.shard_path(lease), body) {
                state.metrics.shards_rejected.inc();
                return Response::text(500, format!("staging failed: {e}"));
            }
            // Journal after the stage is durable (replay reconciles
            // against disk either way) but before the slot closes, so
            // a 200 is only ever sent for a fully-recorded shard. On
            // append failure the worker retries; staging is idempotent.
            let rec = JournalRecord::ShardStaged {
                lease: lease as u64,
                epoch,
            };
            if let Err(e) = state.journal_append(&rec) {
                state.metrics.shards_rejected.inc();
                return Response::text(500, format!("journal append failed: {e}"));
            }
            slot.state = SlotState::Done;
            state.metrics.shards_uploaded.inc();
            Response::text(200, "staged")
        }
        _ => {
            state.metrics.shards_rejected.inc();
            Response::text(409, "lease lost")
        }
    }
}

/// Stages shard bytes durably: tmp + fsync + rename + dir fsync, so a
/// coordinator crash leaves either a complete staged shard or none.
fn stage_shard(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("rcs.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut f, bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}
