#![warn(missing_docs)]

//! Every mining algorithm in the workspace as a first-class
//! [`BiclusterEngine`](regcluster_core::BiclusterEngine).
//!
//! Historically only the reg-cluster miner spoke the full pipeline dialect
//! — streaming [`ClusterSink`](regcluster_core::ClusterSink)s, cancellation
//! via [`MineControl`](regcluster_core::MineControl), observer events,
//! `.rcs` stores — while the baselines were bespoke
//! `fn(matrix, params) -> Vec<Bicluster>` calls wired ad hoc into the CLI.
//! This crate closes the gap with one adapter per algorithm plus a
//! name-keyed [`registry`], so `mine --engine <name>`, `bench`, `query` and
//! `serve` treat all of them uniformly:
//!
//! | engine name      | algorithm                                     |
//! |------------------|-----------------------------------------------|
//! | `reg-cluster`    | the paper's shifting-and-scaling miner        |
//! | `pcluster`       | pCluster (pure shifting)                      |
//! | `scaling`        | pCluster in log₂ space (pure scaling)         |
//! | `cheng-church`   | Cheng & Church δ-biclusters                   |
//! | `floc`           | FLOC δ-clusters                               |
//! | `opsm`           | OPSM (order-preserving submatrices)           |
//! | `op-cluster`     | OP-Cluster (grouped tendency sequences)       |
//! | `microcluster`   | TriCluster-style ratio-range miner            |
//! | `boolean`        | Boolean-reasoning shifting-pattern extractor  |
//!
//! Baseline output ([`Bicluster`](regcluster_baselines::Bicluster)) is
//! embedded losslessly into the common
//! [`RegCluster`](regcluster_core::RegCluster) currency: the condition set
//! becomes the chain (ascending), genes become `p_members` (Cheng–Church's
//! inverted rows become `n_members` — the same anti-correlation idea).
//!
//! ```
//! use regcluster_core::{MineControl, NoopObserver, VecSink};
//! use regcluster_engines::registry::{build_engine, EngineSpec};
//!
//! let matrix = regcluster_datagen::running_example();
//! let spec = EngineSpec {
//!     min_genes: 2,
//!     min_conds: 2,
//!     ..EngineSpec::default()
//! };
//! let engine = build_engine("pcluster", &spec).unwrap();
//! let sink = VecSink::new();
//! let report = engine
//!     .run(&matrix, &sink, &MineControl::new(), &NoopObserver)
//!     .unwrap();
//! assert_eq!(report.n_emitted, sink.into_clusters().len());
//! ```

pub mod adapters;
pub mod boolean;
pub mod metrics;
mod regcluster_engine;
pub mod registry;

pub use adapters::{
    ChengChurchEngine, FlocEngine, MicroClusterEngine, OpClusterEngine, OpsmEngine, PClusterEngine,
    ScalingEngine,
};
pub use boolean::{BooleanEngine, BooleanParams};
pub use metrics::EngineMetrics;
pub use regcluster_engine::RegClusterEngine;
pub use registry::{build_engine, EngineSpec, ENGINE_NAMES};
