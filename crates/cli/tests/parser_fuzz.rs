//! Fuzzing the argument parser: arbitrary token streams must never panic,
//! and every accepted invocation must round-trip its values.

use proptest::prelude::*;

use regcluster_cli::{parse_args, Command};

fn token() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("mine".to_string()),
        Just("generate".to_string()),
        Just("eval".to_string()),
        Just("info".to_string()),
        Just("rwave".to_string()),
        Just("baseline".to_string()),
        Just("enrich".to_string()),
        Just("generate-yeast".to_string()),
        Just("help".to_string()),
        Just("--input".to_string()),
        Just("--output".to_string()),
        Just("--min-genes".to_string()),
        Just("--gamma".to_string()),
        Just("--epsilon".to_string()),
        Just("--maximal-only".to_string()),
        Just("--stats".to_string()),
        Just("--seed".to_string()),
        Just("--algorithm".to_string()),
        Just("--pattern".to_string()),
        "[a-zA-Z0-9./=-]{0,12}",
        "-?[0-9]{1,6}(\\.[0-9]{1,4})?",
    ]
}

proptest! {
    /// No token soup makes the parser panic; it either parses or errors.
    #[test]
    fn parser_never_panics(args in prop::collection::vec(token(), 0..10)) {
        let _ = parse_args(&args);
    }

    /// Structurally valid `mine` invocations parse and keep their values.
    #[test]
    fn valid_mine_roundtrips(
        min_genes in 1usize..1000,
        min_conds in 2usize..50,
        gamma in 0.0f64..1.0,
        epsilon in 0.0f64..10.0,
        threads in 1usize..64,
    ) {
        let args: Vec<String> = vec![
            "mine".into(),
            "--input".into(),
            "m.tsv".into(),
            format!("--min-genes={min_genes}"),
            format!("--min-conds={min_conds}"),
            format!("--gamma={gamma}"),
            format!("--epsilon={epsilon}"),
            format!("--threads={threads}"),
        ];
        match parse_args(&args) {
            Ok(Command::Mine { input, params, threads: t, .. }) => {
                prop_assert_eq!(input, "m.tsv");
                prop_assert_eq!(params.min_genes, min_genes);
                prop_assert_eq!(params.min_conds, min_conds);
                prop_assert_eq!(params.epsilon, epsilon);
                prop_assert_eq!(t, threads);
            }
            other => prop_assert!(false, "expected Mine, got {:?}", other),
        }
    }

    /// Unknown option names are always rejected, never silently accepted.
    #[test]
    fn unknown_options_are_rejected(name in "[a-z]{3,10}") {
        prop_assume!(![
            "input", "output", "gamma", "epsilon", "threads", "impute", "stats",
            "genes", "conds", "clusters", "pattern", "seed", "go", "modules",
            "top", "gene", "algorithm", "delta", "help", "progress",
        ]
        .contains(&name.as_str()));
        let args: Vec<String> =
            vec!["mine".into(), "--input".into(), "x".into(), format!("--{name}"), "1".into()];
        prop_assert!(parse_args(&args).is_err());
    }
}
