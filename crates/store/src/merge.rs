//! Shard merging for distributed mining: combine per-lease `.rcs` shards
//! into one store **bit-identical** to a single-node run.
//!
//! # Why merge is deterministic
//!
//! A worker's shard holds exactly the clusters whose `chain[0]` falls in
//! its leased root range (subtree outputs are disjoint by root — the
//! delta-soundness argument in `regcluster_core::delta`). The merged
//! record *set* is therefore the disjoint union of the shards, equal to
//! the single-node set. [`StoreWriter::finish`] seals with
//! **canonical-id ordering** — records are sorted by (chain, p-members,
//! n-members) regardless of write order — and the META document is
//! copied verbatim from the shards (which all carry the provenance a
//! single-node run would write: same params, generation, matrix and
//! root fingerprints). Same record set + same canonical order + same
//! META + same dictionaries ⇒ same bytes.
//!
//! # Validation
//!
//! Merging refuses shards that disagree on META JSON or dictionaries
//! (they were mined from different inputs or params), and shards whose
//! root sets overlap (a double-granted lease or duplicate upload — the
//! union would no longer be disjoint, and dedup here would mask the
//! coordinator bug). The failpoint site `store::merge_seal` sits before
//! the sealing [`finish`](StoreWriter::finish), so fault tests can prove
//! a crashed merge never publishes a torn store.

use std::path::Path;

use crate::error::StoreError;
use crate::reader::ClusterStore;
use crate::writer::{StoreSummary, StoreWriter};

/// Merges `shards` (paths to sealed `.rcs` shard files) into a single
/// store at `out`, validating shard compatibility and root disjointness.
/// Returns the merged store's summary.
///
/// The output is written through the ordinary tmp + fsync + rename
/// discipline: `out` either holds the complete merged store or is left
/// untouched, never a torn intermediate.
///
/// # Errors
///
/// [`StoreError::Format`] when `shards` is empty, when shards disagree
/// on META JSON or dictionaries, or when two shards contain clusters
/// rooted at the same condition; otherwise any open/write/seal error
/// from the underlying reader and writer.
pub fn merge_shards(
    shards: &[impl AsRef<Path>],
    out: impl AsRef<Path>,
) -> Result<StoreSummary, StoreError> {
    if shards.is_empty() {
        return Err(StoreError::Format(
            "cannot merge zero shards into a store".into(),
        ));
    }
    let opened: Vec<ClusterStore> = shards
        .iter()
        .map(|p| ClusterStore::open(p.as_ref()))
        .collect::<Result<_, _>>()?;

    let first = &opened[0];
    let meta = first.meta_json();
    for (i, shard) in opened.iter().enumerate().skip(1) {
        if shard.meta_json() != meta {
            return Err(StoreError::Format(format!(
                "shard {} disagrees with shard 0 on META (params/provenance); \
                 shards of one merge must come from one coordinated run",
                shards[i].as_ref().display()
            )));
        }
        if shard.gene_names() != first.gene_names() || shard.cond_names() != first.cond_names() {
            return Err(StoreError::Format(format!(
                "shard {} disagrees with shard 0 on dictionaries",
                shards[i].as_ref().display()
            )));
        }
    }

    // Root disjointness: one owner per root condition across all shards.
    let n_conds = first.cond_names().len();
    let mut root_owner: Vec<Option<usize>> = vec![None; n_conds];
    for (i, shard) in opened.iter().enumerate() {
        for id in 0..shard.n_clusters() {
            let root = shard.cluster_root(id)? as usize;
            match root_owner[root] {
                None => root_owner[root] = Some(i),
                Some(owner) if owner == i => {}
                Some(owner) => {
                    return Err(StoreError::Format(format!(
                        "shards {} and {} both hold clusters rooted at \
                         condition {root}; leases must be disjoint",
                        shards[owner].as_ref().display(),
                        shards[i].as_ref().display()
                    )));
                }
            }
        }
    }

    let writer =
        StoreWriter::create_with_meta_json(out, first.gene_names(), first.cond_names(), &meta)?;
    for shard in &opened {
        for id in 0..shard.n_clusters() {
            writer.write_raw_record(shard.record_bytes(id)?)?;
        }
    }
    // The commit point: everything before this is scratch-file work.
    regcluster_failpoint::io("store::merge_seal")?;
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcluster_core::RegCluster;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("regcluster-merge-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn names(prefix: &str, n: usize) -> Vec<String> {
        (0..n).map(|i| format!("{prefix}{i}")).collect()
    }

    fn cluster(root: usize, genes: &[usize]) -> RegCluster {
        RegCluster {
            chain: vec![root, root + 1],
            p_members: genes.to_vec(),
            n_members: vec![],
        }
    }

    const META: &str = r#"{"min_genes":2,"min_conds":2,"gamma":{"FractionOfRange":0.1},"epsilon":0.5,"max_clusters":null,"maximal_only":false}"#;

    fn write_shard(path: &Path, clusters: &[RegCluster]) {
        let w =
            StoreWriter::create_with_meta_json(path, &names("g", 8), &names("c", 8), META).unwrap();
        for c in clusters {
            w.write_cluster(c).unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn merged_store_is_byte_identical_to_single_writer() {
        let dir = tmp_dir("golden");
        let all = vec![
            cluster(0, &[0, 1, 2]),
            cluster(0, &[1, 2, 3]),
            cluster(2, &[0, 3]),
            cluster(4, &[4, 5, 6]),
        ];
        // Single-writer reference, written in canonical arrival order.
        let single = dir.join("single.rcs");
        write_shard(&single, &all);
        // Two shards split by root, written in a scrambled order.
        let s0 = dir.join("shard-0.rcs");
        let s1 = dir.join("shard-1.rcs");
        write_shard(&s0, &[all[3].clone()]);
        write_shard(&s1, &[all[2].clone(), all[1].clone(), all[0].clone()]);
        let merged = dir.join("merged.rcs");
        let summary = merge_shards(&[&s0, &s1], &merged).unwrap();
        assert_eq!(summary.n_clusters, 4);
        assert_eq!(
            std::fs::read(&single).unwrap(),
            std::fs::read(&merged).unwrap(),
            "merged shards must be bit-identical to the single-writer store"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refuses_zero_shards() {
        let dir = tmp_dir("empty");
        let err = merge_shards(&[] as &[&Path], dir.join("out.rcs")).unwrap_err();
        assert!(matches!(err, StoreError::Format(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refuses_meta_mismatch() {
        let dir = tmp_dir("meta");
        let s0 = dir.join("a.rcs");
        let s1 = dir.join("b.rcs");
        write_shard(&s0, &[cluster(0, &[0, 1])]);
        let other = r#"{"min_genes":3,"min_conds":2,"gamma":{"FractionOfRange":0.1},"epsilon":0.5,"max_clusters":null,"maximal_only":false}"#;
        let w =
            StoreWriter::create_with_meta_json(&s1, &names("g", 8), &names("c", 8), other).unwrap();
        w.write_cluster(&cluster(2, &[0, 1, 2])).unwrap();
        w.finish().unwrap();
        let err = merge_shards(&[&s0, &s1], dir.join("out.rcs")).unwrap_err();
        assert!(matches!(err, StoreError::Format(m) if m.contains("META")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refuses_overlapping_roots() {
        let dir = tmp_dir("overlap");
        let s0 = dir.join("a.rcs");
        let s1 = dir.join("b.rcs");
        write_shard(&s0, &[cluster(0, &[0, 1])]);
        write_shard(&s1, &[cluster(0, &[2, 3])]);
        let err = merge_shards(&[&s0, &s1], dir.join("out.rcs")).unwrap_err();
        assert!(matches!(err, StoreError::Format(m) if m.contains("rooted at")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_seal_failpoint_leaves_no_output() {
        let dir = tmp_dir("failpoint");
        let s0 = dir.join("a.rcs");
        write_shard(&s0, &[cluster(0, &[0, 1])]);
        let out = dir.join("out.rcs");
        regcluster_failpoint::configure("store::merge_seal=io_err").unwrap();
        let err = merge_shards(&[&s0], &out).unwrap_err();
        regcluster_failpoint::clear();
        assert!(matches!(err, StoreError::Io(_)));
        assert!(!out.exists(), "a failed merge must not leave a store file");
        // A clean retry over the same shards succeeds.
        merge_shards(&[&s0], &out).unwrap();
        assert!(out.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
