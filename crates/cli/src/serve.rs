//! HTTP serving layer over a [`ClusterStore`].
//!
//! A deliberately minimal HTTP/1.1 server on [`std::net::TcpListener`] —
//! no external dependencies, consistent with the workspace's vendored-stub
//! policy. One acceptor thread feeds a fixed pool of worker threads over a
//! channel; each connection carries one `GET` request and is closed after
//! the response (`Connection: close`), which keeps the worker loop trivial
//! and is plenty for query traffic over a local store.
//!
//! Endpoints (JSON unless noted):
//!
//! * `GET /health` — liveness + cluster count;
//! * `GET /stats` — store facts (dims, provenance params) and per-endpoint
//!   request counts / latencies;
//! * `GET /clusters?gene=..&cond=..&min_genes=..&min_conds=..&top=..&limit=..`
//!   — conjunctive query over the store indexes (names or numeric ids;
//!   comma-separate for multiple);
//! * `GET /clusters/{id}` — one cluster, fully resolved to names;
//! * `GET /metrics` — the server's [`MetricsRegistry`] in the Prometheus
//!   text exposition format (see `docs/OBSERVABILITY.md` for the
//!   catalogue).
//!
//! All request accounting flows through registry-backed instruments
//! ([`ServeMetrics`]): `/stats` derives its per-endpoint counters from the
//! same cells `/metrics` exports, so the two views can never disagree.
//!
//! # Shutdown
//!
//! [`Server::shutdown`] (the SIGINT-equivalent) sets a flag, wakes the
//! acceptor with a loopback connection, lets the workers **drain** every
//! already-accepted connection, then joins all threads — no worker leak,
//! socket released. A request budget ([`ServeConfig::max_requests`])
//! triggers the same path from inside a worker, which is how the smoke
//! tests and `--requests` exercise graceful shutdown end-to-end.
//!
//! # Load shedding
//!
//! The acceptor hands connections to the workers over a **bounded** queue
//! ([`ServeConfig::queue_capacity`]). When every worker is busy and the
//! queue is full, further connections are answered immediately with
//! `503 Service Unavailable` + `Retry-After: 1` and closed, instead of
//! piling up until the kernel backlog overflows and clients time out
//! blind. Shed connections are counted by the
//! [`HTTP_SHED_METRIC`] counter on `/metrics`, so overload is visible the
//! moment it starts (see `docs/ROBUSTNESS.md`).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use regcluster_obs::{Counter, Histogram, MetricsRegistry};
use regcluster_store::{ClusterStore, Generations, Query, StoreStats};
use serde::Serialize;

/// How a [`Server`] is launched.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Port to bind on 127.0.0.1 (0 = ephemeral, see [`Server::port`]).
    pub port: u16,
    /// Worker threads handling requests (≥ 1 enforced).
    pub threads: usize,
    /// Stop gracefully after this many requests (used by smoke tests and
    /// `--requests`); `None` serves until [`Server::shutdown`].
    pub max_requests: Option<u64>,
    /// Accepted connections waiting for a worker (≥ 1 enforced); beyond
    /// it the acceptor sheds with `503 + Retry-After` (see the module
    /// docs on load shedding).
    pub queue_capacity: usize,
    /// Socket read/write timeout per connection. A client that connects
    /// but never sends a request line is answered `408 Request Timeout`
    /// after this long instead of pinning a worker forever.
    pub io_timeout: Duration,
    /// Generations directory to watch (`serve --watch <dir>`): a thread
    /// polls its `CURRENT` pointer and hot-swaps the served store to each
    /// newly published generation. In-flight requests keep the [`Arc`]
    /// they started with and drain off the old generation; nothing is
    /// dropped or retried.
    pub watch: Option<PathBuf>,
    /// How often the watcher re-reads `CURRENT`.
    pub watch_poll: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            threads: 4,
            max_requests: None,
            queue_capacity: 64,
            io_timeout: Duration::from_secs(5),
            watch: None,
            watch_poll: Duration::from_millis(100),
        }
    }
}

/// Routes with dedicated metrics slots (the `route` label values on the
/// HTTP metrics).
pub const ROUTES: [&str; 6] = [
    "/health",
    "/stats",
    "/clusters",
    "/clusters/{id}",
    "/metrics",
    "other",
];

/// Name of the per-route request counter.
pub const HTTP_REQUESTS_METRIC: &str = "regcluster_http_requests_total";
/// Name of the per-route handling-latency histogram.
pub const HTTP_DURATION_METRIC: &str = "regcluster_http_request_duration_seconds";
/// Name of the overload counter: connections answered `503 + Retry-After`
/// because the bounded accept queue was full.
pub const HTTP_SHED_METRIC: &str = "regcluster_http_requests_shed_total";
/// Name of the hot-swap counter, labelled by the generation swapped *to*
/// (`generation="N"`). The initial load at startup increments its
/// generation's cell too, so `/metrics` always names every generation
/// this process has served; the family's sum minus one is the number of
/// live swaps.
pub const STORE_SWAPS_METRIC: &str = "regcluster_store_swaps_total";
/// Name of the watcher-error counter: polls of a `--watch` generations
/// directory that found an unreadable `CURRENT` pointer or failed to open
/// the store it named. The server keeps serving its current generation
/// and retries next poll; a growing value means the directory is damaged
/// or mid-publish churn is outrunning the poll interval.
pub const STORE_WATCH_ERRORS_METRIC: &str = "regcluster_store_watch_errors_total";

/// Handling-latency bucket bounds: local-store queries are sub-millisecond,
/// the tail covers cold caches and large result pages.
const HTTP_LATENCY_BOUNDS: [f64; 9] = [0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0];

/// Per-endpoint request instruments, backed by a [`MetricsRegistry`].
///
/// One counter and one latency histogram per [`ROUTES`] entry, resolved at
/// registration; recording a request is a handful of relaxed atomic
/// writes on the worker thread.
pub struct ServeMetrics {
    requests: [Counter; ROUTES.len()],
    latency: [Histogram; ROUTES.len()],
    /// Connections shed with 503 because the accept queue was full. Not
    /// part of `requests` — a shed connection was never handled, so it
    /// does not count toward the `max_requests` budget.
    shed: Counter,
    /// `--watch` polls that could not read `CURRENT` or open the store it
    /// named (the server keeps serving and retries).
    watch_errors: Counter,
}

impl ServeMetrics {
    /// Registers the HTTP instruments in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        let requests = ROUTES.map(|route| {
            registry.counter(
                HTTP_REQUESTS_METRIC,
                "HTTP requests handled, by route pattern.",
                &[("route", route)],
            )
        });
        let latency = ROUTES.map(|route| {
            registry.histogram(
                HTTP_DURATION_METRIC,
                "Request handling latency in seconds, by route pattern.",
                &[("route", route)],
                &HTTP_LATENCY_BOUNDS,
            )
        });
        let shed = registry.counter(
            HTTP_SHED_METRIC,
            "Connections answered 503 + Retry-After because the accept queue was full.",
            &[],
        );
        let watch_errors = registry.counter(
            STORE_WATCH_ERRORS_METRIC,
            "Watch polls that found an unreadable CURRENT pointer or an \
             unopenable store (the server keeps serving and retries).",
            &[],
        );
        Self {
            requests,
            latency,
            shed,
            watch_errors,
        }
    }

    /// Records one handled request and returns the new server-wide total.
    fn record(&self, route: usize, started: Instant) -> u64 {
        self.requests[route].inc();
        self.latency[route].observe(started.elapsed().as_secs_f64());
        self.total()
    }

    /// Requests handled across all routes. Monotone (counters only grow),
    /// which is all the request-budget check needs.
    fn total(&self) -> u64 {
        self.requests.iter().map(Counter::get).sum()
    }
}

/// One endpoint's counters in the `/stats` payload.
#[derive(Debug, Clone, Serialize)]
pub struct EndpointMetrics {
    /// Route pattern (e.g. `/clusters/{id}`).
    pub path: String,
    /// Requests handled.
    pub count: u64,
    /// Summed handling latency, microseconds.
    pub total_latency_us: u64,
    /// Mean handling latency, microseconds (0 when unused).
    pub mean_latency_us: u64,
}

/// The `/stats` response document.
#[derive(Debug, Clone, Serialize)]
pub struct StatsResponse {
    /// Store facts and provenance.
    pub store: StoreStats,
    /// Total requests handled since start.
    pub requests_total: u64,
    /// Per-endpoint counters.
    pub endpoints: Vec<EndpointMetrics>,
}

/// One cluster resolved against the store dictionaries (the
/// `/clusters/{id}` payload, also used by `regcluster query --json`).
#[derive(Debug, Clone, Serialize)]
pub struct ClusterDoc {
    /// Cluster id (canonical-order rank in the store).
    pub id: u32,
    /// Member-gene count.
    pub n_genes: u32,
    /// Chain length.
    pub n_conds: u32,
    /// Chain condition ids, regulation order.
    pub chain: Vec<usize>,
    /// Chain condition names, regulation order.
    pub chain_names: Vec<String>,
    /// Positively co-regulated member ids.
    pub p_members: Vec<usize>,
    /// Positively co-regulated member names.
    pub p_names: Vec<String>,
    /// Negatively co-regulated member ids.
    pub n_members: Vec<usize>,
    /// Negatively co-regulated member names.
    pub n_names: Vec<String>,
}

/// The `/clusters` list response.
#[derive(Debug, Clone, Serialize)]
pub struct ClustersResponse {
    /// Matches in the store (before `limit`).
    pub total: usize,
    /// Matching ids (all of them).
    pub ids: Vec<u32>,
    /// Materialized clusters, at most `limit` (default 50).
    pub clusters: Vec<ClusterDoc>,
}

#[derive(Debug, Clone, Serialize)]
struct ErrorResponse {
    error: String,
}

/// What a finished server reports.
#[derive(Debug, Clone, Copy)]
pub struct ServeReport {
    /// Requests handled over the server's lifetime.
    pub requests: u64,
}

/// Builds the [`ClusterDoc`] for one stored cluster.
///
/// # Errors
///
/// Propagates [`regcluster_store::StoreError`] for out-of-bounds ids.
pub fn cluster_doc(
    store: &ClusterStore,
    id: u32,
) -> Result<ClusterDoc, regcluster_store::StoreError> {
    let c = store.cluster(id)?;
    let cond_name = |i: &usize| store.cond_names()[*i].clone();
    let gene_name = |i: &usize| store.gene_names()[*i].clone();
    Ok(ClusterDoc {
        id,
        n_genes: c.n_genes() as u32,
        n_conds: c.n_conditions() as u32,
        chain_names: c.chain.iter().map(cond_name).collect(),
        p_names: c.p_members.iter().map(gene_name).collect(),
        n_names: c.n_members.iter().map(gene_name).collect(),
        chain: c.chain,
        p_members: c.p_members,
        n_members: c.n_members,
    })
}

/// Resolves comma-separated gene specs (names, or numeric ids as written
/// by `mine --output`) against the store dictionary.
///
/// # Errors
///
/// A human-readable message naming the first unresolvable spec.
pub fn resolve_genes(store: &ClusterStore, specs: &str) -> Result<Vec<u32>, String> {
    resolve(specs, |s| store.gene_id(s), store.n_genes(), "gene")
}

/// Resolves comma-separated condition specs (names or numeric ids).
///
/// # Errors
///
/// A human-readable message naming the first unresolvable spec.
pub fn resolve_conds(store: &ClusterStore, specs: &str) -> Result<Vec<u32>, String> {
    resolve(specs, |s| store.cond_id(s), store.n_conds(), "condition")
}

fn resolve(
    specs: &str,
    lookup: impl Fn(&str) -> Option<u32>,
    bound: u32,
    what: &str,
) -> Result<Vec<u32>, String> {
    let mut out = Vec::new();
    for spec in specs.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        if let Some(id) = lookup(spec) {
            out.push(id);
        } else if let Ok(id) = spec.parse::<u32>() {
            if id >= bound {
                return Err(format!("{what} id {id} out of range (store has {bound})"));
            }
            out.push(id);
        } else {
            return Err(format!("unknown {what} {spec:?}"));
        }
    }
    Ok(out)
}

struct Shared {
    /// The served store, swappable while requests are in flight: each
    /// request clones the [`Arc`] once up front and works off that
    /// snapshot, so a hot swap never changes the store mid-request and
    /// the old generation is freed when its last reader finishes.
    store: RwLock<Arc<ClusterStore>>,
    /// The server's registry; `/metrics` encodes it, [`ServeMetrics`]
    /// holds pre-resolved handles into it.
    registry: MetricsRegistry,
    metrics: ServeMetrics,
    stop: AtomicBool,
    port: u16,
    max_requests: Option<u64>,
    io_timeout: Duration,
}

impl Shared {
    /// The store snapshot a request should serve from.
    fn store(&self) -> Arc<ClusterStore> {
        Arc::clone(
            &self
                .store
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Publishes a freshly opened generation to future requests and
    /// stamps its swap-counter cell.
    fn swap_store(&self, store: Arc<ClusterStore>) {
        let generation = store.generation();
        *self
            .store
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = store;
        self.record_generation(generation);
    }

    /// Increments the [`STORE_SWAPS_METRIC`] cell of `generation`.
    fn record_generation(&self, generation: u64) {
        self.registry
            .counter(
                STORE_SWAPS_METRIC,
                "Store generations this server has swapped in (the initial \
                 load counts once), by generation number.",
                &[("generation", &generation.to_string())],
            )
            .inc();
    }

    /// Sets the stop flag and wakes the acceptor (idempotent).
    fn trigger_shutdown(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // A loopback connection unblocks the blocking accept; the
            // acceptor re-checks the flag before queueing it.
            let _ = TcpStream::connect(("127.0.0.1", self.port));
        }
    }
}

/// A running cluster-store server. See the module docs for endpoints and
/// the shutdown protocol.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:{config.port}` and starts the acceptor and worker
    /// threads. Returns once the socket is listening.
    ///
    /// # Errors
    ///
    /// Any bind failure, as [`std::io::Error`].
    pub fn start(store: Arc<ClusterStore>, config: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let port = listener.local_addr()?.port();
        let registry = MetricsRegistry::new();
        let metrics = ServeMetrics::register(&registry);
        let initial_generation = store.generation();
        let shared = Arc::new(Shared {
            store: RwLock::new(store),
            registry,
            metrics,
            stop: AtomicBool::new(false),
            port,
            max_requests: config.max_requests,
            io_timeout: config.io_timeout,
        });
        shared.record_generation(initial_generation);
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            sync_channel(config.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                loop {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if shared.stop.load(Ordering::SeqCst) {
                                break; // the wake-up connection, or late traffic
                            }
                            match tx.try_send(stream) {
                                Ok(()) => {}
                                Err(TrySendError::Full(stream)) => {
                                    // Overload: every worker busy and the
                                    // queue full. Shed instead of queueing
                                    // unboundedly; the client gets an
                                    // immediate, honest retry signal.
                                    shared.metrics.shed.inc();
                                    shed_connection(stream, shared.io_timeout);
                                }
                                Err(TrySendError::Disconnected(_)) => break,
                            }
                        }
                        Err(_) => {
                            if shared.stop.load(Ordering::SeqCst) {
                                break;
                            }
                        }
                    }
                }
                // Dropping the sender closes the channel; workers drain
                // whatever was already accepted, then exit.
            })
        };

        let workers = (0..config.threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    let next = {
                        let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        guard.recv()
                    };
                    let Ok(stream) = next else {
                        break; // channel closed and drained
                    };
                    let handled = handle_connection(stream, &shared);
                    if handled {
                        let total = shared.metrics.total();
                        if shared.max_requests.is_some_and(|cap| total >= cap) {
                            shared.trigger_shutdown();
                        }
                    }
                })
            })
            .collect();

        // --watch: poll the generations directory's CURRENT pointer and
        // hot-swap to each newly published generation. The watcher never
        // sweeps (that is the publisher's job — see the Generations docs)
        // and tolerates transient read errors: a torn observation just
        // means the next poll tries again.
        let watcher = config.watch.as_ref().map(|dir| {
            let shared = Arc::clone(&shared);
            let dir = dir.clone();
            let poll = config.watch_poll;
            std::thread::spawn(move || {
                let Ok(gens) = Generations::open(&dir) else {
                    return;
                };
                let mut serving = shared.store().generation();
                while !shared.stop.load(Ordering::SeqCst) {
                    std::thread::sleep(poll);
                    let current = match gens.current() {
                        Ok(Some(current)) => current,
                        // No published generation (yet) is not an error.
                        Ok(None) => continue,
                        Err(_) => {
                            shared.metrics.watch_errors.inc();
                            continue;
                        }
                    };
                    if current == serving {
                        continue;
                    }
                    // CURRENT only ever points at a completely sealed
                    // store, so a failed open is transient (e.g. the file
                    // vanished under a concurrent publish burst): keep
                    // serving the old generation and retry next poll.
                    match ClusterStore::open(gens.path_for(current)) {
                        Ok(cs) => {
                            shared.swap_store(Arc::new(cs));
                            serving = current;
                        }
                        Err(_) => {
                            shared.metrics.watch_errors.inc();
                            continue;
                        }
                    }
                }
            })
        });

        Ok(Server {
            shared,
            acceptor,
            workers,
            watcher,
        })
    }

    /// The bound port (resolves port 0 to the actual ephemeral port).
    pub fn port(&self) -> u16 {
        self.shared.port
    }

    /// Requests shutdown (the SIGINT-equivalent) and waits for the drain:
    /// already-accepted connections are still served, then all threads are
    /// joined and the socket is released.
    pub fn shutdown(self) -> ServeReport {
        self.shared.trigger_shutdown();
        self.join()
    }

    /// Blocks until the server stops on its own — via the request budget,
    /// or never for an unbounded server.
    pub fn wait(self) -> ServeReport {
        self.join()
    }

    fn join(self) -> ServeReport {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        if let Some(w) = self.watcher {
            let _ = w.join();
        }
        ServeReport {
            requests: self.shared.metrics.total(),
        }
    }
}

/// Set once the socket-timeout setters have failed and been reported;
/// later failures stay quiet so a broken platform doesn't flood stderr.
static TIMEOUT_SETUP_LOGGED: AtomicBool = AtomicBool::new(false);

/// Arms read/write timeouts on `stream`. Failure is survivable — the
/// connection is served without timeout protection — but it is reported
/// once per process rather than silently discarded.
fn arm_timeouts(stream: &TcpStream, timeout: Duration) {
    let result = stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)));
    if let Err(e) = result {
        if !TIMEOUT_SETUP_LOGGED.swap(true, Ordering::Relaxed) {
            eprintln!(
                "regcluster serve: could not arm socket timeouts ({e}); \
                 serving without them — slow clients may pin workers"
            );
        }
    }
}

/// Is `e` the read-timeout expiring? (`WouldBlock` on Unix,
/// `TimedOut` on Windows — both mean the peer went quiet.)
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Handles one connection (one request). Returns whether a request was
/// actually parsed and counted.
fn handle_connection(stream: TcpStream, shared: &Shared) -> bool {
    let started = Instant::now();
    arm_timeouts(&stream, shared.io_timeout);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Err(e) if is_timeout(&e) => {
            // The client connected but never sent a request line. Answer
            // cleanly instead of resetting, so the client can tell a
            // deliberate timeout from a crash.
            let mut stream = reader.into_inner();
            respond(&mut stream, 408, JSON, &json_error("request timed out"));
            shared.metrics.record(OTHER_SLOT, started);
            return true;
        }
        Err(_) => return false,                   // dead client
        Ok(_) if line.is_empty() => return false, // wake-up connection / EOF
        Ok(_) => {}
    }
    // Drain headers so well-behaved clients aren't reset mid-send.
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    let mut stream = reader.into_inner();

    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => {
            respond(
                &mut stream,
                400,
                JSON,
                &json_error("malformed request line"),
            );
            return false;
        }
    };
    if method != "GET" {
        respond(&mut stream, 405, JSON, &json_error("only GET is supported"));
        shared.metrics.record(OTHER_SLOT, started);
        return true;
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let (route, status, content_type, body) = route_request(shared, path, query);
    respond(&mut stream, status, content_type, &body);
    shared.metrics.record(route, started);
    true
}

/// `Content-Type` of every JSON endpoint.
const JSON: &str = "application/json";
/// `Content-Type` of `/metrics` (Prometheus text exposition 0.0.4).
const PROMETHEUS_TEXT: &str = "text/plain; version=0.0.4; charset=utf-8";
/// Metrics slot of unmatched paths / methods.
const OTHER_SLOT: usize = ROUTES.len() - 1;

/// Dispatches a parsed request, returning
/// (metrics slot, status, content type, body).
fn route_request(shared: &Shared, path: &str, query: &str) -> (usize, u16, &'static str, String) {
    // One snapshot per request: a concurrent hot swap affects the *next*
    // request, never this one, and the old generation stays alive until
    // its last in-flight reader drops this Arc.
    let store = shared.store();
    let store = &store;
    match path {
        "/health" => {
            let body = format!("{{\"status\":\"ok\",\"clusters\":{}}}", store.n_clusters());
            (0, 200, JSON, body)
        }
        "/stats" => {
            let endpoints = ROUTES
                .iter()
                .enumerate()
                .map(|(i, path)| {
                    let count = shared.metrics.requests[i].get();
                    // The histogram accumulates seconds; /stats predates the
                    // registry and reports microseconds, so convert.
                    let total_latency_us = (shared.metrics.latency[i].sum() * 1e6) as u64;
                    EndpointMetrics {
                        path: (*path).to_string(),
                        count,
                        total_latency_us,
                        mean_latency_us: total_latency_us.checked_div(count).unwrap_or(0),
                    }
                })
                .collect();
            let doc = StatsResponse {
                store: store.stats(),
                requests_total: shared.metrics.total(),
                endpoints,
            };
            match serde_json::to_string(&doc) {
                Ok(body) => (1, 200, JSON, body),
                Err(e) => (1, 500, JSON, json_error(&e.to_string())),
            }
        }
        "/clusters" => match clusters_query(store, query) {
            Ok(body) => (2, 200, JSON, body),
            Err(msg) => (2, 400, JSON, json_error(&msg)),
        },
        "/metrics" => (4, 200, PROMETHEUS_TEXT, shared.registry.encode_prometheus()),
        _ => {
            if let Some(rest) = path.strip_prefix("/clusters/") {
                match rest.parse::<u32>() {
                    Ok(id) if id < store.n_clusters() => {
                        match cluster_doc(store, id).map(|d| serde_json::to_string(&d)) {
                            Ok(Ok(body)) => (3, 200, JSON, body),
                            Ok(Err(e)) => (3, 500, JSON, json_error(&e.to_string())),
                            Err(e) => (3, 500, JSON, json_error(&e.to_string())),
                        }
                    }
                    Ok(id) => (
                        3,
                        404,
                        JSON,
                        json_error(&format!(
                            "cluster {id} not found (store holds {})",
                            store.n_clusters()
                        )),
                    ),
                    Err(_) => (3, 400, JSON, json_error("cluster id must be an integer")),
                }
            } else {
                (OTHER_SLOT, 404, JSON, json_error("unknown path"))
            }
        }
    }
}

/// Executes `GET /clusters` query parameters against the store.
fn clusters_query(store: &ClusterStore, raw_query: &str) -> Result<String, String> {
    let mut q = Query::new();
    let mut limit = 50usize;
    for (key, value) in parse_query(raw_query)? {
        match key.as_str() {
            "gene" => q.genes.extend(resolve_genes(store, &value)?),
            "cond" => q.conds.extend(resolve_conds(store, &value)?),
            "min_genes" => {
                q.min_genes = value
                    .parse()
                    .map_err(|_| format!("min_genes must be an integer, got {value:?}"))?;
            }
            "min_conds" => {
                q.min_conds = value
                    .parse()
                    .map_err(|_| format!("min_conds must be an integer, got {value:?}"))?;
            }
            "top" => {
                q.top_k = Some(
                    value
                        .parse()
                        .map_err(|_| format!("top must be an integer, got {value:?}"))?,
                );
            }
            "limit" => {
                limit = value
                    .parse()
                    .map_err(|_| format!("limit must be an integer, got {value:?}"))?;
            }
            other => return Err(format!("unknown query parameter {other:?}")),
        }
    }
    let ids = store.query(&q).map_err(|e| e.to_string())?;
    let clusters: Vec<ClusterDoc> = ids
        .iter()
        .take(limit)
        .map(|&id| cluster_doc(store, id))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let doc = ClustersResponse {
        total: ids.len(),
        ids,
        clusters,
    };
    serde_json::to_string(&doc).map_err(|e| e.to_string())
}

/// Splits and percent-decodes `k=v&k=v` query strings.
fn parse_query(raw: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for pair in raw.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.push((percent_decode(k)?, percent_decode(v)?));
    }
    Ok(out)
}

fn percent_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| format!("bad percent-escape in {s:?}"))?;
                out.push(hex);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("query value {s:?} is not UTF-8"))
}

fn json_error(msg: &str) -> String {
    serde_json::to_string(&ErrorResponse {
        error: msg.to_string(),
    })
    .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string())
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

/// Answers a shed connection from the acceptor thread: `503` with a
/// `Retry-After` hint so well-behaved clients back off instead of
/// hammering a saturated server. Best-effort — the client may already be
/// gone, and the acceptor must not block on it.
fn shed_connection(mut stream: TcpStream, timeout: Duration) {
    arm_timeouts(&stream, timeout);
    let body = json_error("server overloaded; retry shortly");
    let response = format!(
        "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Type: {JSON}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c").unwrap(), "a b c");
        assert_eq!(percent_decode("plain").unwrap(), "plain");
        assert!(percent_decode("bad%zz").is_err());
        assert!(percent_decode("trunc%2").is_err());
    }

    #[test]
    fn query_string_parsing() {
        let kv = parse_query("gene=g1%2Cg2&min_genes=3&flag").unwrap();
        assert_eq!(
            kv,
            vec![
                ("gene".into(), "g1,g2".into()),
                ("min_genes".into(), "3".into()),
                ("flag".into(), String::new()),
            ]
        );
    }
}
