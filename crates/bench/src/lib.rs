#![warn(missing_docs)]

//! Shared harness utilities for the experiment binaries.
//!
//! Every experiment binary prints a human-readable table to stdout and
//! writes a JSON copy of the same numbers into the results directory
//! (`REGCLUSTER_RESULTS` or `./results`), so EXPERIMENTS.md entries are
//! regenerable and diffable.

pub mod plot;

use std::path::PathBuf;
use std::time::Instant;

use serde::Serialize;

/// One point of a runtime series (a Figure 7 panel).
#[derive(Debug, Clone, Serialize)]
pub struct SeriesPoint {
    /// The swept parameter value.
    pub x: f64,
    /// Mean wall-clock mining time in seconds.
    pub runtime_s: f64,
    /// Clusters found at this point (last repetition).
    pub n_clusters: usize,
}

/// Times a closure, returning its result and elapsed seconds.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// The directory experiment artifacts are written to
/// (`$REGCLUSTER_RESULTS`, default `./results`), created on demand.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("REGCLUSTER_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

/// Serializes `value` as pretty JSON into `results_dir()/name`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(name);
    let json = serde_json::to_string_pretty(value).expect("experiment results serialize");
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
    eprintln!("wrote {}", path.display());
}

/// Writes raw text (e.g. a profile CSV) into `results_dir()/name`.
pub fn write_text(name: &str, text: &str) {
    let path = results_dir().join(name);
    std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
    eprintln!("wrote {}", path.display());
}

/// True when `--quick` was passed (reduced sweeps for smoke testing).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Formats a series as an aligned text table.
pub fn series_table(header: &str, points: &[SeriesPoint]) -> String {
    let mut out = format!("{header:>12}  runtime (s)  clusters\n");
    for p in points {
        out.push_str(&format!(
            "{:>12}  {:>11.3}  {:>8}\n",
            p.x, p.runtime_s, p.n_clusters
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_and_passes_through() {
        let (v, secs) = time(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn series_table_formats_rows() {
        let pts = vec![SeriesPoint {
            x: 1000.0,
            runtime_s: 0.5,
            n_clusters: 30,
        }];
        let t = series_table("#genes", &pts);
        assert!(t.contains("#genes"));
        assert!(t.contains("1000"));
        assert!(t.contains("0.500"));
        assert!(t.contains("30"));
    }
}
