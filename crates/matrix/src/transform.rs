//! Whole-matrix value transforms.
//!
//! The paper's motivation (§1.1) observes that prior pattern-based models rely
//! on *global* transforms: pCluster/δ-cluster assume scaling patterns become
//! shifting patterns after a logarithm over the whole dataset (Equation 1),
//! while Tricluster assumes shifting patterns become scaling patterns after an
//! exponential (Equation 2). These transforms are provided here so the
//! baseline miners can be run exactly the way those papers prescribe. Per-gene
//! standardizations used elsewhere in the microarray literature are included
//! as well.

use crate::{ExpressionMatrix, MatrixError};

/// Replaces every value with `log_base(value)`.
///
/// This is the pCluster/δ-cluster preprocessing that maps pure *scaling*
/// patterns (`d_i = s1 · d_j`) onto pure *shifting* patterns
/// (`log d_i = log d_j + log s1`).
///
/// # Errors
///
/// Fails if any value is not strictly positive (the transform the prior work
/// assumes is only defined on positive expression levels) or `base` is not a
/// finite value greater than 1.
pub fn log_transform(
    matrix: &ExpressionMatrix,
    base: f64,
) -> Result<ExpressionMatrix, MatrixError> {
    if !(base.is_finite() && base > 1.0) {
        return Err(MatrixError::Transform(format!(
            "log base must be > 1, got {base}"
        )));
    }
    let ln_base = base.ln();
    for (g, row) in matrix.rows() {
        if let Some(c) = row.iter().position(|&v| v <= 0.0) {
            return Err(MatrixError::Transform(format!(
                "log transform requires positive values; gene {} condition {} is {}",
                matrix.gene_name(g),
                matrix.condition_name(c),
                row[c]
            )));
        }
    }
    let mut out = matrix.clone();
    out.map_values(|v| v.ln() / ln_base)?;
    Ok(out)
}

/// Replaces every value with `base^value`.
///
/// This is the Tricluster preprocessing that maps pure *shifting* patterns
/// (`d_i = d_j + s2`) onto pure *scaling* patterns
/// (`base^{d_i} = base^{d_j} · base^{s2}`).
///
/// # Errors
///
/// Fails if `base` is invalid or the result overflows to infinity.
pub fn exp_transform(
    matrix: &ExpressionMatrix,
    base: f64,
) -> Result<ExpressionMatrix, MatrixError> {
    if !(base.is_finite() && base > 1.0) {
        return Err(MatrixError::Transform(format!(
            "exp base must be > 1, got {base}"
        )));
    }
    let mut out = matrix.clone();
    out.map_values(|v| base.powf(v))?;
    Ok(out)
}

/// Standardizes each gene profile to zero mean and unit variance.
///
/// Genes with zero variance (flat profiles) are mapped to all-zero rows
/// rather than failing, because flat genes are legitimate (and uninteresting)
/// microarray rows.
pub fn zscore_by_gene(matrix: &ExpressionMatrix) -> ExpressionMatrix {
    let mut out = matrix.clone();
    for g in 0..matrix.n_genes() {
        let mean = matrix.gene_mean(g);
        let std = matrix.gene_std(g);
        let row = out.row_mut(g);
        if std == 0.0 {
            for v in row.iter_mut() {
                *v = 0.0;
            }
        } else {
            for v in row.iter_mut() {
                *v = (*v - mean) / std;
            }
        }
    }
    out
}

/// Rescales each gene profile linearly onto `[0, 1]`.
///
/// Flat genes are mapped to all-zero rows.
pub fn minmax_by_gene(matrix: &ExpressionMatrix) -> ExpressionMatrix {
    let mut out = matrix.clone();
    for g in 0..matrix.n_genes() {
        let (lo, hi) = matrix.gene_range(g);
        let span = hi - lo;
        let row = out.row_mut(g);
        if span == 0.0 {
            for v in row.iter_mut() {
                *v = 0.0;
            }
        } else {
            for v in row.iter_mut() {
                *v = (*v - lo) / span;
            }
        }
    }
    out
}

/// Shifts the whole matrix so its global minimum becomes `target_min`.
///
/// Useful before [`log_transform`] when a dataset (like the paper's running
/// example) contains non-positive values.
pub fn shift_to_min(matrix: &ExpressionMatrix, target_min: f64) -> ExpressionMatrix {
    let global_min = matrix
        .flat_values()
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let delta = target_min - global_min;
    let mut out = matrix.clone();
    out.map_values(|v| v + delta)
        .expect("shifting finite values by a finite delta stays finite");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: Vec<Vec<f64>>) -> ExpressionMatrix {
        let genes = (0..rows.len()).map(|i| format!("g{i}")).collect();
        let conds = (0..rows[0].len()).map(|i| format!("c{i}")).collect();
        ExpressionMatrix::from_rows(genes, conds, rows).unwrap()
    }

    #[test]
    fn log_maps_scaling_to_shifting() {
        // d2 = 3 * d1, so log d2 = log d1 + log 3 (constant column shift).
        let m = matrix(vec![vec![1.0, 2.0, 8.0], vec![3.0, 6.0, 24.0]]);
        let t = log_transform(&m, 2.0).unwrap();
        let shift0 = t.value(1, 0) - t.value(0, 0);
        let shift1 = t.value(1, 1) - t.value(0, 1);
        let shift2 = t.value(1, 2) - t.value(0, 2);
        assert!((shift0 - 3f64.log2()).abs() < 1e-12);
        assert!((shift0 - shift1).abs() < 1e-12);
        assert!((shift1 - shift2).abs() < 1e-12);
    }

    #[test]
    fn log_rejects_non_positive() {
        let m = matrix(vec![vec![1.0, 0.0]]);
        assert!(matches!(
            log_transform(&m, 2.0),
            Err(MatrixError::Transform(_))
        ));
        let m = matrix(vec![vec![1.0, -2.0]]);
        assert!(log_transform(&m, 2.0).is_err());
    }

    #[test]
    fn log_rejects_bad_base() {
        let m = matrix(vec![vec![1.0]]);
        assert!(log_transform(&m, 1.0).is_err());
        assert!(log_transform(&m, f64::NAN).is_err());
    }

    #[test]
    fn exp_maps_shifting_to_scaling() {
        // d2 = d1 + 2, so 2^{d2} = 2^{d1} * 4 (constant column ratio).
        let m = matrix(vec![vec![0.0, 1.0, 3.0], vec![2.0, 3.0, 5.0]]);
        let t = exp_transform(&m, 2.0).unwrap();
        for c in 0..3 {
            assert!((t.value(1, c) / t.value(0, c) - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn exp_rejects_overflow() {
        let m = matrix(vec![vec![1e4]]);
        assert!(exp_transform(&m, 10.0).is_err());
    }

    #[test]
    fn exp_inverts_log() {
        let m = matrix(vec![vec![1.0, 2.0, 4.0], vec![0.5, 5.0, 50.0]]);
        let t = exp_transform(&log_transform(&m, 2.0).unwrap(), 2.0).unwrap();
        for (g, row) in m.rows() {
            for (c, &v) in row.iter().enumerate() {
                assert!((t.value(g, c) - v).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn zscore_standardizes() {
        let m = matrix(vec![vec![1.0, 2.0, 3.0], vec![5.0, 5.0, 5.0]]);
        let t = zscore_by_gene(&m);
        assert!((t.gene_mean(0)).abs() < 1e-12);
        assert!((t.gene_std(0) - 1.0).abs() < 1e-12);
        assert_eq!(t.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn minmax_rescales() {
        let m = matrix(vec![vec![-2.0, 0.0, 2.0], vec![7.0, 7.0, 7.0]]);
        let t = minmax_by_gene(&m);
        assert_eq!(t.row(0), &[0.0, 0.5, 1.0]);
        assert_eq!(t.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn shift_to_min_makes_positive() {
        let m = matrix(vec![vec![-15.0, 0.0, 10.0]]);
        let t = shift_to_min(&m, 1.0);
        assert_eq!(t.row(0), &[1.0, 16.0, 26.0]);
        assert!(log_transform(&t, 2.0).is_ok());
    }
}
