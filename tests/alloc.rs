//! Allocation regression tests for the enumeration core.
//!
//! The refactored miner draws all per-node working memory from a
//! [`MineWorkspace`], so once the workspace buffers have grown to their
//! high-water marks a mining run performs **zero heap allocations per
//! enumeration node** — the only remaining allocations are for the clusters
//! it actually emits. These tests pin that property down with a counting
//! global allocator:
//!
//! * warmed runs of workloads that emit nothing must allocate **exactly
//!   zero** times, even though they explore hundreds of nodes;
//! * warmed runs of emitting workloads must stay within a small
//!   per-emitted-cluster budget, independent of the node count;
//! * duplicate probes (pruning rule 3(b)) must allocate nothing — the
//!   interned dedup keys are only materialized for fresh clusters.
//!
//! The counter is thread-local, so the parallel test harness does not
//! perturb the counts, and `try_with` keeps the allocator safe during TLS
//! teardown.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use regcluster_core::{
    metrics::MINE_NODES_METRIC, MetricsObserver, MineWorkspace, Miner, MiningParams, MiningStats,
    RegulationThreshold,
};
use regcluster_datagen::{generate, running_example, PatternKind, SyntheticConfig};
use regcluster_matrix::ExpressionMatrix;
use regcluster_obs::MetricsRegistry;

thread_local! {
    /// Number of allocator calls (alloc / realloc / alloc_zeroed) made by
    /// the current thread.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the counter update cannot
// allocate (Cell<u64> in a const-initialized thread local) and tolerates
// TLS teardown via `try_with`.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many allocator calls it made on this thread.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.with(Cell::get);
    let result = f();
    (ALLOCS.with(Cell::get) - before, result)
}

/// Upper bound on allocator calls per emitted cluster in a warmed run:
/// the `RegCluster` materialization (chain + member vectors), the interned
/// dedup key (arena + bucket growth) and amortized growth of the output
/// vector. Deliberately tight — a single stray allocation on the per-node
/// path would blow through it on any workload with more nodes than
/// clusters.
const PER_EMISSION_BUDGET: u64 = 16;

/// The seeded 100×30 synthetic workload also used by the golden-output
/// tests: 6 planted shifting-and-scaling clusters, 30% negative members.
fn synthetic_100x30() -> ExpressionMatrix {
    let cfg = SyntheticConfig {
        n_genes: 100,
        n_conds: 30,
        n_clusters: 6,
        avg_cluster_dims: 6,
        cluster_gene_frac: 0.06,
        neg_fraction: 0.3,
        plant_gamma: 0.15,
        pattern: PatternKind::ShiftScale,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed: 7,
    };
    generate(&cfg).expect("config is feasible").matrix
}

/// Warms `workspace` with one full run, then measures a second run.
/// Returns `(allocs, stats_of_measured_run)`.
fn warmed_run(
    matrix: &ExpressionMatrix,
    params: &MiningParams,
    workspace: &mut MineWorkspace,
) -> (u64, MiningStats) {
    let miner = Miner::new(matrix, params).expect("valid mining input");
    let mut warmup = MiningStats::default();
    let _ = miner.mine_all_with(workspace, &mut warmup);
    let mut stats = MiningStats::default();
    let (allocs, clusters) = count_allocs(|| miner.mine_all_with(workspace, &mut stats));
    drop(clusters); // deallocation is free to happen outside the window
    (allocs, stats)
}

#[test]
fn warmed_zero_emission_run_allocates_nothing_running_example() {
    // MinC = 6 exceeds the running example's unique 5-condition cluster, so
    // the search explores its full tree but emits nothing.
    let m = running_example();
    let params = MiningParams::new(3, 6, 0.15, 0.1).unwrap();
    let (allocs, stats) = warmed_run(&m, &params, &mut MineWorkspace::new());
    assert!(stats.nodes > 0, "workload must explore nodes");
    assert_eq!(stats.emitted, 0, "workload must emit nothing");
    assert_eq!(
        allocs, 0,
        "steady-state enumeration must not allocate ({} nodes explored)",
        stats.nodes
    );
}

#[test]
fn warmed_zero_emission_run_allocates_nothing_synthetic() {
    // MinC = 8 exceeds the deepest chain this workload supports (7
    // conditions), so hundreds of nodes are explored with zero emissions.
    // Much larger MinC values would also starve *exploration* through the
    // per-gene extensibility pruning and defeat the test.
    let m = synthetic_100x30();
    let params = MiningParams::new(4, 8, 0.1, 0.05).unwrap();
    let (allocs, stats) = warmed_run(&m, &params, &mut MineWorkspace::new());
    assert!(stats.nodes > 100, "workload must explore many nodes");
    assert_eq!(stats.emitted, 0, "workload must emit nothing");
    assert_eq!(
        allocs, 0,
        "steady-state enumeration must not allocate ({} nodes explored)",
        stats.nodes
    );
}

#[test]
fn warmed_zero_emission_run_with_metrics_observer_allocates_nothing() {
    // The telemetry observer must be free to leave attached in production:
    // its pre-registered counter/histogram handles are plain atomic cells,
    // so recording every node, prune and depth observation adds zero
    // allocations to the steady state.
    let m = synthetic_100x30();
    let params = MiningParams::new(4, 8, 0.1, 0.05).unwrap();
    let miner = Miner::new(&m, &params).expect("valid mining input");
    let registry = MetricsRegistry::new();
    let mut observer = MetricsObserver::register(&registry);
    let mut workspace = MineWorkspace::new();
    let _ = miner.mine_all_with(&mut workspace, &mut observer);
    let nodes_handle = registry.counter(
        MINE_NODES_METRIC,
        "Enumeration-tree nodes entered (partial representative chains expanded).",
        &[],
    );
    let nodes_before = nodes_handle.get();
    let (allocs, clusters) = count_allocs(|| miner.mine_all_with(&mut workspace, &mut observer));
    drop(clusters);
    let nodes_recorded = nodes_handle.get() - nodes_before;
    assert!(nodes_recorded > 100, "observer must have seen many nodes");
    assert_eq!(
        allocs, 0,
        "instrumented steady-state enumeration must not allocate \
         ({nodes_recorded} nodes recorded)"
    );
}

#[test]
fn warmed_emitting_run_allocates_only_per_cluster_running_example() {
    let m = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    let (allocs, stats) = warmed_run(&m, &params, &mut MineWorkspace::new());
    assert!(stats.emitted > 0, "workload must emit clusters");
    assert!(
        allocs <= PER_EMISSION_BUDGET * stats.emitted as u64,
        "allocations must scale with emissions, not nodes: \
         {allocs} allocs for {} clusters over {} nodes",
        stats.emitted,
        stats.nodes
    );
}

#[test]
fn warmed_emitting_run_allocates_only_per_cluster_synthetic() {
    let m = synthetic_100x30();
    let params = MiningParams::new(4, 4, 0.1, 0.05).unwrap();
    let (allocs, stats) = warmed_run(&m, &params, &mut MineWorkspace::new());
    assert!(stats.emitted > 100, "workload must emit many clusters");
    assert!(
        allocs <= PER_EMISSION_BUDGET * stats.emitted as u64,
        "allocations must scale with emissions, not nodes: \
         {allocs} allocs for {} clusters over {} nodes",
        stats.emitted,
        stats.nodes
    );
}

#[test]
fn disabled_failpoints_are_allocation_free() {
    // The fault-injection sites stay compiled into production binaries;
    // their disabled steady state must be a branch on a relaxed atomic
    // load — nothing else. Hammer both evaluation flavors with nothing
    // armed and demand literally zero allocator calls.
    let (allocs, _) = count_allocs(|| {
        for _ in 0..100_000 {
            regcluster_failpoint::trigger("engine::worker");
            regcluster_failpoint::io("store::record_write").expect("disarmed site cannot fire");
            regcluster_failpoint::io("checkpoint::save").expect("disarmed site cannot fire");
        }
    });
    assert_eq!(
        allocs, 0,
        "disabled failpoints must not allocate ({allocs} allocs over 300k evaluations)"
    );
}

#[test]
fn warmed_zero_emission_run_allocates_nothing_with_failpoints_linked() {
    // Same zero-allocation property as above, with the failpoint crate
    // linked and explicitly disarmed — proving the instrumented build
    // keeps the allocation-free enumeration guarantee.
    regcluster_failpoint::clear();
    let m = running_example();
    let params = MiningParams::new(3, 6, 0.15, 0.1).unwrap();
    let (allocs, stats) = warmed_run(&m, &params, &mut MineWorkspace::new());
    assert!(stats.nodes > 0, "workload must explore nodes");
    assert_eq!(
        allocs, 0,
        "failpoint-linked steady-state enumeration must not allocate \
         ({} nodes explored)",
        stats.nodes
    );
}

#[test]
fn duplicate_probes_allocate_nothing_beyond_fresh_emissions() {
    // The engineered 4×4 matrix from the miner's duplicate-pruning test:
    // two overlapping ε-windows converge to the identical cluster one chain
    // step later, so pruning rule 3(b) fires. A duplicate probe computes
    // its fingerprint over borrowed scratch data and must allocate nothing;
    // only fresh clusters pay for key interning and materialization.
    let m = ExpressionMatrix::from_flat_unlabeled(
        4,
        4,
        vec![
            0.0, 10.0, 14.0, 44.0, //
            0.0, 10.0, 18.0, 28.0, //
            0.0, 10.0, 18.0, 28.0, //
            0.0, 10.0, 22.0, 26.0,
        ],
    )
    .unwrap();
    let params = MiningParams::new(2, 4, 0.0, 0.4)
        .unwrap()
        .with_threshold(RegulationThreshold::Absolute(2.0))
        .unwrap();
    let (allocs, stats) = warmed_run(&m, &params, &mut MineWorkspace::new());
    assert!(
        stats.pruned_duplicate > 0,
        "duplicate pruning must fire: {stats:?}"
    );
    assert!(stats.emitted > 0);
    assert!(
        allocs <= PER_EMISSION_BUDGET * stats.emitted as u64,
        "duplicate probes must not allocate: {allocs} allocs for {} fresh \
         clusters and {} duplicate probes",
        stats.emitted,
        stats.pruned_duplicate
    );
}
