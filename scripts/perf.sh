#!/usr/bin/env bash
# Hot-path performance gate for dedicated (quiet) hardware.
#
# Runs the full hot-path sweep and compares every point's ns/node against
# the committed baseline (BENCH_hotpath.json at the repo root), failing on
# any regression past the noise threshold. On pass the baseline is
# refreshed in place — commit the updated file together with the change
# that moved the numbers.
#
#   scripts/perf.sh                # gate against the committed baseline
#   REGCLUSTER_PERF_THRESHOLD=1.2 scripts/perf.sh   # tighter gate
#
# Do NOT wire this into shared-runner CI: wall-clock numbers there are too
# noisy to gate on (see docs/PERFORMANCE.md). CI runs the structural
# `--check-baseline` and `--quick` smoke instead (scripts/verify.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p regcluster-bench
cargo run --release -q -p regcluster-bench --bin hotpath -- --check
