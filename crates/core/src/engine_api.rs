//! The [`BiclusterEngine`] trait: one uniform contract for every mining
//! algorithm in the workspace.
//!
//! The reg-cluster miner and the baseline algorithms historically had
//! different shapes — the miner streams [`RegCluster`]s through
//! [`ClusterSink`]s with cancellation and observers, while the baselines
//! were plain `fn(matrix, params) -> Vec<Bicluster>` with none of that.
//! This trait makes every algorithm a first-class *engine* behind the same
//! pipeline: it takes a matrix, streams its output clusters into a sink,
//! honors a [`MineControl`] (cancellation and deadlines), reports
//! enumeration events to a [`SyncMineObserver`], and returns an
//! [`EngineReport`] describing how the run ended.
//!
//! Engines that have no native chain/orientation semantics (the plain
//! bicluster baselines) convert their output into [`RegCluster`]s with the
//! condition set as an ascending chain, all genes as `p_members`, and no
//! `n_members` — a lossless embedding that lets one store/query/serve
//! layer handle every engine's output. The conversion is the adapter's
//! job (see the `regcluster-engines` crate); this module only fixes the
//! contract.
//!
//! ```
//! use regcluster_core::{
//!     BiclusterEngine, ClusterSink, CoreError, EngineReport, MineControl, RegCluster,
//!     SyncMineObserver, VecSink,
//! };
//! use regcluster_matrix::ExpressionMatrix;
//!
//! /// A toy engine that reports the whole matrix as one cluster.
//! struct WholeMatrix;
//!
//! impl BiclusterEngine for WholeMatrix {
//!     fn name(&self) -> &str {
//!         "whole-matrix"
//!     }
//!     fn params_json(&self) -> String {
//!         "{}".into()
//!     }
//!     fn run(
//!         &self,
//!         matrix: &ExpressionMatrix,
//!         sink: &dyn ClusterSink,
//!         control: &MineControl,
//!         observer: &dyn SyncMineObserver,
//!     ) -> Result<EngineReport, CoreError> {
//!         if control.is_cancelled() {
//!             return Ok(EngineReport::interrupted(0));
//!         }
//!         let cluster = RegCluster {
//!             chain: (0..matrix.n_conditions()).collect(),
//!             p_members: (0..matrix.n_genes()).collect(),
//!             n_members: vec![],
//!         };
//!         observer.cluster_emitted(&cluster);
//!         let accepted = sink.accept(cluster);
//!         Ok(EngineReport::completed(1).with_stopped_by_sink(!accepted))
//!     }
//! }
//!
//! let m = ExpressionMatrix::from_flat_unlabeled(2, 3, vec![1.0; 6]).unwrap();
//! let sink = VecSink::new();
//! let report = WholeMatrix
//!     .run(&m, &sink, &MineControl::new(), &regcluster_core::NoopObserver)
//!     .unwrap();
//! assert_eq!(report.n_emitted, 1);
//! assert!(!report.truncated);
//! ```

use regcluster_matrix::ExpressionMatrix;

#[cfg(doc)]
use crate::cluster::RegCluster;
use crate::engine::{ClusterSink, MineControl};
use crate::error::CoreError;
use crate::observer::{MiningStats, SyncMineObserver};

/// How an engine run ended, and how much it produced.
///
/// The clusters themselves went to the sink; the report carries only the
/// run's shape so callers can tell a complete result from a partial one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineReport {
    /// Clusters the engine offered to the sink (accepted or not).
    pub n_emitted: usize,
    /// The run was stopped by [`MineControl`] (cancellation or deadline)
    /// before the search was exhausted; the sink holds a partial set.
    pub truncated: bool,
    /// The sink refused a cluster, stopping the run early.
    pub stopped_by_sink: bool,
    /// Search-effort counters, for engines that track them (the
    /// reg-cluster miner); `None` for engines without a node/prune notion.
    pub stats: Option<MiningStats>,
}

impl EngineReport {
    /// A report for a run that exhausted its search space.
    pub fn completed(n_emitted: usize) -> Self {
        EngineReport {
            n_emitted,
            ..EngineReport::default()
        }
    }

    /// A report for a run stopped early by its [`MineControl`].
    pub fn interrupted(n_emitted: usize) -> Self {
        EngineReport {
            n_emitted,
            truncated: true,
            ..EngineReport::default()
        }
    }

    /// Sets the `stopped_by_sink` flag.
    #[must_use]
    pub fn with_stopped_by_sink(mut self, stopped: bool) -> Self {
        self.stopped_by_sink = stopped;
        self
    }

    /// Attaches search-effort counters.
    #[must_use]
    pub fn with_stats(mut self, stats: MiningStats) -> Self {
        self.stats = Some(stats);
        self
    }
}

/// A biclustering algorithm behind the uniform pipeline contract.
///
/// Implementations must uphold three behavioural rules so the layers above
/// (CLI dispatch, `.rcs` stores, benches) can treat engines uniformly:
///
/// 1. **Streaming** — every produced cluster is offered to `sink` exactly
///    once, as a [`RegCluster`] whose ids index into `matrix`. When the
///    sink returns `false`, stop promptly and report
///    [`EngineReport::stopped_by_sink`].
/// 2. **Cancellation** — poll [`MineControl::is_cancelled`] at least once
///    per outer unit of work (candidate batch, iteration, subtree) and
///    return an [`EngineReport`] with `truncated` set rather than an error
///    when it trips. A pre-cancelled control (deadline 0) must return
///    before doing significant work.
/// 3. **Observation** — report each emitted cluster through
///    [`SyncMineObserver::cluster_emitted`]; engines with a search tree
///    also report `node_entered`/`pruned`.
pub trait BiclusterEngine: Sync {
    /// Stable engine name, as used by `mine --engine <name>` and recorded
    /// in store provenance (kebab-case, e.g. `"cheng-church"`).
    fn name(&self) -> &str;

    /// The engine's parameters as a JSON object, recorded verbatim in
    /// store provenance and run summaries.
    fn params_json(&self) -> String;

    /// Mines `matrix`, streaming every produced cluster into `sink`.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] only for failures that make the run
    /// meaningless (invalid parameters for this matrix, worker panics).
    /// Cancellation is **not** an error: it yields `Ok` with
    /// [`EngineReport::truncated`] set.
    fn run(
        &self,
        matrix: &ExpressionMatrix,
        sink: &dyn ClusterSink,
        control: &MineControl,
        observer: &dyn SyncMineObserver,
    ) -> Result<EngineReport, CoreError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::VecSink;
    use crate::observer::NoopObserver;

    struct Nop;

    impl BiclusterEngine for Nop {
        fn name(&self) -> &str {
            "nop"
        }
        fn params_json(&self) -> String {
            "{}".into()
        }
        fn run(
            &self,
            _matrix: &ExpressionMatrix,
            _sink: &dyn ClusterSink,
            control: &MineControl,
            _observer: &dyn SyncMineObserver,
        ) -> Result<EngineReport, CoreError> {
            if control.is_cancelled() {
                return Ok(EngineReport::interrupted(0));
            }
            Ok(EngineReport::completed(0))
        }
    }

    #[test]
    fn report_builders_set_flags() {
        let r = EngineReport::completed(3);
        assert_eq!(r.n_emitted, 3);
        assert!(!r.truncated && !r.stopped_by_sink && r.stats.is_none());
        let r = EngineReport::interrupted(1).with_stopped_by_sink(true);
        assert!(r.truncated && r.stopped_by_sink);
        let r = EngineReport::completed(0).with_stats(MiningStats::default());
        assert!(r.stats.is_some());
    }

    #[test]
    fn trait_objects_work_and_honor_precancelled_control() {
        let engine: Box<dyn BiclusterEngine> = Box::new(Nop);
        assert_eq!(engine.name(), "nop");
        let m = ExpressionMatrix::from_flat_unlabeled(1, 2, vec![0.0, 1.0]).unwrap();
        let control = MineControl::new();
        control.cancel();
        let sink = VecSink::new();
        let report = engine.run(&m, &sink, &control, &NoopObserver).unwrap();
        assert!(report.truncated);
    }
}
