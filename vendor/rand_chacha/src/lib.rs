//! Offline stub of `rand_chacha`: [`ChaCha8Rng`] built on the ChaCha8 stream
//! cipher keystream (implemented from the ChaCha specification).
//!
//! Deterministic and seedable like the upstream crate, but the word stream is
//! NOT bit-compatible with upstream `rand_chacha` — everything in this
//! workspace that consumes it is statistical, so only determinism matters.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A deterministic ChaCha8-based generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// ChaCha state: 4 constant words, 8 key words, 2 counter words, 2
    /// nonce words (zero).
    state: [u32; 16],
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means exhausted.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (out, init) in x.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buffer = x;
        self.index = 0;
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" sigma constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (word, bytes) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(bytes.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn words_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u64().count_ones();
        }
        // 64_000 bits, expect ~32_000 set; allow a wide band.
        assert!((30_000..34_000).contains(&ones), "got {ones} set bits");
    }

    #[test]
    fn blocks_advance() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
