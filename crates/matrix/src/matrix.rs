use serde::{Deserialize, Serialize};

use crate::MatrixError;

/// Index of a gene (row) in an [`ExpressionMatrix`].
pub type GeneId = usize;
/// Index of a condition (column) in an [`ExpressionMatrix`].
pub type CondId = usize;

/// A dense gene × condition expression matrix.
///
/// Rows are genes, columns are conditions; values are finite `f64` expression
/// levels. Storage is row-major so that per-gene profile scans (the access
/// pattern of every algorithm in this workspace) are contiguous.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpressionMatrix {
    genes: Vec<String>,
    conditions: Vec<String>,
    /// Row-major values, `values[g * n_conditions + c]`.
    values: Vec<f64>,
}

impl ExpressionMatrix {
    /// Builds a matrix from per-gene rows.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix would be empty, a row width does not
    /// match the number of conditions, a label is duplicated, or any value is
    /// non-finite.
    pub fn from_rows(
        genes: Vec<String>,
        conditions: Vec<String>,
        rows: Vec<Vec<f64>>,
    ) -> Result<Self, MatrixError> {
        if genes.is_empty() || conditions.is_empty() {
            return Err(MatrixError::Empty);
        }
        if genes.len() != rows.len() {
            return Err(MatrixError::RaggedRow {
                row: rows.len(),
                expected: genes.len(),
                found: rows.len(),
            });
        }
        check_unique(&genes)?;
        check_unique(&conditions)?;
        let n = conditions.len();
        let mut values = Vec::with_capacity(genes.len() * n);
        for (g, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(MatrixError::RaggedRow {
                    row: g,
                    expected: n,
                    found: row.len(),
                });
            }
            for (c, &v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(MatrixError::NonFinite { gene: g, cond: c });
                }
                values.push(v);
            }
        }
        Ok(Self {
            genes,
            conditions,
            values,
        })
    }

    /// Builds a matrix from a flat row-major value buffer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExpressionMatrix::from_rows`].
    pub fn from_flat(
        genes: Vec<String>,
        conditions: Vec<String>,
        values: Vec<f64>,
    ) -> Result<Self, MatrixError> {
        if genes.is_empty() || conditions.is_empty() {
            return Err(MatrixError::Empty);
        }
        if values.len() != genes.len() * conditions.len() {
            return Err(MatrixError::RaggedRow {
                row: 0,
                expected: genes.len() * conditions.len(),
                found: values.len(),
            });
        }
        check_unique(&genes)?;
        check_unique(&conditions)?;
        let n = conditions.len();
        for (i, &v) in values.iter().enumerate() {
            if !v.is_finite() {
                return Err(MatrixError::NonFinite {
                    gene: i / n,
                    cond: i % n,
                });
            }
        }
        Ok(Self {
            genes,
            conditions,
            values,
        })
    }

    /// Builds a matrix with auto-generated labels `g0..` / `c0..`.
    ///
    /// # Errors
    ///
    /// Returns an error if dimensions are zero or the buffer size mismatches.
    pub fn from_flat_unlabeled(
        n_genes: usize,
        n_conditions: usize,
        values: Vec<f64>,
    ) -> Result<Self, MatrixError> {
        let genes = (0..n_genes).map(|i| format!("g{i}")).collect();
        let conditions = (0..n_conditions).map(|i| format!("c{i}")).collect();
        Self::from_flat(genes, conditions, values)
    }

    /// Number of genes (rows).
    #[inline]
    pub fn n_genes(&self) -> usize {
        self.genes.len()
    }

    /// Number of conditions (columns).
    #[inline]
    pub fn n_conditions(&self) -> usize {
        self.conditions.len()
    }

    /// Gene labels, in row order.
    #[inline]
    pub fn gene_names(&self) -> &[String] {
        &self.genes
    }

    /// Condition labels, in column order.
    #[inline]
    pub fn condition_names(&self) -> &[String] {
        &self.conditions
    }

    /// Label of gene `g`.
    #[inline]
    pub fn gene_name(&self, g: GeneId) -> &str {
        &self.genes[g]
    }

    /// Label of condition `c`.
    #[inline]
    pub fn condition_name(&self, c: CondId) -> &str {
        &self.conditions[c]
    }

    /// Index of the gene with the given label, if present.
    pub fn gene_index(&self, name: &str) -> Option<GeneId> {
        self.genes.iter().position(|g| g == name)
    }

    /// Index of the condition with the given label, if present.
    pub fn condition_index(&self, name: &str) -> Option<CondId> {
        self.conditions.iter().position(|c| c == name)
    }

    /// Expression level of gene `g` under condition `c`.
    #[inline]
    pub fn value(&self, g: GeneId, c: CondId) -> f64 {
        self.values[g * self.conditions.len() + c]
    }

    /// The full expression profile (row) of gene `g`.
    #[inline]
    pub fn row(&self, g: GeneId) -> &[f64] {
        let n = self.conditions.len();
        &self.values[g * n..(g + 1) * n]
    }

    /// Mutable access to the profile of gene `g`.
    #[inline]
    pub fn row_mut(&mut self, g: GeneId) -> &mut [f64] {
        let n = self.conditions.len();
        &mut self.values[g * n..(g + 1) * n]
    }

    /// Iterates over the expression levels of all genes under condition `c`
    /// in gene order, without allocating (a strided walk — the storage is
    /// row-major).
    #[inline]
    pub fn column_iter(&self, c: CondId) -> impl Iterator<Item = f64> + '_ {
        let n = self.conditions.len();
        self.values.iter().skip(c).step_by(n).copied()
    }

    /// The expression levels of all genes under condition `c`, collected
    /// into an owned `Vec`. Thin wrapper over
    /// [`column_iter`](Self::column_iter).
    pub fn column(&self, c: CondId) -> Vec<f64> {
        self.column_iter(c).collect()
    }

    /// Iterator over `(GeneId, profile)` pairs.
    pub fn rows(&self) -> impl Iterator<Item = (GeneId, &[f64])> {
        let n = self.conditions.len();
        self.values.chunks_exact(n).enumerate()
    }

    /// Minimum and maximum expression level of gene `g` across **all**
    /// conditions.
    ///
    /// This is the range used by the paper's per-gene regulation threshold
    /// `γ_i = γ · (max_j d_ij − min_j d_ij)` (Equation 4).
    pub fn gene_range(&self, g: GeneId) -> (f64, f64) {
        let row = self.row(g);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in row {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Mean expression level of gene `g`.
    pub fn gene_mean(&self, g: GeneId) -> f64 {
        let row = self.row(g);
        row.iter().sum::<f64>() / row.len() as f64
    }

    /// Population standard deviation of the profile of gene `g`.
    pub fn gene_std(&self, g: GeneId) -> f64 {
        let row = self.row(g);
        let mean = self.gene_mean(g);
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / row.len() as f64;
        var.sqrt()
    }

    /// Extracts the submatrix restricted to `genes × conditions`, preserving
    /// the given orders.
    ///
    /// # Errors
    ///
    /// Returns an error if any index is out of bounds or either list is empty
    /// (labels in a submatrix stay unique because they are drawn from this
    /// matrix; duplicate *indices* are rejected via the label-uniqueness
    /// check).
    pub fn submatrix(&self, genes: &[GeneId], conditions: &[CondId]) -> Result<Self, MatrixError> {
        for &g in genes {
            if g >= self.n_genes() {
                return Err(MatrixError::IndexOutOfBounds(format!("gene {g}")));
            }
        }
        for &c in conditions {
            if c >= self.n_conditions() {
                return Err(MatrixError::IndexOutOfBounds(format!("condition {c}")));
            }
        }
        let sub_genes: Vec<String> = genes.iter().map(|&g| self.genes[g].clone()).collect();
        let sub_conds: Vec<String> = conditions
            .iter()
            .map(|&c| self.conditions[c].clone())
            .collect();
        let rows: Vec<Vec<f64>> = genes
            .iter()
            .map(|&g| conditions.iter().map(|&c| self.value(g, c)).collect())
            .collect();
        Self::from_rows(sub_genes, sub_conds, rows)
    }

    /// Applies `f` to every cell in place, validating that results stay
    /// finite.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::NonFinite`] naming the first offending cell.
    pub fn map_values(&mut self, mut f: impl FnMut(f64) -> f64) -> Result<(), MatrixError> {
        let n = self.conditions.len();
        for (i, v) in self.values.iter_mut().enumerate() {
            let next = f(*v);
            if !next.is_finite() {
                return Err(MatrixError::NonFinite {
                    gene: i / n,
                    cond: i % n,
                });
            }
            *v = next;
        }
        Ok(())
    }

    /// Overwrites the value of a single cell.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds or the value is non-finite (this
    /// is a programming error in callers, not a data error).
    pub fn set_value(&mut self, g: GeneId, c: CondId, v: f64) {
        assert!(v.is_finite(), "expression values must be finite");
        let n = self.conditions.len();
        self.values[g * n + c] = v;
    }

    /// The raw row-major value buffer.
    #[inline]
    pub fn flat_values(&self) -> &[f64] {
        &self.values
    }
}

fn check_unique(labels: &[String]) -> Result<(), MatrixError> {
    let mut seen = std::collections::HashSet::with_capacity(labels.len());
    for l in labels {
        if !seen.insert(l.as_str()) {
            return Err(MatrixError::DuplicateLabel(l.clone()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExpressionMatrix {
        ExpressionMatrix::from_rows(
            vec!["g1".into(), "g2".into(), "g3".into()],
            vec!["c1".into(), "c2".into()],
            vec![vec![1.0, 2.0], vec![-3.0, 4.0], vec![0.0, 0.0]],
        )
        .unwrap()
    }

    #[test]
    fn dimensions_and_values() {
        let m = sample();
        assert_eq!(m.n_genes(), 3);
        assert_eq!(m.n_conditions(), 2);
        assert_eq!(m.value(1, 0), -3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.column(1), vec![2.0, 4.0, 0.0]);
    }

    #[test]
    fn column_iter_matches_column() {
        let m = sample();
        for c in 0..m.n_conditions() {
            let strided: Vec<f64> = m.column_iter(c).collect();
            assert_eq!(strided, m.column(c));
            assert_eq!(strided.len(), m.n_genes());
        }
    }

    #[test]
    fn label_lookup() {
        let m = sample();
        assert_eq!(m.gene_index("g2"), Some(1));
        assert_eq!(m.gene_index("nope"), None);
        assert_eq!(m.condition_index("c2"), Some(1));
        assert_eq!(m.gene_name(2), "g3");
        assert_eq!(m.condition_name(0), "c1");
    }

    #[test]
    fn gene_statistics() {
        let m = sample();
        assert_eq!(m.gene_range(1), (-3.0, 4.0));
        assert_eq!(m.gene_mean(0), 1.5);
        assert!((m.gene_std(0) - 0.5).abs() < 1e-12);
        assert_eq!(m.gene_std(2), 0.0);
    }

    #[test]
    fn submatrix_preserves_order() {
        let m = sample();
        let s = m.submatrix(&[2, 0], &[1]).unwrap();
        assert_eq!(s.gene_names(), &["g3".to_string(), "g1".to_string()]);
        assert_eq!(s.row(0), &[0.0]);
        assert_eq!(s.row(1), &[2.0]);
    }

    #[test]
    fn submatrix_rejects_out_of_bounds() {
        let m = sample();
        assert!(m.submatrix(&[5], &[0]).is_err());
        assert!(m.submatrix(&[0], &[9]).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            ExpressionMatrix::from_rows(vec![], vec!["c".into()], vec![]),
            Err(MatrixError::Empty)
        ));
        assert!(matches!(
            ExpressionMatrix::from_rows(vec!["g".into()], vec![], vec![vec![]]),
            Err(MatrixError::Empty)
        ));
    }

    #[test]
    fn rejects_ragged() {
        let err = ExpressionMatrix::from_rows(
            vec!["g1".into(), "g2".into()],
            vec!["c1".into(), "c2".into()],
            vec![vec![1.0, 2.0], vec![1.0]],
        );
        assert!(matches!(
            err,
            Err(MatrixError::RaggedRow {
                row: 1,
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn rejects_duplicate_labels() {
        let err = ExpressionMatrix::from_rows(
            vec!["g1".into(), "g1".into()],
            vec!["c1".into(), "c2".into()],
            vec![vec![1.0, 2.0], vec![3.0, 4.0]],
        );
        assert!(matches!(err, Err(MatrixError::DuplicateLabel(_))));
    }

    #[test]
    fn rejects_non_finite() {
        let err = ExpressionMatrix::from_rows(
            vec!["g1".into()],
            vec!["c1".into(), "c2".into()],
            vec![vec![1.0, f64::NAN]],
        );
        assert!(matches!(
            err,
            Err(MatrixError::NonFinite { gene: 0, cond: 1 })
        ));
    }

    #[test]
    fn from_flat_matches_from_rows() {
        let a = ExpressionMatrix::from_flat(
            vec!["g1".into(), "g2".into()],
            vec!["c1".into(), "c2".into()],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap();
        let b = ExpressionMatrix::from_rows(
            vec!["g1".into(), "g2".into()],
            vec!["c1".into(), "c2".into()],
            vec![vec![1.0, 2.0], vec![3.0, 4.0]],
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_flat_unlabeled_generates_labels() {
        let m = ExpressionMatrix::from_flat_unlabeled(2, 2, vec![0.0; 4]).unwrap();
        assert_eq!(m.gene_name(1), "g1");
        assert_eq!(m.condition_name(0), "c0");
    }

    #[test]
    fn map_values_in_place() {
        let mut m = sample();
        m.map_values(|v| v * 2.0).unwrap();
        assert_eq!(m.value(0, 1), 4.0);
        assert!(m.map_values(|_| f64::INFINITY).is_err());
    }

    #[test]
    fn set_value_roundtrip() {
        let mut m = sample();
        m.set_value(2, 1, 7.5);
        assert_eq!(m.value(2, 1), 7.5);
    }
}
