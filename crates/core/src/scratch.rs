//! Reusable scratch space for the enumeration core.
//!
//! Steady-state enumeration performs **zero heap allocations per node**: all
//! per-node working memory lives in grow-only buffers owned by the caller —
//! [`NodeScratch`] for the intra-node working set of
//! [`Miner::expand_node`](crate::miner::Miner), [`ChildBuf`] for the flat
//! member arena the node's children are written into, and the public
//! [`MineWorkspace`] bundling everything a sequential run needs so repeated
//! runs on the same [`Miner`](crate::Miner) reuse one warmed allocation set.
//! The engine's workers assemble the same pieces around their work-stealing
//! deques (see `engine.rs`).

use regcluster_matrix::{CondId, GeneId};

use crate::bitset::BitMask;
use crate::coherence::Window;
use crate::miner::{Member, MemberCtx};

/// Per-node working buffers of `expand_node`, reused across every node of a
/// traversal. Each buffer is cleared (never shrunk) on use, so after the
/// first few nodes of a run no call grows any of them.
#[derive(Debug, Default)]
pub(crate) struct NodeScratch {
    /// Packed candidate-condition bitset (one bit per condition); cleared
    /// per node by zeroing its words.
    pub cand: BitMask,
    /// Per-member qualification context, parallel to the node's member
    /// slice: the rank range `[lo, hi)` a candidate's rank must fall in,
    /// plus the member's expression value at the chain tail. Computed once
    /// per node instead of once per candidate × member.
    pub ctx: Vec<MemberCtx>,
    /// Per-condition bucket sizes (pass 1 of the counting sort), reused
    /// as write cursors in pass 2.
    pub counts: Vec<u32>,
    /// Per-condition bucket offsets into the member/score arenas:
    /// candidate `c`'s qualified entries are `[offsets[c], offsets[c + 1])`.
    pub offsets: Vec<u32>,
    /// Flat member arena holding every candidate's qualified members back
    /// to back, bucketed by candidate condition (struct-of-arrays with
    /// `scores` so the H division pass streams plain `f64`s).
    pub mem: Vec<Member>,
    /// H-scores parallel to `mem`.
    pub scores: Vec<f64>,
    /// Per-candidate `(score, index-in-bucket)` sort keys: sorting these
    /// 16-byte pairs moves half the bytes the old `(f64, Member)` sort
    /// did, and the index gathers the sorted members afterwards.
    pub keys: Vec<(f64, u32)>,
    /// The bare score series handed to the sliding-window scan.
    pub hs: Vec<f64>,
    /// Maximal ε-windows of the candidate.
    pub windows: Vec<Window>,
    /// Sorted p-member gene ids of the cluster being emitted.
    pub p_genes: Vec<GeneId>,
    /// Sorted n-member gene ids of the cluster being emitted.
    pub n_genes: Vec<GeneId>,
    /// Merged sorted union of `p_genes` and `n_genes`.
    pub genes: Vec<GeneId>,
}

impl NodeScratch {
    /// A scratch whose candidate mask already covers `n_conds` conditions.
    pub fn with_conds(n_conds: usize) -> Self {
        NodeScratch {
            cand: BitMask::with_bits(n_conds),
            ..NodeScratch::default()
        }
    }

    /// Grows the candidate mask to cover `n_conds` conditions.
    pub fn prepare(&mut self, n_conds: usize) {
        self.cand.prepare(n_conds);
    }
}

/// One child of an enumeration node: the appended condition plus an
/// `(offset, len)` slice into the owning [`ChildBuf`]'s member arena. A
/// plain 16-byte range — producing a child never allocates a `Vec`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChildNode {
    /// The condition appended to the parent chain.
    pub cond: CondId,
    /// Offset of the child's members in [`ChildBuf::members`].
    pub start: u32,
    /// Number of member genes surviving into the child.
    pub len: u32,
}

/// The children of one expanded node: an index of [`ChildNode`] ranges over
/// a flat member arena. Cleared and refilled per node; capacity is retained.
#[derive(Debug, Default)]
pub(crate) struct ChildBuf {
    /// Children in depth-first order.
    pub index: Vec<ChildNode>,
    /// Flat arena holding every child's members back to back.
    pub members: Vec<Member>,
}

impl ChildBuf {
    /// Empties the buffer without releasing capacity.
    pub fn clear(&mut self) {
        self.index.clear();
        self.members.clear();
    }

    /// Appends one child whose members are `members` (copied into the
    /// arena), in order.
    pub fn push(&mut self, cond: CondId, members: impl Iterator<Item = Member>) {
        let start = u32::try_from(self.members.len())
            .expect("child member arena exceeds the u32 offset range");
        self.members.extend(members);
        let len = self.members.len() as u32 - start;
        self.index.push(ChildNode { cond, start, len });
    }

    /// The member slice of child `i` of the index.
    pub fn members_of(&self, child: ChildNode) -> &[Member] {
        &self.members[child.start as usize..(child.start + child.len) as usize]
    }
}

/// Reusable working memory for sequential mining runs.
///
/// All buffers the enumeration needs — node scratch space, one child arena
/// per recursion depth, the chain stack, and the root member list — grow to
/// their high-water mark during the first run and are reused afterwards, so
/// steady-state enumeration allocates nothing per node. Create one with
/// [`MineWorkspace::new`] and pass it to
/// [`Miner::mine_all_with`](crate::Miner::mine_all_with) as many times as
/// you like; a workspace warmed on one matrix works on any other (buffers
/// only ever grow).
#[derive(Debug, Default)]
pub struct MineWorkspace {
    pub(crate) scratch: NodeScratch,
    /// One child buffer per recursion depth (depth `d` writes `levels[d-1]`).
    pub(crate) levels: Vec<ChildBuf>,
    pub(crate) chain: Vec<CondId>,
    pub(crate) node_members: Vec<Member>,
}

impl MineWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        MineWorkspace::default()
    }

    /// Ensures the workspace covers a matrix with `n_conds` conditions: the
    /// candidate mask spans every condition and one child buffer exists per
    /// possible recursion depth (a chain never repeats a condition, so depth
    /// is bounded by `n_conds`).
    pub(crate) fn prepare(&mut self, n_conds: usize) {
        self.scratch.prepare(n_conds);
        while self.levels.len() < n_conds.max(1) {
            self.levels.push(ChildBuf::default());
        }
    }
}
