//! Matrix-level statistics and normalization.
//!
//! Standard microarray preprocessing companions to the transforms in
//! [`crate::transform`]: per-condition summary statistics, profile
//! correlation, and quantile normalization (forcing every condition's value
//! distribution to a common reference — routine before cross-array
//! comparisons like the yeast benchmark's).

use crate::ExpressionMatrix;

/// Mean of every condition (column).
pub fn condition_means(matrix: &ExpressionMatrix) -> Vec<f64> {
    let n_genes = matrix.n_genes() as f64;
    let mut means = vec![0.0f64; matrix.n_conditions()];
    for (_, row) in matrix.rows() {
        for (c, &v) in row.iter().enumerate() {
            means[c] += v;
        }
    }
    for m in &mut means {
        *m /= n_genes;
    }
    means
}

/// Population standard deviation of every condition (column).
pub fn condition_stds(matrix: &ExpressionMatrix) -> Vec<f64> {
    let means = condition_means(matrix);
    let n_genes = matrix.n_genes() as f64;
    let mut vars = vec![0.0f64; matrix.n_conditions()];
    for (_, row) in matrix.rows() {
        for (c, &v) in row.iter().enumerate() {
            let d = v - means[c];
            vars[c] += d * d;
        }
    }
    vars.iter().map(|v| (v / n_genes).sqrt()).collect()
}

/// Pearson correlation of two gene profiles.
///
/// Returns `0.0` when either profile is constant (no linear relationship is
/// defined; `0` is the conventional neutral value for downstream ranking).
pub fn pearson(matrix: &ExpressionMatrix, g1: usize, g2: usize) -> f64 {
    let a = matrix.row(g1);
    let b = matrix.row(g2);
    let n = a.len() as f64;
    let mean_a = a.iter().sum::<f64>() / n;
    let mean_b = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let dx = x - mean_a;
        let dy = y - mean_b;
        cov += dx * dy;
        var_a += dx * dx;
        var_b += dy * dy;
    }
    if var_a == 0.0 || var_b == 0.0 {
        return 0.0;
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

/// Quantile-normalizes the matrix across conditions: after normalization
/// every condition has exactly the same value distribution (the mean of the
/// per-rank values across conditions). Ties within a column share the
/// reference value of their first rank.
pub fn quantile_normalize(matrix: &ExpressionMatrix) -> ExpressionMatrix {
    let n_genes = matrix.n_genes();
    let n_conds = matrix.n_conditions();

    // Rank the genes within each condition.
    let mut ranked: Vec<Vec<usize>> = Vec::with_capacity(n_conds); // rank -> gene
    for c in 0..n_conds {
        let mut idx: Vec<usize> = (0..n_genes).collect();
        idx.sort_by(|&a, &b| {
            matrix
                .value(a, c)
                .total_cmp(&matrix.value(b, c))
                .then(a.cmp(&b))
        });
        ranked.push(idx);
    }
    // Reference distribution: mean across conditions at each rank.
    let reference: Vec<f64> = (0..n_genes)
        .map(|r| {
            ranked
                .iter()
                .enumerate()
                .map(|(c, idx)| matrix.value(idx[r], c))
                .sum::<f64>()
                / n_conds as f64
        })
        .collect();

    let mut out = matrix.clone();
    for (c, idx) in ranked.iter().enumerate() {
        for (r, &g) in idx.iter().enumerate() {
            out.set_value(g, c, reference[r]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: Vec<Vec<f64>>) -> ExpressionMatrix {
        let genes = (0..rows.len()).map(|i| format!("g{i}")).collect();
        let conds = (0..rows[0].len()).map(|i| format!("c{i}")).collect();
        ExpressionMatrix::from_rows(genes, conds, rows).unwrap()
    }

    #[test]
    fn condition_summaries() {
        let m = matrix(vec![vec![1.0, 10.0], vec![3.0, 10.0]]);
        assert_eq!(condition_means(&m), vec![2.0, 10.0]);
        let stds = condition_stds(&m);
        assert!((stds[0] - 1.0).abs() < 1e-12);
        assert_eq!(stds[1], 0.0);
    }

    #[test]
    fn pearson_basic_cases() {
        let m = matrix(vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0], // perfectly correlated
            vec![3.0, 2.0, 1.0], // perfectly anti-correlated
            vec![5.0, 5.0, 5.0], // constant
        ]);
        assert!((pearson(&m, 0, 1) - 1.0).abs() < 1e-12);
        assert!((pearson(&m, 0, 2) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&m, 0, 3), 0.0);
        assert!((pearson(&m, 0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_is_shift_and_scale_invariant() {
        let m = matrix(vec![
            vec![1.0, 4.0, 2.0, 8.0],
            vec![
                1.0 * 3.5 + 2.0,
                4.0 * 3.5 + 2.0,
                2.0 * 3.5 + 2.0,
                8.0 * 3.5 + 2.0,
            ],
        ]);
        assert!((pearson(&m, 0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_normalization_equalizes_distributions() {
        let m = matrix(vec![vec![5.0, 100.0], vec![2.0, 300.0], vec![3.0, 200.0]]);
        let q = quantile_normalize(&m);
        // Each column's sorted values must equal the reference distribution.
        let mut col0: Vec<f64> = (0..3).map(|g| q.value(g, 0)).collect();
        let mut col1: Vec<f64> = (0..3).map(|g| q.value(g, 1)).collect();
        col0.sort_by(f64::total_cmp);
        col1.sort_by(f64::total_cmp);
        assert_eq!(col0, col1);
        // Reference rank 0 = mean(2, 100) = 51, rank 2 = mean(5, 300).
        assert_eq!(col0, vec![51.0, 101.5, 152.5]);
        // Ranks preserved: the largest stays the largest within a column.
        assert_eq!(q.value(0, 0), 152.5);
        assert_eq!(q.value(1, 1), 152.5);
    }

    #[test]
    fn quantile_normalization_is_idempotent() {
        let m = matrix(vec![
            vec![5.0, 100.0, 1.0],
            vec![2.0, 300.0, 7.0],
            vec![3.0, 200.0, 4.0],
            vec![9.0, 150.0, 2.0],
        ]);
        let once = quantile_normalize(&m);
        let twice = quantile_normalize(&once);
        for g in 0..4 {
            for c in 0..3 {
                assert!((once.value(g, c) - twice.value(g, c)).abs() < 1e-12);
            }
        }
    }
}
