//! OP-Cluster: order-preserving clustering with similarity grouping
//! (Liu & Wang, ICDM 2003) — the paper's tendency-based comparator \[18\].
//!
//! Each gene's conditions are sorted by expression value and chopped into
//! **groups**: a condition joins the current group while its value is
//! within the grouping threshold `δ_g` of the group's first value
//! (OP-Cluster's default `δ_g` is a multiple of the average closest-pair
//! difference of the profile). A gene *supports* an ordered condition
//! sequence if each next condition falls in a strictly later group, i.e.
//! the gene "rises" across the sequence up to similarity. An OP-cluster is
//! a sequence of at least `MinC` conditions supported by at least `MinG`
//! genes.
//!
//! §1.3 of the reg-cluster paper criticizes exactly this grouping device:
//! with threshold 0.8 and sorted values `{15, 20, 43, 43.5, 44}`, the
//! values 43, 43.5 and 44 collapse into one group although the outer pair
//! differs by 1.0 > 0.8 — so the model can neither impose a non-trivial
//! regulation threshold consistently nor distinguish regulated from
//! non-regulated pairs. The unit tests reproduce that example.
//!
//! Mining is a depth-first search over condition sequences with projected
//! support sets (the OPC-tree collapsed to its traversal); support is
//! anti-monotone in sequence extension, so `MinG` prunes exactly.

use regcluster_matrix::{CondId, ExpressionMatrix, GeneId};

use crate::bicluster::retain_maximal;
use crate::Bicluster;

/// Parameters of the OP-Cluster miner.
#[derive(Debug, Clone, PartialEq)]
pub struct OpClusterParams {
    /// Grouping-threshold multiplier: `δ_g = multiplier ·` (mean adjacent
    /// difference of the gene's sorted profile). `0` disables grouping
    /// (pure ordering, every condition its own group unless values tie).
    pub group_multiplier: f64,
    /// Minimum supporting genes.
    pub min_genes: usize,
    /// Minimum sequence length.
    pub min_conds: usize,
    /// Cap on reported clusters (largest support first).
    pub max_clusters: usize,
}

impl Default for OpClusterParams {
    fn default() -> Self {
        Self {
            group_multiplier: 1.0,
            min_genes: 2,
            min_conds: 2,
            max_clusters: 100,
        }
    }
}

/// Per-gene group index of every condition: `group[c]` is the rank of the
/// similarity group containing condition `c` in the gene's value order.
pub fn condition_groups(profile: &[f64], multiplier: f64) -> Vec<usize> {
    let n = profile.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| profile[a].total_cmp(&profile[b]).then(a.cmp(&b)));
    // OP-Cluster's default grouping threshold: multiplier × mean adjacent
    // difference of the sorted profile.
    let mean_gap = if n < 2 {
        0.0
    } else {
        order
            .windows(2)
            .map(|w| profile[w[1]] - profile[w[0]])
            .sum::<f64>()
            / (n - 1) as f64
    };
    let delta = multiplier * mean_gap;

    let mut groups = vec![0usize; n];
    let mut current = 0usize;
    let mut prev = profile[order[0]];
    for (i, &c) in order.iter().enumerate() {
        // Adjacent-difference grouping (the original model): a condition
        // chains onto the group while it is within δ of its *predecessor*,
        // so a group can transitively span more than δ — the inconsistency
        // §1.3 of the reg-cluster paper criticizes.
        if i > 0 && profile[c] - prev > delta {
            current += 1;
        }
        prev = profile[c];
        groups[c] = current;
    }
    groups
}

/// Mines OP-clusters.
///
/// Output biclusters are maximal; the `conds` of each bicluster are the
/// sequence's conditions (the shared rising order is recoverable by sorting
/// them by any member's values).
pub fn op_cluster(matrix: &ExpressionMatrix, params: &OpClusterParams) -> Vec<Bicluster> {
    assert!(
        params.group_multiplier >= 0.0,
        "group multiplier must be ≥ 0"
    );
    assert!(
        params.min_conds >= 2,
        "sequences need at least 2 conditions"
    );
    let n_genes = matrix.n_genes();
    let n_conds = matrix.n_conditions();

    let groups: Vec<Vec<usize>> = (0..n_genes)
        .map(|g| condition_groups(matrix.row(g), params.group_multiplier))
        .collect();

    let mut out: Vec<Bicluster> = Vec::new();
    let mut seq: Vec<CondId> = Vec::new();

    // DFS with projected support.
    fn recurse(
        groups: &[Vec<usize>],
        n_conds: usize,
        params: &OpClusterParams,
        seq: &mut Vec<CondId>,
        support: &[GeneId],
        out: &mut Vec<Bicluster>,
    ) {
        if seq.len() >= params.min_conds {
            out.push(Bicluster::new(support.to_vec(), seq.clone()));
        }
        for c in 0..n_conds {
            if seq.contains(&c) {
                continue;
            }
            let last = *seq.last().expect("sequence non-empty in recursion");
            let next: Vec<GeneId> = support
                .iter()
                .copied()
                .filter(|&g| groups[g][c] > groups[g][last])
                .collect();
            if next.len() < params.min_genes {
                continue;
            }
            seq.push(c);
            recurse(groups, n_conds, params, seq, &next, out);
            seq.pop();
        }
    }

    for first in 0..n_conds {
        let support: Vec<GeneId> = (0..n_genes).collect();
        seq.push(first);
        recurse(&groups, n_conds, params, &mut seq, &support, &mut out);
        seq.pop();
    }

    let mut out = retain_maximal(out);
    out.sort_by(|a, b| {
        b.n_genes()
            .cmp(&a.n_genes())
            .then_with(|| b.n_conds().cmp(&a.n_conds()))
            .then_with(|| a.conds.cmp(&b.conds))
    });
    out.truncate(params.max_clusters);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: Vec<Vec<f64>>) -> ExpressionMatrix {
        let genes = (0..rows.len()).map(|i| format!("g{i}")).collect();
        let conds = (0..rows[0].len()).map(|i| format!("c{i}")).collect();
        ExpressionMatrix::from_rows(genes, conds, rows).unwrap()
    }

    #[test]
    fn grouping_reproduces_the_papers_section_1_3_criticism() {
        // g2's values on c2, c10, c8, c4, c6 (sorted: 15, 20, 43, 43.5, 44)
        // with grouping threshold 0.8: 43, 43.5, 44 collapse into one group
        // even though 44 − 43 = 1.0 exceeds the threshold — the tendency
        // model lumps a "regulated" pair while separating smaller gaps.
        let profile = [15.0, 20.0, 43.0, 43.5, 44.0];
        // An absolute threshold of 0.8 = multiplier × mean gap (29/4 = 7.25)
        // → multiplier ≈ 0.1103…
        let groups = condition_groups(&profile, 0.8 / 7.25);
        assert_eq!(groups[0], 0); // 15
        assert_eq!(groups[1], 1); // 20
        assert_eq!(groups[2], 2); // 43
        assert_eq!(groups[3], 2); // 43.5 within 0.8 of 43
        assert_eq!(groups[4], 2); // 44 — grouped although 44 − 43 > 0.8
    }

    #[test]
    fn groups_with_zero_multiplier_split_everything_but_ties() {
        let groups = condition_groups(&[3.0, 1.0, 1.0, 2.0], 0.0);
        assert_eq!(groups, vec![2, 0, 0, 1]);
    }

    #[test]
    fn finds_shared_rising_sequences() {
        // g0..g2 rise along c2 < c0 < c1 with arbitrary magnitudes; g3 does
        // not.
        let rows = vec![
            vec![5.0, 9.0, 1.0],
            vec![2.0, 2.5, 0.1],
            vec![4.0, 8.0, 3.0],
            vec![9.0, 1.0, 5.0],
        ];
        let m = matrix(rows);
        let params = OpClusterParams {
            group_multiplier: 0.0,
            min_genes: 3,
            min_conds: 3,
            max_clusters: 10,
        };
        let found = op_cluster(&m, &params);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].genes, vec![0, 1, 2]);
        assert_eq!(found[0].conds, vec![0, 1, 2]);
    }

    #[test]
    fn grouping_tolerates_small_disorder() {
        // g1's c0 and c2 are nearly tied (within its grouping threshold),
        // so it still supports the sequence despite the tiny inversion.
        let rows = vec![
            vec![1.0, 5.0, 9.0],
            vec![1.05, 5.0, 1.0], // c2 ≈ c0, both far below c1
        ];
        let m = matrix(rows);
        let strict = OpClusterParams {
            group_multiplier: 0.0,
            min_genes: 2,
            min_conds: 2,
            max_clusters: 10,
        };
        // Without grouping, only c0 < c1 is shared.
        let found = op_cluster(&m, &strict);
        assert!(found
            .iter()
            .all(|b| !(b.conds == vec![1, 2] && b.n_genes() == 2)));
        let grouped = OpClusterParams {
            group_multiplier: 0.5,
            min_genes: 2,
            min_conds: 2,
            max_clusters: 10,
        };
        // With grouping, g1 treats c2 and c0 as similar, so c2 < c1 (and
        // c0 < c1) are supported by both genes.
        let found = op_cluster(&m, &grouped);
        assert!(
            found
                .iter()
                .any(|b| b.genes == vec![0, 1] && b.conds.contains(&1)),
            "{found:?}"
        );
    }

    #[test]
    fn support_is_antimonotone() {
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                (0..5)
                    .map(|j| ((i * 17 + j * 29 + 3) % 19) as f64)
                    .collect()
            })
            .collect();
        let m = matrix(rows);
        let params = OpClusterParams {
            group_multiplier: 0.0,
            min_genes: 2,
            min_conds: 2,
            max_clusters: 100,
        };
        for bc in op_cluster(&m, &params) {
            // Every reported cluster re-validates: each gene's groups rise
            // along the sequence order (recover order by the first gene).
            let first = m.row(bc.genes[0]);
            let mut order = bc.conds.clone();
            order.sort_by(|&a, &b| first[a].total_cmp(&first[b]));
            for &g in &bc.genes {
                let groups = condition_groups(m.row(g), 0.0);
                for w in order.windows(2) {
                    assert!(groups[w[0]] < groups[w[1]]);
                }
            }
        }
    }

    #[test]
    fn incoherent_tendencies_are_accepted() {
        // Same order, wildly different ratios — OP-Cluster groups them (no
        // coherence guarantee), unlike reg-cluster with a tight ε.
        let rows = vec![
            vec![0.0, 1.0, 2.0, 30.0],
            vec![0.0, 10.0, 10.5, 11.0],
            vec![0.0, 0.2, 15.0, 15.4],
        ];
        let m = matrix(rows);
        let params = OpClusterParams {
            group_multiplier: 0.0,
            min_genes: 3,
            min_conds: 4,
            max_clusters: 10,
        };
        let found = op_cluster(&m, &params);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].genes, vec![0, 1, 2]);
    }
}
