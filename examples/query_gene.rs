//! Query mining: "which co-regulation patterns involve *my* gene?"
//!
//! The typical biologist's entry point is one gene of interest, not the
//! whole matrix. `mine_containing` prunes the enumeration the moment a
//! subtree loses the query gene, then the optional post-processing merges
//! redundant chain variants so the answer reads as a handful of distinct
//! patterns. Mining statistics show how much work the query pruning saves.
//!
//! Run with `cargo run --release --example query_gene`.

use regcluster::core::miner::Miner;
use regcluster::core::postprocess::deduplicate_by_genes;
use regcluster::core::{mine_containing, MiningParams, MiningStats};
use regcluster::datagen::{generate, PatternKind, SyntheticConfig};

fn main() {
    let cfg = SyntheticConfig {
        n_genes: 800,
        n_conds: 20,
        n_clusters: 6,
        avg_cluster_dims: 6,
        cluster_gene_frac: 0.03,
        neg_fraction: 0.3,
        plant_gamma: 0.15,
        pattern: PatternKind::ShiftScale,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed: 555,
    };
    let data = generate(&cfg).expect("feasible");

    // Pick a planted gene as the "gene of interest".
    let gene = data.planted[2].genes[0];
    println!(
        "dataset: {} genes × {} conditions; querying clusters containing {}",
        cfg.n_genes,
        cfg.n_conds,
        data.matrix.gene_name(gene)
    );

    let min_g = data.planted.iter().map(|p| p.n_genes()).min().unwrap();
    let min_c = data.planted.iter().map(|p| p.n_conditions()).min().unwrap();
    let params = MiningParams::new(min_g, min_c, 0.1, 0.01).expect("valid");

    // Full mining vs query mining, with effort statistics for both.
    let miner = Miner::new(&data.matrix, &params).expect("valid");
    let mut full_stats = MiningStats::default();
    let all = miner.mine_all(&mut full_stats);
    let mut query_stats = MiningStats::default();
    let mine_queried = miner.mine_containing(gene, &mut query_stats);

    println!("\nfull mining:  {}", full_stats.summary());
    println!("query mining: {}", query_stats.summary());
    println!(
        "({:.1}× fewer nodes, {:.1}× fewer coherence checks)",
        full_stats.nodes as f64 / query_stats.nodes.max(1) as f64,
        full_stats.pruned_coherence as f64 / query_stats.pruned_coherence.max(1) as f64
    );

    let queried = mine_containing(&data.matrix, &params, gene).expect("valid gene");
    assert_eq!(queried, mine_queried);
    assert!(queried.iter().all(|c| c.genes().contains(&gene)));
    assert_eq!(
        queried,
        all.iter()
            .filter(|c| c.genes().contains(&gene))
            .cloned()
            .collect::<Vec<_>>(),
        "query mining equals filtered full mining"
    );

    // Collapse chain variants over the same gene sets.
    let distinct = deduplicate_by_genes(&queried);
    println!(
        "\n{} clusters contain the gene ({} distinct gene-set patterns):",
        queried.len(),
        distinct.len()
    );
    for c in &distinct {
        let role = if c.p_members.contains(&gene) {
            "p-member"
        } else {
            "n-member"
        };
        println!(
            "  chain {} — {} genes ({} positive, {} negative), query gene is a {role}",
            c.regulation_chain()
                .display_with(data.matrix.condition_names()),
            c.n_genes(),
            c.p_members.len(),
            c.n_members.len(),
        );
    }
}
