use std::fmt;

/// Errors produced by reg-cluster mining entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A mining parameter is out of its valid domain.
    InvalidParams(String),
    /// The run was stopped before completion — by [`cancel`], by an expired
    /// deadline, or by a sink refusing further clusters. Partial results are
    /// available through the run's report when this matters.
    ///
    /// [`cancel`]: crate::engine::MineControl::cancel
    Cancelled,
    /// A worker thread panicked; the message is the captured panic payload.
    /// The panic is contained — no other worker's results are lost — but the
    /// run's output is discarded because the panicking subtree is
    /// incomplete. When the run carried a
    /// [`CheckpointPlan`](crate::checkpoint::CheckpointPlan), a final
    /// checkpoint (including the panicking node) was flushed before this
    /// error was raised, so the run can be resumed.
    WorkerPanic(String),
    /// Checkpointing failed: a resume checkpoint did not match this run
    /// (different parameters, dimensions, or matrix content) or the
    /// [`CheckpointSink`](crate::checkpoint::CheckpointSink) could not
    /// persist a snapshot. A run that cannot honor its durability contract
    /// aborts rather than continuing un-checkpointed.
    Checkpoint(String),
    /// Delta mining could not reuse the previous run: the root-fingerprint
    /// vectors are incomparable (different condition counts) or the
    /// previous run's provenance is unusable. The remedy is a full
    /// re-mine; this error never silently degrades into one.
    Delta(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParams(msg) => write!(f, "invalid mining parameters: {msg}"),
            CoreError::Cancelled => write!(f, "mining run cancelled before completion"),
            CoreError::WorkerPanic(msg) => write!(f, "mining worker panicked: {msg}"),
            CoreError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            CoreError::Delta(msg) => write!(f, "delta mining error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}
